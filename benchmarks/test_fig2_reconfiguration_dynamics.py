"""Fig. 2: spatial-partition resizing timelines, end to end.

The paper's Fig. 2 contrasts three timelines for admitting/resizing a
model's partition: a cold process-scoped resize (serving gap = the whole
reload), a shadow-instance-masked resize (tiny swap gap, but decisions
gated on an epoch), and KRISP's kernel-scoped resize (instantaneous).
This benchmark measures the *time from requesting a new model until its
first inference completes* under each regime, plus the continuity of an
already-serving model during the reconfiguration.

The epoch and reload constants are scaled down 10x from the paper's
seconds-scale values so the discrete-event run stays fast; every
assertion is on *ratios*, which the scaling preserves.
"""

from conftest import write_result

from repro.analysis.tables import format_table
from repro.baselines.dynamic_server import (
    KrispDynamicServer,
    ModelWiseDynamicServer,
)
from repro.baselines.process_scoped import ReloadCostModel
from repro.gpu.device import GpuDevice
from repro.sim.engine import Simulator

FIRST, SECOND = "vgg19", "squeezenet"
#: Gpulet's 20 s epoch and 10-15 s reload band, scaled 10x down.
COSTS = ReloadCostModel(partition_config=0.2, backend_start=0.4,
                        model_load=0.7)
EPOCH = 2.0
ADMIT_AT = 2.5          # mid-epoch: next boundary at t=4.0
EXPECTED_WAIT = 1.5     # 4.0 - 2.5


def _run_model_wise():
    sim = Simulator()
    server = ModelWiseDynamicServer(sim, GpuDevice(sim), epoch=EPOCH,
                                    reload_costs=COSTS)
    first = server.admit(FIRST)
    sim.run(until=ADMIT_AT)
    passes_before = first.completed_passes
    second = server.admit(SECOND)
    sim.run(until=ADMIT_AT + EXPECTED_WAIT + COSTS.total_reload + 0.4)
    server.stop_all()
    return {
        "admission_latency": second.time_to_first_inference,
        "first_kept_serving": first.completed_passes > passes_before,
    }


def _run_krisp():
    sim = Simulator()
    server = KrispDynamicServer(sim, GpuDevice(sim))
    first = server.admit(FIRST)
    sim.run(until=ADMIT_AT)
    passes_before = first.completed_passes
    second = server.admit(SECOND)
    sim.run(until=ADMIT_AT + 0.3)
    server.stop_all()
    return {
        "admission_latency": second.time_to_first_inference,
        "first_kept_serving": first.completed_passes > passes_before,
    }


def test_fig2_reconfiguration_dynamics(benchmark):
    def run():
        return _run_model_wise(), _run_krisp()

    model_wise, krisp = benchmark.pedantic(run, rounds=1, iterations=1)

    write_result("fig2_reconfiguration_dynamics", format_table(
        ["server", "time to first inference of new model",
         "existing model kept serving"],
        [["model-wise (epoch + shadow reload)",
          f"{model_wise['admission_latency']:.2f} s",
          model_wise["first_kept_serving"]],
         ["KRISP (kernel-scoped)",
          f"{krisp['admission_latency'] * 1e3:.1f} ms",
          krisp["first_kept_serving"]]],
        title="Fig. 2: admitting a second model mid-epoch "
              "(time constants scaled 10x down from the paper)",
    ))

    # Model-wise: wait to the epoch boundary plus the reload band.
    floor = EXPECTED_WAIT + COSTS.total_reload
    assert floor * 0.95 <= model_wise["admission_latency"] <= floor + 0.3
    # KRISP: one inference pass — orders of magnitude faster.
    assert krisp["admission_latency"] < 0.1
    assert model_wise["admission_latency"] / krisp["admission_latency"] > 50
    # Both mask the reconfiguration: the existing model never stops.
    assert model_wise["first_kept_serving"]
    assert krisp["first_kept_serving"]
