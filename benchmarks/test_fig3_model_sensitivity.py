"""Fig. 3: inference-model sensitivity to GPU resource restriction.

Sweeps active CUs for all nine models and regenerates the
throughput/tail-latency-versus-CUs curves, checking the tolerance classes
the paper calls out: albert stays at peak down to ~10-12 CUs while vgg19
degrades immediately below the full device.
"""

from conftest import write_result

from repro.analysis.series import format_series
from repro.models.zoo import ALL_MODEL_NAMES, TABLE_III, get_model
from repro.profiling.model_profiler import profile_model

SWEEP = tuple(range(4, 61, 4))


def test_fig3_model_sensitivity(benchmark):
    def run():
        return {name: profile_model(get_model(name), cu_counts=SWEEP)
                for name in ALL_MODEL_NAMES}

    sensitivities = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = []
    for name, sens in sensitivities.items():
        paper = TABLE_III.get(name)
        header = (f"{name}: right-size {sens.right_size} CUs"
                  + (f" (paper {paper[1]})" if paper else " (not in paper)"))
        blocks.append(header + "\n" + format_series(
            sens.cu_counts, [lat * 1e3 for lat in sens.latencies],
            x_label="active CUs", y_label="latency (ms)"))
    write_result("fig3_model_sensitivity", "\n\n".join(blocks))

    albert = sensitivities["albert"]
    vgg = sensitivities["vgg19"]
    resnext = sensitivities["resnext101"]

    # albert holds peak throughput even under 12 CUs ...
    assert albert.latency_at(12) <= albert.full_latency * 1.06
    # ... while vgg19 degrades as soon as the device shrinks at all.
    assert vgg.latency_at(56) > vgg.full_latency * 1.05
    # Severe restriction hurts every intolerant model substantially.
    assert vgg.latency_at(4) > vgg.full_latency * 2.0
    assert resnext.latency_at(4) > resnext.full_latency * 2.0
    # Tolerance ordering matches the paper's Table III kneepoints.
    assert albert.right_size < resnext.right_size <= vgg.right_size


def test_fig3_right_sizes_match_table3(benchmark):
    def run():
        return {name: profile_model(get_model(name),
                                    cu_counts=range(2, 61)).right_size
                for name in TABLE_III}

    right_sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = "\n".join(
        f"{name:12s} measured {measured:3d}  paper {TABLE_III[name][1]:3d}"
        for name, measured in right_sizes.items())
    write_result("fig3_right_sizes", rows)
    for name, measured in right_sizes.items():
        assert abs(measured - TABLE_III[name][1]) <= 3, name
