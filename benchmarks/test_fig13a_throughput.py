"""Fig. 13a: normalized system throughput, 1/2/4 workers x 5 policies.

Regenerates the headline evaluation grid: every model co-located with
itself at 1, 2, and 4 workers under each spatial-partitioning policy,
throughput normalised to the isolated single worker.  Shape assertions
follow the paper's Section VI-B narrative.
"""

from conftest import POLICIES, WORKER_COUNTS, write_result

from repro.analysis.tables import format_table
from repro.models.zoo import MODEL_NAMES
from repro.server.metrics import geomean


def test_fig13a_throughput(benchmark, grid32):
    def run():
        grid32.prefetch()  # parallel sweep over all missing grid cells
        norm = {}
        for model in MODEL_NAMES:
            for policy in POLICIES:
                for workers in WORKER_COUNTS:
                    norm[(model, policy, workers)] = grid32.normalized(
                        model, policy, workers)
        return norm

    norm = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = []
    for model in MODEL_NAMES:
        rows = [[policy] + [norm[(model, policy, k)] for k in WORKER_COUNTS]
                for policy in POLICIES]
        blocks.append(format_table(
            ["policy", "x1", "x2", "x4"], rows,
            title=f"{model}: normalized RPS"))
    geo_rows = [[policy] + [
        geomean([norm[(m, policy, k)] for m in MODEL_NAMES])
        for k in WORKER_COUNTS] for policy in POLICIES]
    blocks.append(format_table(["policy", "x1", "x2", "x4"], geo_rows,
                               title="GEOMEAN over all models"))
    write_result("fig13a_throughput", "\n\n".join(blocks))

    geo = {policy: {k: geomean([norm[(m, policy, k)] for m in MODEL_NAMES])
                    for k in WORKER_COUNTS} for policy in POLICIES}

    # Co-locating 2 workers helps every policy.
    for policy in POLICIES:
        assert geo[policy][2] > 1.3

    # KRISP-I achieves the best (or tied-best) throughput at 4 workers
    # and roughly doubles the isolated throughput on average.
    best_at_4 = max(geo[p][4] for p in POLICIES)
    assert geo["krisp-i"][4] >= 0.98 * best_at_4
    assert geo["krisp-i"][4] >= 2.0

    # MPS Default saturates: it is the weakest policy at 4 workers, and
    # KRISP-I beats it clearly (the paper's contention argument).
    assert geo["mps-default"][4] == min(geo[p][4] for p in POLICIES)
    assert geo["krisp-i"][4] > 1.15 * geo["mps-default"][4]

    # Model Right-Size (prior work's upper bound) improves on MPS Default
    # at 2 workers, validating the prior-work trend.
    assert geo["model-rightsize"][2] >= geo["mps-default"][2]

    # Up to ~3.5x gains exist for restriction-tolerant models.
    assert max(norm[(m, "krisp-i", 4)] for m in MODEL_NAMES) > 3.2
