"""Ablations of KRISP's design choices (beyond the paper's figures).

* SE-distribution policy inside KRISP (Conserved vs Packed vs
  Distributed) on end-to-end throughput — Fig. 7/8's microbenchmark
  effect carried to whole servers.
* Intra-CU interference exponent: with perfectly fair CU sharing
  (alpha = 1.0), unrestricted MPS loses less to contention, which is
  exactly the headroom KRISP exploits at alpha > 1.
* Memory-bandwidth pool: disabling it (huge budget) inflates MPS
  Default's 4-worker throughput, confirming bandwidth contention is a
  real component of the co-location penalty.
"""

from conftest import write_result

from repro.analysis.tables import format_table
from repro.core.allocation import DistributionPolicy, ResourceMaskGenerator
from repro.core.krisp import KrispAllocator, KrispConfig, KrispSystem
from repro.gpu.device import GpuDevice
from repro.models.zoo import get_model
from repro.profiling.kernel_profiler import build_database
from repro.server.experiment import ExperimentConfig, normalized_rps, run_experiment
from repro.sim.engine import Simulator


def _krisp_distribution_throughput(distribution, model_name="resnet152",
                                   workers=4, passes=6):
    """Closed-loop-free measurement: total time for N interleaved passes
    of `workers` streams under a KRISP system with the given policy."""
    sim = Simulator()
    device = GpuDevice(sim)
    model = get_model(model_name)
    database = build_database(model.trace(32))
    system = KrispSystem(
        sim, device, database,
        config=KrispConfig(distribution=distribution, overlap_limit=0),
    )
    streams = [system.create_stream(f"w{i}") for i in range(workers)]
    for _ in range(passes):
        for stream in streams:
            for desc in model.trace(32):
                stream.launch_kernel(desc)
    sim.run()
    return workers * passes / sim.now


def test_ablation_distribution_policy(benchmark):
    def run():
        return {policy.value: _krisp_distribution_throughput(policy)
                for policy in DistributionPolicy}

    throughput = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("ablation_distribution_policy", format_table(
        ["distribution", "passes/s"],
        [[name, value] for name, value in throughput.items()],
        title="KRISP-I end-to-end throughput by SE-distribution policy "
              "(4x resnet152)"))
    # Conserved never loses to Packed; the microbenchmark effect carries
    # through to whole servers.
    assert throughput["conserved"] >= 0.98 * throughput["packed"]
    assert throughput["conserved"] >= 0.98 * throughput["distributed"]


def test_ablation_intra_cu_interference(benchmark):
    def run():
        rows = {}
        for alpha in (1.0, 1.15, 1.3):
            result = run_experiment(ExperimentConfig(
                model_names=("densenet201",) * 4,
                policy="mps-default",
                intra_cu_alpha=alpha,
            ))
            rows[alpha] = normalized_rps(result)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("ablation_intra_cu_interference", format_table(
        ["alpha", "MPS Default norm RPS (4x densenet201)"],
        [[a, v] for a, v in rows.items()]))
    # More intra-CU interference monotonically hurts unrestricted sharing.
    assert rows[1.0] >= rows[1.15] >= rows[1.3]


def test_ablation_memory_bandwidth_pool(benchmark):
    def run():
        limited = run_experiment(ExperimentConfig(
            model_names=("vgg19",) * 4, policy="mps-default"))
        unlimited = run_experiment(ExperimentConfig(
            model_names=("vgg19",) * 4, policy="mps-default",
            mem_bandwidth_budget=1e9))
        return normalized_rps(limited), normalized_rps(unlimited)

    limited, unlimited = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("ablation_memory_bandwidth",
                 f"4x vgg19 under MPS Default: norm RPS {limited:.2f} with "
                 f"the bandwidth pool, {unlimited:.2f} without")
    assert unlimited >= limited


def test_ablation_rightsizing_margin(benchmark):
    """Padding every kernel's right-size wastes isolation headroom."""
    def run():
        sim = Simulator()
        device = GpuDevice(sim)
        model = get_model("resnet152")
        database = build_database(model.trace(32))
        sizes = {}
        for margin in (0, 10):
            system = KrispSystem(sim, device, database,
                                 config=KrispConfig(margin_cus=margin))
            sizes[margin] = system.rightsizer(model.trace(32)[0])
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("ablation_rightsizing_margin",
                 f"requested CUs for resnet152's first kernel: "
                 f"margin 0 -> {sizes[0]}, margin 10 -> {sizes[10]}")
    assert sizes[10] == min(60, sizes[0] + 10)
