"""Fig. 8: characterisation of a vector-multiply kernel under the three
CU-distribution policies (Packed / Distributed / Conserved).

Sweeps active CUs 1..60 for each policy, measuring latency and energy of
a single kernel run, and checks the paper's signature effects:

* Packed spikes at 16/31/46 active CUs (a lone CU in a freshly opened SE
  bottlenecks its equal share of the grid);
* Distributed steps at 15/11/7 (the per-SE ceil makes 15 CUs perform
  like 12, 11 like 8, 7 like 4);
* Conserved avoids both pitfalls and saves energy in the ~40-CU range by
  keeping a whole shader engine idle.
"""

from conftest import write_result

from repro.analysis.series import format_series
from repro.core.allocation import DistributionPolicy, ResourceMaskGenerator
from repro.gpu.counters import CUKernelCounters
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelLaunch
from repro.gpu.topology import GpuTopology
from repro.models.zoo import vector_mul_kernel
from repro.sim.engine import Simulator

TOPO = GpuTopology.mi50()
POLICIES = (DistributionPolicy.PACKED, DistributionPolicy.DISTRIBUTED,
            DistributionPolicy.CONSERVED)


def _measure(desc, mask):
    """(latency, energy) of one kernel alone on a fresh device."""
    sim = Simulator()
    device = GpuDevice(sim, TOPO)
    device.launch(KernelLaunch(desc), mask)
    sim.run()
    device.finalize()
    return sim.now, device.meter.energy_joules


def _sweep():
    desc = vector_mul_kernel(workgroups=210, wg_duration=20e-6)
    results = {}
    for policy in POLICIES:
        generator = ResourceMaskGenerator(TOPO, policy=policy)
        latencies, energies = [], []
        for n in range(1, 61):
            mask = generator.generate(n, CUKernelCounters(TOPO))
            latency, energy = _measure(desc, mask)
            latencies.append(latency)
            energies.append(energy)
        results[policy.value] = (latencies, energies)
    return results


def test_fig8_distribution_policies(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    blocks = []
    for policy, (latencies, _energies) in results.items():
        blocks.append(f"[{policy}] normalised runtime vs active CUs\n"
                      + format_series(range(1, 61),
                                      [lat / latencies[-1] for lat in latencies],
                                      x_label="active CUs",
                                      y_label="runtime (x full GPU)"))
    write_result("fig8_distribution_policies", "\n\n".join(blocks))

    packed_lat = results["packed"][0]
    distributed_lat = results["distributed"][0]
    conserved_lat = results["conserved"][0]

    def at(series, n):
        return series[n - 1]

    # Packed: three distinct spikes around 16, 31, and 46 active CUs.
    for boundary in (16, 31, 46):
        assert at(packed_lat, boundary) > 1.5 * at(packed_lat, boundary - 1)
        assert at(conserved_lat, boundary) < at(packed_lat, boundary)

    # Distributed: 15 CUs perform like 12, 11 like 8, 7 like 4 (the per-SE
    # ceil; remainder WGs allow a few percent of slack).
    assert at(distributed_lat, 15) == at(distributed_lat, 12)
    assert abs(at(distributed_lat, 11) - at(distributed_lat, 8)) \
        <= 0.05 * at(distributed_lat, 8)
    assert abs(at(distributed_lat, 7) - at(distributed_lat, 4)) \
        <= 0.05 * at(distributed_lat, 4)
    # ... and each of those points is a clear step above the next size up.
    assert at(distributed_lat, 15) > 1.15 * at(distributed_lat, 16)
    assert at(distributed_lat, 11) > 1.15 * at(distributed_lat, 12)
    assert at(distributed_lat, 7) > 1.15 * at(distributed_lat, 8)
    # Conserved fixes the 15-CU step (one full SE).
    assert at(conserved_lat, 15) < at(distributed_lat, 15)

    # Conserved is never slower than Packed anywhere in the sweep.
    assert all(c <= p * 1.001 for c, p in zip(conserved_lat, packed_lat))


def test_fig8_conserved_energy_saving(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    conserved_energy = results["conserved"][1]
    distributed_energy = results["distributed"][1]

    # Around 40 active CUs Conserved uses 3 SEs instead of 4, saving
    # single-kernel energy (the paper measures up to 8%).
    savings = []
    for n in range(36, 45):
        saving = 1.0 - conserved_energy[n - 1] / distributed_energy[n - 1]
        savings.append((n, saving))
    best = max(saving for _n, saving in savings)
    write_result(
        "fig8_energy_saving",
        "\n".join(f"{n} CUs: conserved saves {saving * 100:.1f}% energy "
                  "vs distributed" for n, saving in savings)
        + f"\nbest saving in 36-44 CU range: {best * 100:.1f}%",
    )
    assert best > 0.02
