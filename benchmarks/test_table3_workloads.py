"""Table III: workload characterisation.

Regenerates the paper's workload table — kernel calls per inference,
model-wise right-size, and isolated p95 latency — from the zoo plus the
profilers, and compares against the published values.
"""

from conftest import write_result

from repro.analysis.tables import format_table
from repro.models.zoo import TABLE_III, get_model
from repro.profiling.model_profiler import profile_model
from repro.server.experiment import isolated_baseline


def test_table3_workloads(benchmark):
    def run():
        rows = []
        for name, (paper_k, paper_rs, paper_p95) in TABLE_III.items():
            model = get_model(name)
            sens = profile_model(model, cu_counts=range(2, 61))
            p95 = isolated_baseline(name).max_p95() * 1e3
            rows.append([name, model.kernel_count, paper_k,
                         sens.right_size, paper_rs, p95, paper_p95])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("table3_workloads", format_table(
        ["model", "#kernels", "(paper)", "right-size", "(paper)",
         "p95 ms", "(paper)"],
        rows,
        title="Table III: inference workloads (measured vs paper)",
    ))

    for name, kernels, paper_k, right_size, paper_rs, p95, paper_p95 in rows:
        assert kernels == paper_k, f"{name}: kernel count must be exact"
        assert abs(right_size - paper_rs) <= 3, f"{name}: right-size"
        assert abs(p95 - paper_p95) / paper_p95 <= 0.30, f"{name}: p95"
