"""Fig. 15: co-located *mixed* inference-model pairs.

Runs every unordered pair of distinct models (28 pairs) under MPS
Default, Model Right-Size, KRISP-O, and KRISP-I, and regenerates the
throughput-distribution boxplot.  Paper shape: the right-sizing policies
beat MPS Default, and KRISP-I generally outperforms or matches Model
Right-Size.
"""

import itertools

from conftest import write_result

from repro.analysis.tables import format_table
from repro.exp.sweep import Sweep, run_sweep
from repro.models.zoo import MODEL_NAMES
from repro.server.experiment import ExperimentConfig, normalized_rps
from repro.server.metrics import BoxplotStats, geomean

PAIR_POLICIES = ("mps-default", "model-rightsize", "krisp-o", "krisp-i")
PAIRS = list(itertools.combinations(MODEL_NAMES, 2))


def test_fig15_mixed_models(benchmark):
    def run():
        sweep = Sweep().add_pairs(MODEL_NAMES, PAIR_POLICIES,
                                  requests_scale=0.6)
        report = run_sweep(sweep)
        report.raise_failures()
        samples = {policy: [] for policy in PAIR_POLICIES}
        for a, b in PAIRS:
            for policy in PAIR_POLICIES:
                result = report.result(ExperimentConfig(
                    model_names=(a, b), policy=policy,
                    requests_scale=0.6))
                samples[policy].append(normalized_rps(result))
        return samples

    samples = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for policy in PAIR_POLICIES:
        stats = BoxplotStats.from_samples(samples[policy])
        rows.append([policy, stats.minimum, stats.q1, stats.median,
                     stats.q3, stats.maximum, geomean(samples[policy])])
    write_result("fig15_mixed_models", format_table(
        ["policy", "min", "q1", "median", "q3", "max", "geomean"],
        rows,
        title=f"Fig. 15: normalized throughput over {len(PAIRS)} "
              "mixed-model pairs",
    ))

    med = {policy: BoxplotStats.from_samples(samples[policy]).median
           for policy in PAIR_POLICIES}
    # Every policy benefits substantially from mixed co-location ...
    for policy in PAIR_POLICIES:
        assert med[policy] > 1.5
        # ... and every single pair gains over temporal sharing.
        assert min(samples[policy]) > 1.0
    # KRISP-I outperforms or matches Model Right-Size (the paper's
    # comparison that carries over directly; our simulated MPS Default
    # suffers less mixed-pair interference than real hardware, see
    # EXPERIMENTS.md).
    assert med["krisp-i"] >= 0.97 * med["model-rightsize"]
    assert med["krisp-i"] >= 0.92 * med["mps-default"]
