"""Fig. 6: minimum-required-CUs has no simple runtime predictor.

Profiles every distinct kernel across all workloads and regenerates the
two scatter views: minCU versus kernel size (6a) and versus input size
(6b).  The paper's observations, asserted here:

* kernel size correlates only loosely with minCU — many kernels exceed
  the GPU's 153,600-thread limit yet need few CUs;
* input size does not determine minCU — the same kernel class keeps its
  requirement across a wide range of input sizes, and some classes
  (``gfx9_f3x2_fp32_stride1_group``) always need the full device.
"""

import numpy as np
from conftest import write_result

from repro.gpu.topology import GpuTopology
from repro.models.zoo import ALL_MODEL_NAMES, get_model
from repro.profiling.kernel_profiler import KernelProfiler

TOPO = GpuTopology.mi50()


def _collect_profiles():
    profiler = KernelProfiler()
    seen = {}
    for name in ALL_MODEL_NAMES:
        for desc in get_model(name).trace(32):
            key = (desc.name, desc.kernel_size, desc.bytes_in)
            if key not in seen:
                seen[key] = (desc, profiler.min_cus(desc))
    return list(seen.values())


def test_fig6_mincu_predictors(benchmark):
    profiles = benchmark.pedantic(_collect_profiles, rounds=1, iterations=1)

    sizes = np.array([d.kernel_size for d, _m in profiles], dtype=float)
    inputs = np.array([d.bytes_in for d, _m in profiles], dtype=float)
    mins = np.array([m for _d, m in profiles], dtype=float)

    size_corr = float(np.corrcoef(np.log1p(sizes), mins)[0, 1])
    input_corr = float(np.corrcoef(np.log1p(inputs), mins)[0, 1])

    over_limit = [(d, m) for d, m in profiles
                  if d.kernel_size > TOPO.max_threads]
    tolerant_over_limit = [m for _d, m in over_limit if m <= 20]

    lines = [
        f"profiled {len(profiles)} distinct kernels across "
        f"{len(ALL_MODEL_NAMES)} models",
        f"corr(log kernel size, minCU) = {size_corr:.2f} (loose trend, 6a)",
        f"corr(log input size,  minCU) = {input_corr:.2f} (no predictor, 6b)",
        f"kernels above the {TOPO.max_threads}-thread limit: "
        f"{len(over_limit)}; of those, {len(tolerant_over_limit)} need "
        f"<=20 CUs",
    ]
    write_result("fig6_mincu_predictors", "\n".join(lines))

    # 6a: a loose positive trend exists, but it is far from deterministic.
    assert 0.15 < size_corr < 0.9
    # 6a: kernels exceeding the physical thread limit can still tolerate
    # heavy restriction (the MIOpenConvFFT_fwd_in observation).
    assert len(tolerant_over_limit) >= 3
    # 6b: input size predicts even less than kernel size.
    assert input_corr < size_corr

    # 6b: the grouped-convolution class needs the full device regardless
    # of its input size; the FFT class stays tolerant regardless of its.
    grouped = [(d, m) for d, m in profiles if "group" in d.name]
    assert grouped and all(m >= 50 for _d, m in grouped)
    giants = [(d, m) for d, m in profiles if "im2col" in d.name]
    assert giants and all(m <= 20 for _d, m in giants)
    giant_inputs = {d.bytes_in for d, _m in giants}
    assert len(giant_inputs) > 3  # wide input-size range, same behaviour
