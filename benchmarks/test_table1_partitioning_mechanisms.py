"""Table I: comparison of GPU spatial-partitioning mechanisms.

Regenerates the reconfiguration-overhead column of Table I by measuring,
on the simulated stack, one partition resize through each mechanism:
process-scoped (MPS/MIG full reload), stream-scoped (CU-masking IOCTL),
and kernel-scoped (KRISP firmware mask generation).
"""

from conftest import write_result

from repro.analysis.tables import format_table
from repro.baselines.resize_paths import RESIZE_MECHANISMS, resize_latency


def test_table1_partitioning_mechanisms(benchmark):
    def run():
        latencies = {m.name: resize_latency(m.name) for m in RESIZE_MECHANISMS}
        rows = []
        for mech in RESIZE_MECHANISMS:
            lat = latencies[mech.name]
            if lat >= 1.0:
                overhead = f"{lat:.1f} s (high)"
            elif lat >= 1e-4:
                overhead = f"{lat * 1e3:.2f} ms (medium)"
            else:
                overhead = f"{lat * 1e6:.1f} us (low)"
            rows.append([mech.name, mech.scope,
                         mech.programmer_transparent,
                         mech.allows_oversubscription, overhead])
        return latencies, format_table(
            ["mechanism", "scope", "transparent", "oversubscribe",
             "reconfig overhead"],
            rows,
            title="Table I: GPU spatial partitioning mechanisms "
                  "(measured reconfiguration latency)",
        )

    latencies, table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("table1_partitioning_mechanisms", table)

    # Shape: process-scoped is seconds, stream-scoped sub-millisecond,
    # kernel-scoped microseconds — each orders of magnitude apart.
    assert latencies["mps"] > 1.0
    assert 1e-6 < latencies["cu-masking"] < 1e-3
    assert latencies["kernel-scoped"] < 10e-6
    assert latencies["mps"] / latencies["cu-masking"] > 1e3
    assert latencies["cu-masking"] / latencies["kernel-scoped"] > 5
