"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Heavy
sweeps (the Fig. 13 co-location grid) run once per session and are shared
by the benchmarks that consume them; each benchmark writes its rendered
table/series to ``benchmarks/results/<name>.txt`` and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the full evaluation.

The numbers will not match the authors' testbed in absolute terms (the
substrate is a simulator); the assertions pin the *shape* — who wins, by
roughly what factor, where crossovers fall.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

# Persist profiling caches inside the repo so repeated benchmark runs are
# fast and hermetic.
os.environ.setdefault(
    "REPRO_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".cache")
)

from repro.exp.cache import cached_run_experiment  # noqa: E402
from repro.exp.sweep import Sweep, run_sweep  # noqa: E402
from repro.models.zoo import MODEL_NAMES  # noqa: E402
from repro.server.experiment import (  # noqa: E402
    ExperimentConfig,
    isolated_baseline,
    normalized_rps,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Policies in the paper's plotting order.
POLICIES = ("mps-default", "static-equal", "model-rightsize",
            "krisp-o", "krisp-i")

WORKER_COUNTS = (1, 2, 4)


def write_result(name: str, text: str) -> None:
    """Print a rendered table/series and persist it under results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")


class ColocationGrid:
    """Lazily computed grid of co-location cells for one batch size.

    :meth:`prefetch` fills many cells at once through the parallel sweep
    orchestrator (``REPRO_JOBS`` workers, on-disk result cache); single
    misses fall back to an in-process cached run.
    """

    def __init__(self, batch_size: int, requests_scale: float = 1.0) -> None:
        self.batch_size = batch_size
        self.requests_scale = requests_scale
        self._cells: dict = {}

    def _config(self, model: str, policy: str,
                workers: int) -> ExperimentConfig:
        return ExperimentConfig(
            model_names=(model,) * workers,
            policy=policy,
            batch_size=self.batch_size,
            requests_scale=self.requests_scale,
        )

    def prefetch(self, models=MODEL_NAMES, policies=POLICIES,
                 worker_counts=WORKER_COUNTS) -> "ColocationGrid":
        """Compute every missing cell of a sub-grid in one parallel sweep."""
        keys = [(model, policy, workers)
                for model in models for policy in policies
                for workers in worker_counts]
        missing = [key for key in keys if key not in self._cells]
        if missing:
            sweep = Sweep(self._config(*key) for key in missing)
            report = run_sweep(sweep)
            report.raise_failures()
            for key in missing:
                self._cells[key] = report.results[self._config(*key)]
        return self

    def cell(self, model: str, policy: str, workers: int):
        """Experiment result for one (model, policy, workers) cell."""
        key = (model, policy, workers)
        if key not in self._cells:
            self._cells[key] = cached_run_experiment(self._config(*key))
        return self._cells[key]

    def normalized(self, model: str, policy: str, workers: int) -> float:
        """Fig. 13a y-axis: RPS normalised to the isolated worker."""
        return normalized_rps(self.cell(model, policy, workers))

    def baseline(self, model: str):
        """The isolated 1-worker reference cell."""
        return isolated_baseline(model, self.batch_size)


@pytest.fixture(scope="session")
def grid32() -> ColocationGrid:
    """The batch-32 co-location grid behind Fig. 13 and Table IV."""
    return ColocationGrid(32)


@pytest.fixture(scope="session")
def grid16() -> ColocationGrid:
    """Batch-16 grid (Fig. 14a); slightly shortened windows."""
    return ColocationGrid(16, requests_scale=0.75)


@pytest.fixture(scope="session")
def grid8() -> ColocationGrid:
    """Batch-8 grid (Fig. 14b); slightly shortened windows."""
    return ColocationGrid(8, requests_scale=0.75)
