"""Fig. 16: sensitivity to the CU-oversubscription (overlap) limit.

Sweeps KRISP's overlap limit from 0 (full isolation, KRISP-I) to 60
(unbounded, KRISP-O) and regenerates the normalized-RPS curves for 2 and
4 workers over the heavy, high-minCU models where the paper's effect
lives (resnext101, vgg19, resnet152).

Reproduced shape: at 4 workers — where contention dominates — limiting
overlap pays, so the limit-0 end of the curve beats the limit-60 end,
and 4 workers gain more from isolation than 2 (the paper's main Fig. 16
observations).  The paper's local spikes at limits 16/31/46 stem from SE
imbalance in single-pass Algorithm 1 masks; our allocator regrants
shrunk allocations into balanced shapes (see
``ResourceMaskGenerator(reshape=...)``), which removes the spikes — the
companion test quantifies that design improvement directly.
"""

from conftest import write_result

from repro.analysis.series import format_series
from repro.exp.sweep import Sweep, run_sweep
from repro.server.experiment import ExperimentConfig, normalized_rps
from repro.server.metrics import geomean

LIMITS = (0, 8, 15, 16, 23, 30, 31, 38, 45, 46, 53, 60)

#: High-minCU models: the regime where limiting overlap matters.
SWEEP_MODELS = ("resnext101", "vgg19", "resnet152")


def _config(model, workers, limit, reshape=True):
    return ExperimentConfig(
        model_names=(model,) * workers,
        policy="krisp-o",
        overlap_limit=limit,
        allocator_reshape=reshape,
        requests_scale=0.7,
    )


def _run_cells(configs):
    """One parallel sweep over the given cells -> {config: normalized}."""
    report = run_sweep(Sweep(configs))
    report.raise_failures()
    return {config: normalized_rps(report.result(config))
            for config in configs}


def test_fig16_overlap_limit(benchmark):
    def run():
        configs = [_config(m, workers, limit)
                   for workers in (2, 4)
                   for limit in LIMITS
                   for m in SWEEP_MODELS]
        norm = _run_cells(configs)
        return {workers: [
            geomean([norm[_config(m, workers, limit)]
                     for m in SWEEP_MODELS])
            for limit in LIMITS] for workers in (2, 4)}

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = []
    for workers, curve in curves.items():
        blocks.append(f"{workers} workers\n" + format_series(
            LIMITS, curve, x_label="overlap limit (CUs)",
            y_label="normalized RPS"))
    write_result("fig16_overlap_limit", "\n\n".join(blocks))

    for workers, curve in curves.items():
        # Bounded sensitivity: no limit setting catastrophically loses.
        assert min(curve) > 0.75 * max(curve)

    # At 4 workers, reducing the allowed overlap improves throughput —
    # why KRISP-I typically outperforms KRISP-O under heavy contention.
    by4 = dict(zip(LIMITS, curves[4]))
    assert by4[0] >= by4[60]
    # 4 workers have more to gain from isolation than 2.
    gain2 = curves[2][0] / curves[2][-1]
    gain4 = curves[4][0] / curves[4][-1]
    assert gain4 >= gain2 * 0.98


def test_fig16_reshape_removes_se_imbalance_penalty(benchmark):
    """The paper's Fig. 16 spikes come from ragged single-pass masks; the
    balanced regrant (our refinement) never performs worse than the
    literal Algorithm 1 under a mid-range overlap limit."""
    def run():
        configs = [_config(m, 4, limit=23, reshape=reshape)
                   for reshape in (False, True) for m in SWEEP_MODELS]
        norm = _run_cells(configs)
        return {reshape: geomean([
            norm[_config(m, 4, limit=23, reshape=reshape)]
            for m in SWEEP_MODELS]) for reshape in (False, True)}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "fig16_reshape_ablation",
        f"4 workers, overlap limit 23: literal Algorithm 1 = "
        f"{out[False]:.2f}x, balanced regrant = {out[True]:.2f}x",
    )
    assert out[True] >= out[False] * 0.97
