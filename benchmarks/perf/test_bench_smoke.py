"""Smoke test for the perf microbenchmark harness (CI's bench gate).

Runs the smallest pinned scenario in both recompute modes, asserts the
report schema, the cross-mode bit-identity, and the wall-time regression
gate against the committed ``baseline.json``.  Kept under
``benchmarks/perf/`` (outside the tier-1 ``tests/`` path) because it is
timing-sensitive by design.
"""

from __future__ import annotations

import json
from pathlib import Path

BASELINE = Path(__file__).with_name("baseline.json")


def test_colo4_compare_and_regression_gate():
    from repro.bench import BENCH_SCHEMA, check_report, run_bench

    report = run_bench(["colo4"], compare=True, repeats=2)

    assert report["schema"] == BENCH_SCHEMA
    rows = {row["mode"]: row for row in report["rows"]}
    assert set(rows) == {"incremental", "full"}
    for row in rows.values():
        assert row["scenario"] == "colo4"
        assert row["wall_s"] > 0
        assert row["events"] > 0
        assert row["events_per_s"] > 0
        # Schema 2: equal-timestamp batching honesty — instants visited
        # alongside events executed, never more of the former.
        assert 0 < row["batches"] <= row["events"]
        assert row["batches_per_s"] > 0
        assert row["queue"] == "auto"
        assert len(row["result_hash"]) == 64
    # Bit-identity across recompute modes (run_bench also enforces this).
    assert rows["incremental"]["result_hash"] == rows["full"]["result_hash"]
    assert "colo4" in report["speedups"]
    assert report["recommended_modes"]["colo4"] in ("incremental", "full")

    baseline = json.loads(BASELINE.read_text())
    failures = check_report(report, baseline, max_regression=0.30)
    assert not failures, "\n".join(failures)


def test_maskgen_is_deterministic():
    from repro.bench import run_scenario

    first = run_scenario("maskgen")
    second = run_scenario("maskgen")
    assert first.result_hash == second.result_hash
    assert first.events == second.events == 60_000


def test_default_baseline_discovery_and_deltas(tmp_path):
    import os

    from repro.bench import baseline_deltas, default_baseline_path

    # Discovery: newest-mtime BENCH_*.json wins; empty dir -> None.
    assert default_baseline_path(tmp_path) is None
    old = tmp_path / "BENCH_aaaaaaa.json"
    new = tmp_path / "BENCH_bbbbbbb.json"
    old.write_text("{}")
    new.write_text("{}")
    os.utime(old, (1, 1))
    os.utime(new, (2, 2))
    assert default_baseline_path(tmp_path) == new

    # The repo root carries at least one committed baseline.
    committed = default_baseline_path()
    assert committed is not None and committed.name.startswith("BENCH_")

    # Deltas are per-(scenario, mode) events/s ratios; one-sided rows
    # are skipped (works across schema versions).
    report = {"rows": [
        {"scenario": "dense", "mode": "incremental", "events_per_s": 150.0},
        {"scenario": "chaos", "mode": "full", "events_per_s": 80.0},
    ]}
    baseline = {"rows": [
        {"scenario": "dense", "mode": "incremental", "events_per_s": 100.0},
        {"scenario": "colo4", "mode": "full", "events_per_s": 5.0},
    ]}
    assert baseline_deltas(report, baseline) == {"dense/incremental": 1.5}
