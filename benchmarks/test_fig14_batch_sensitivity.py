"""Fig. 14: batch-size sensitivity (geomean normalized RPS at batch 16/8).

Smaller batches shrink each kernel's grid, lowering per-kernel CU
requirements and easing contention.  The paper's observations, asserted
here: MPS Default closes the gap at small batches (static partitions
become overly restrictive), yet KRISP-I still leads at 4 workers.
"""

from conftest import POLICIES, WORKER_COUNTS, write_result

from repro.analysis.tables import format_table
from repro.models.zoo import MODEL_NAMES
from repro.server.metrics import geomean


def _geomeans(grid):
    grid.prefetch()  # parallel sweep over all missing grid cells
    return {policy: {
        k: geomean([grid.normalized(m, policy, k) for m in MODEL_NAMES])
        for k in WORKER_COUNTS} for policy in POLICIES}


def test_fig14a_batch16(benchmark, grid16):
    geo = benchmark.pedantic(lambda: _geomeans(grid16),
                             rounds=1, iterations=1)
    rows = [[p] + [geo[p][k] for k in WORKER_COUNTS] for p in POLICIES]
    write_result("fig14a_batch16", format_table(
        ["policy", "x1", "x2", "x4"], rows,
        title="Fig. 14a: geomean normalized RPS, batch 16"))

    # Co-location still pays at batch 16.
    for policy in POLICIES:
        assert geo[policy][2] > 1.3
    # KRISP-I remains best (or tied-best) at 4 workers.
    best = max(geo[p][4] for p in POLICIES)
    assert geo["krisp-i"][4] >= 0.95 * best
    assert geo["krisp-i"][4] > geo["mps-default"][4]


def test_fig14b_batch8(benchmark, grid8):
    geo = benchmark.pedantic(lambda: _geomeans(grid8),
                             rounds=1, iterations=1)
    rows = [[p] + [geo[p][k] for k in WORKER_COUNTS] for p in POLICIES]
    write_result("fig14b_batch8", format_table(
        ["policy", "x1", "x2", "x4"], rows,
        title="Fig. 14b: geomean normalized RPS, batch 8"))

    for policy in POLICIES:
        assert geo[policy][2] > 1.3
    best = max(geo[p][4] for p in POLICIES)
    assert geo["krisp-i"][4] >= 0.95 * best
    assert geo["krisp-i"][4] > geo["mps-default"][4]


def test_fig14_mps_gap_closes_at_small_batch(benchmark, grid32, grid8):
    """Contention matters less at batch 8: MPS Default's deficit versus
    KRISP-I shrinks relative to batch 32."""
    def run():
        for grid in (grid32, grid8):
            grid.prefetch(policies=("krisp-i", "mps-default"),
                          worker_counts=(4,))
        gap32 = (geomean([grid32.normalized(m, "krisp-i", 4)
                          for m in MODEL_NAMES])
                 / geomean([grid32.normalized(m, "mps-default", 4)
                            for m in MODEL_NAMES]))
        gap8 = (geomean([grid8.normalized(m, "krisp-i", 4)
                         for m in MODEL_NAMES])
                / geomean([grid8.normalized(m, "mps-default", 4)
                           for m in MODEL_NAMES]))
        return gap32, gap8

    gap32, gap8 = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig14_mps_gap",
                 f"KRISP-I / MPS-Default at 4 workers: "
                 f"batch 32 = {gap32:.2f}x, batch 8 = {gap8:.2f}x")
    assert gap8 < gap32 * 1.02
