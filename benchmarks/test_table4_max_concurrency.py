"""Table IV: maximum concurrent models without SLO violations.

For every model and policy, finds the largest worker count in {1, 2, 4}
whose p95 stays within the 2x-isolated SLO, and checks the paper's
aggregate finding: KRISP-I achieves the best (or tied-best) concurrency
for most models.
"""

from conftest import POLICIES, WORKER_COUNTS, write_result

from repro.analysis.tables import format_table
from repro.models.zoo import MODEL_NAMES


def test_table4_max_concurrency(benchmark, grid32):
    def run():
        grid32.prefetch()  # parallel sweep over all missing grid cells
        concurrency = {}
        for model in MODEL_NAMES:
            for policy in POLICIES:
                best = 0
                for workers in WORKER_COUNTS:
                    if grid32.cell(model, policy, workers).meets_slo():
                        best = workers
                concurrency[(model, policy)] = best
        return concurrency

    concurrency = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[model] + [concurrency[(model, policy)] for policy in POLICIES]
            for model in MODEL_NAMES]
    write_result("table4_max_concurrency", format_table(
        ["model"] + list(POLICIES), rows,
        title="Table IV: max concurrent workers without SLO violation"))

    # Every model supports at least its isolated worker.
    assert all(v >= 1 for v in concurrency.values())

    # alexnet reaches 4 workers under every policy (paper row).
    assert all(concurrency[("alexnet", p)] == 4 for p in POLICIES)

    # KRISP-I achieves the best concurrency for most models (bold cells).
    best_or_tied = sum(
        1 for model in MODEL_NAMES
        if concurrency[(model, "krisp-i")]
        == max(concurrency[(model, p)] for p in POLICIES))
    assert best_or_tied >= len(MODEL_NAMES) - 2

    # KRISP-I's total concurrency across models beats MPS Default's.
    total = {p: sum(concurrency[(m, p)] for m in MODEL_NAMES)
             for p in POLICIES}
    assert total["krisp-i"] >= total["mps-default"]
