"""Fig. 13b: p95 tail latency versus the 2x-isolated SLO.

Regenerates the tail-latency grid and checks the paper's SLO narrative:
at 4 workers contention makes MPS Default violate the SLO for the heavy
models while the partitioned policies hold it for far more of them, and
no policy survives 4 concurrent densenet201 workers.
"""

from conftest import POLICIES, WORKER_COUNTS, write_result

from repro.analysis.tables import format_table
from repro.models.zoo import MODEL_NAMES
from repro.server.experiment import slo_target


def test_fig13b_tail_latency(benchmark, grid32):
    def run():
        grid32.prefetch()  # parallel sweep over all missing grid cells
        cells = {}
        for model in MODEL_NAMES:
            for policy in POLICIES:
                for workers in WORKER_COUNTS:
                    result = grid32.cell(model, policy, workers)
                    cells[(model, policy, workers)] = (
                        result.max_p95(), result.meets_slo())
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = []
    for model in MODEL_NAMES:
        slo = slo_target(model) * 1e3
        rows = []
        for policy in POLICIES:
            row = [policy]
            for k in WORKER_COUNTS:
                p95, ok = cells[(model, policy, k)]
                row.append(f"{p95 * 1e3:.1f}{'' if ok else '!'}")
            rows.append(row)
        blocks.append(format_table(
            ["policy", "x1 p95", "x2 p95", "x4 p95"], rows,
            title=f"{model}: p95 ms (SLO {slo:.1f} ms; '!' = violation)"))
    write_result("fig13b_tail_latency", "\n\n".join(blocks))

    def ok_count(policy, workers):
        return sum(1 for m in MODEL_NAMES if cells[(m, policy, workers)][1])

    # Everyone meets SLO at 1 worker; 2 workers is nearly free.
    for policy in POLICIES:
        assert ok_count(policy, 1) == len(MODEL_NAMES)
        assert ok_count(policy, 2) >= len(MODEL_NAMES) - 1

    # At 4 workers contention bites: MPS Default violates for several
    # heavy models, and spatial isolation holds SLO for at least as many
    # models as unrestricted sharing does.
    assert ok_count("mps-default", 4) <= len(MODEL_NAMES) - 2
    assert ok_count("krisp-i", 4) >= ok_count("mps-default", 4)
    assert ok_count("static-equal", 4) >= ok_count("mps-default", 4)

    # alexnet meets the SLO at 4 workers under every policy (Table IV row).
    for policy in POLICIES:
        assert cells[("alexnet", policy, 4)][1], policy
