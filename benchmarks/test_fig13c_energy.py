"""Fig. 13c: energy per inference.

Regenerates the energy-per-inference grid (relative to the isolated
single worker) and checks the paper's findings: co-locating 2 workers
cuts energy per inference for every partitioned policy, KRISP-I is among
the most efficient configurations at 4 workers, and its savings versus
the isolated inference are large (the paper reports 29%/33% at 2/4
workers).
"""

from conftest import POLICIES, WORKER_COUNTS, write_result

from repro.analysis.tables import format_table
from repro.models.zoo import MODEL_NAMES
from repro.server.metrics import geomean


def test_fig13c_energy(benchmark, grid32):
    def run():
        grid32.prefetch()  # parallel sweep over all missing grid cells
        ratio = {}
        for model in MODEL_NAMES:
            base = grid32.baseline(model).energy_per_request
            for policy in POLICIES:
                for workers in WORKER_COUNTS:
                    cell = grid32.cell(model, policy, workers)
                    ratio[(model, policy, workers)] = (
                        cell.energy_per_request / base)
        return ratio

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)

    geo = {policy: {k: geomean([ratio[(m, policy, k)] for m in MODEL_NAMES])
                    for k in WORKER_COUNTS} for policy in POLICIES}
    rows = [[policy] + [geo[policy][k] for k in WORKER_COUNTS]
            for policy in POLICIES]
    write_result("fig13c_energy", format_table(
        ["policy", "x1", "x2", "x4"], rows,
        title="Fig. 13c: energy per inference relative to isolated "
              "(geomean)"))

    # Two workers reduce energy per inference for every policy (the paper
    # reports 15-19% for the sharing policies).
    for policy in POLICIES:
        assert geo[policy][2] < 0.90

    # KRISP-I cuts energy per inference substantially versus isolated at
    # both 2 and 4 workers (paper: 29% and 33%).
    assert geo["krisp-i"][2] < 0.75
    assert geo["krisp-i"][4] < 0.67

    # At 4 workers the isolating policies (Static Equal, KRISP-I) are the
    # most efficient; unrestricted MPS wastes energy on contention.
    assert geo["krisp-i"][4] < geo["mps-default"][4]
    assert geo["static-equal"][4] < geo["mps-default"][4]
