"""Fig. 4: per-kernel minimum-CU traces for albert and resnext101.

Regenerates the kernel-wise minCU sequence over one inference pass and
checks the phase behaviour the paper describes: albert alternates mostly
small requirements with periodic full-device spikes; resnext101 is
dominated by high-requirement kernels yet still contains many small ones
— the fine-grain opportunity KRISP exploits.
"""

from conftest import write_result

from repro.models.zoo import get_model
from repro.profiling.model_profiler import kernel_mincu_trace


def _summarise(name: str, trace: list[int]) -> str:
    small = sum(1 for m in trace if m <= 15)
    large = sum(1 for m in trace if m >= 50)
    lines = [
        f"{name}: {len(trace)} kernels/pass; "
        f"{small} need <=15 CUs, {large} need >=50 CUs",
        "first 60 kernels: " + " ".join(f"{m}" for m in trace[:60]),
    ]
    return "\n".join(lines)


def test_fig4_kernel_traces(benchmark):
    def run():
        return (kernel_mincu_trace(get_model("albert")),
                kernel_mincu_trace(get_model("resnext101")))

    albert, resnext = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("fig4_kernel_traces",
                 _summarise("albert", albert) + "\n\n"
                 + _summarise("resnext101", resnext))

    # albert: majority of kernels need <=10-15 CUs, with periodic spikes
    # of 50-60-CU kernels (2 per transformer layer = 24 spikes).
    assert sum(1 for m in albert if m <= 15) / len(albert) > 0.75
    spikes = sum(1 for m in albert if m >= 50)
    assert spikes == 24
    # The spikes are periodic: one pair every 25-kernel layer.
    spike_positions = [i for i, m in enumerate(albert) if m >= 50]
    layer_gaps = {spike_positions[i + 2] - spike_positions[i]
                  for i in range(0, len(spike_positions) - 2, 2)}
    assert layer_gaps == {25}

    # resnext101: one >=50-CU kernel per block (33 blocks, plus the stem
    # convolution), but still hundreds of small kernels *within* the pass.
    assert 33 <= sum(1 for m in resnext if m >= 50) <= 35
    assert sum(1 for m in resnext if m <= 15) > 150

    # Models vary in both kernel count and requirement mix (Table III).
    assert len(albert) == 304
    assert len(resnext) == 347
