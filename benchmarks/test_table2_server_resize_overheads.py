"""Table II: spatially partitioned inference servers' resize overheads.

Regenerates the resize-overhead and masking columns of Table II by
driving the process-scoped baseline models: a GSLICE/Gpulet-style server
with shadow-instance masking versus KRISP's kernel-scoped resize.
"""

from conftest import write_result

from repro.analysis.tables import format_table
from repro.baselines.process_scoped import ReloadCostModel, ShadowInstanceServer
from repro.baselines.resize_paths import resize_latency
from repro.sim.engine import Simulator


def _shadow_resize_times(costs: ReloadCostModel) -> tuple[float, float]:
    """(time until new partition serves, serving downtime) for a
    shadow-masked process-scoped resize."""
    sim = Simulator()
    server = ShadowInstanceServer(sim, costs, min_resize_period=0.0)
    sim.run()
    start = sim.now
    server.resize(30)
    sim.run()
    return sim.now - start, server.downtime_total


def test_table2_server_resize_overheads(benchmark):
    def run():
        gslice = ReloadCostModel(partition_config=1.0, backend_start=2.0,
                                 model_load=5.0)      # 2-15 s range
        gpulet = ReloadCostModel(partition_config=2.0, backend_start=4.0,
                                 model_load=7.0)      # 10-15 s range
        rows = []
        gslice_total, gslice_down = _shadow_resize_times(gslice)
        rows.append(["GSLICE (MPS)", "model", f"{gslice_total:.1f} s",
                     f"{gslice_down * 1e6:.0f} us", "shadow instance"])
        gpulet_total, gpulet_down = _shadow_resize_times(gpulet)
        rows.append(["Gpulet (MPS)", "model", f"{gpulet_total:.1f} s",
                     f"{gpulet_down * 1e6:.0f} us",
                     "background instance (20 s epoch)"])
        paris = resize_latency("mig", ReloadCostModel(
            partition_config=2.0, backend_start=3.0, model_load=5.0))
        rows.append(["PARIS/ELSA (MIG)", "model", f"{paris:.1f} s", "n/a",
                     "multiple instances + scheduling"])
        krisp = resize_latency("kernel-scoped")
        rows.append(["KRISP (this work)", "kernel",
                     f"{krisp * 1e6:.1f} us", "0 us", "not required"])
        table = format_table(
            ["server", "right-size granularity", "resize overhead",
             "downtime w/ masking", "masking technique"],
            rows,
            title="Table II: spatially partitioned inference servers",
        )
        return (gslice_total, gslice_down, gpulet_total, krisp), table

    (gslice_total, gslice_down, gpulet_total, krisp), table = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("table2_server_resize_overheads", table)

    # Shape: shadow-masked reloads take seconds (2-15 s band) but serving
    # downtime is tens of microseconds; KRISP resizes in microseconds.
    assert 2.0 <= gslice_total <= 15.0
    assert 10.0 <= gpulet_total <= 15.0
    assert 40e-6 <= gslice_down <= 80e-6
    assert krisp < 10e-6
