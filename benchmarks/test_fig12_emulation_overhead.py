"""Fig. 12 / Section V-B: emulation-overhead accounting.

Measures, per model, the four latencies of the paper's correction —
L_real(baseline), L_emu(baseline), L_emu(KRISP), and the corrected
L_real(KRISP) — and validates that (a) the emulation overhead scales with
the model's kernel count (each kernel pays one barrier + callback + IOCTL
bracket) and (b) the correction recovers the directly-measured native
KRISP latency, which only a simulator can observe.
"""

from conftest import write_result

from repro.analysis.tables import format_table
from repro.core.krisp import KrispConfig, KrispSystem
from repro.gpu.device import GpuDevice
from repro.models.zoo import get_model
from repro.profiling.kernel_profiler import build_database
from repro.runtime.emulation import (
    EmulatedKernelScopedStream,
    FullGpuAllocator,
    corrected_latency,
    emulation_overhead,
)
from repro.runtime.hsa import HsaRuntime
from repro.runtime.stream import Stream
from repro.sim.engine import Simulator

MODELS = ("albert", "squeezenet", "resnet152", "vgg19")


def _run_pass(make_stream, model, passes=2):
    sim = Simulator()
    device = GpuDevice(sim)
    stream = make_stream(sim, device)
    for _ in range(passes):
        for desc in model.trace(32):
            stream.launch_kernel(desc)
    sim.run()
    return sim.now / passes


def _measure(model_name):
    model = get_model(model_name)
    database = build_database(model.trace(32))

    def native_base(sim, device):
        return Stream(HsaRuntime(sim, device))

    def emu_base(sim, device):
        return EmulatedKernelScopedStream(
            HsaRuntime(sim, device), allocator=FullGpuAllocator())

    def emu_krisp(sim, device):
        system = KrispSystem(sim, device, database,
                             config=KrispConfig(overlap_limit=0))
        return system.create_stream(emulated=True)

    def native_krisp(sim, device):
        system = KrispSystem(sim, device, database,
                             config=KrispConfig(overlap_limit=0))
        return system.create_stream()

    l_real_base = _run_pass(native_base, model)
    l_emu_base = _run_pass(emu_base, model)
    l_emu_krisp = _run_pass(emu_krisp, model)
    l_native_krisp = _run_pass(native_krisp, model)
    l_over = emulation_overhead(l_emu_base, l_real_base)
    return {
        "model": model_name,
        "kernels": model.kernel_count,
        "l_real_base": l_real_base,
        "l_over": l_over,
        "per_kernel": l_over / model.kernel_count,
        "corrected": corrected_latency(l_emu_krisp, l_over),
        "native": l_native_krisp,
    }


def test_fig12_emulation_overhead(benchmark):
    rows = benchmark.pedantic(
        lambda: [_measure(m) for m in MODELS], rounds=1, iterations=1)

    table = format_table(
        ["model", "#kernels", "L_real base (ms)", "L_over (ms)",
         "us/kernel", "corrected KRISP (ms)", "native KRISP (ms)"],
        [[r["model"], r["kernels"], r["l_real_base"] * 1e3,
          r["l_over"] * 1e3, r["per_kernel"] * 1e6,
          r["corrected"] * 1e3, r["native"] * 1e3] for r in rows],
        title="Fig. 12: emulation-overhead accounting",
    )
    write_result("fig12_emulation_overhead", table)

    per_kernel = [r["per_kernel"] for r in rows]
    # The bracket costs the same tens of microseconds per kernel for every
    # model (the paper's observation that overhead scales with kernel
    # count).
    assert max(per_kernel) / min(per_kernel) < 1.5
    assert all(10e-6 < p < 60e-6 for p in per_kernel)
    # The analytic correction recovers the native latency within 5%.
    for r in rows:
        assert abs(r["corrected"] - r["native"]) / r["native"] < 0.05
