"""The workload client: compiles a spec into sim-clock request injection.

One client per serving cell.  For generative arrival processes it runs a
``workload-client`` process whose loop is the historical
:class:`~repro.server.frontend.PoissonClient` loop verbatim — draw one
gap from the ``arrivals`` RNG stream, sleep, emit — so a homogeneous
Poisson spec at rate ``r`` is bit-identical to ``add_open_loop`` at the
same rate.  Heterogeneous mixes draw the request class from a *separate*
``workload-mix`` stream and LLM output lengths from ``workload-lengths``,
keeping the arrival gaps themselves invariant across mix changes.

Trace replay (a :class:`~repro.workload.spec.TraceWorkloadSpec`, or any
spec whose arrivals are a :class:`~repro.workload.arrivals
.TraceArrivals`) schedules each emission at its *absolute* timestamp, so
the injected arrival times reproduce the input trace exactly instead of
re-accumulating float gaps.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.server.request import InferenceRequest, RequestQueue
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.workload.arrivals import TraceArrivals
from repro.workload.spec import TraceWorkloadSpec, WorkloadSpec

__all__ = ["WorkloadClient"]


class WorkloadClient:
    """Open-loop request injection for one workload spec.

    ``queues`` maps each class model to its request queue (one shared
    queue for single-model specs, per-model queues otherwise).  Arrivals
    rejected by admission control are simply lost — the queue counts
    them as shed and the next arrival is drawn regardless, preserving
    the offered rate (open-loop semantics).
    """

    def __init__(
        self,
        sim: Simulator,
        spec: WorkloadSpec,
        queues: dict[str, RequestQueue],
        rng: RngRegistry,
        stop_time: float,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.queues = queues
        self.stop_time = stop_time
        self.issued = 0
        self.issued_per_model: dict[str, int] = {}
        #: Injected arrival timestamps, for trace-replay verification.
        self.arrival_times: list[float] = []
        self.process: Optional[Process] = None

        if isinstance(spec, TraceWorkloadSpec):
            for entry in spec.entries:
                if entry.time >= stop_time:
                    continue
                sim.schedule(entry.time, lambda e=entry: self._emit(
                    e.model, e.batch_size, e.output_tokens))
            return

        classes = spec.request_classes()
        self._classes = classes
        self._arrivals_rng = rng.stream("arrivals")
        self._mix_rng = rng.stream("workload-mix") \
            if len(classes) > 1 else None
        self._total_weight = sum(c.weight for c in classes)
        self._lengths_rng = rng.stream("workload-lengths") \
            if any(c.output_tokens is not None for c in classes) else None

        if isinstance(spec.arrivals, TraceArrivals):
            # Absolute-time replay: exact input timestamps.
            for t in spec.arrivals.times:
                if t >= stop_time:
                    continue
                sim.schedule(t, self._emit_drawn_class)
        else:
            self.process = Process(sim, self._run(), name="workload-client")

    # -- generative arrivals ------------------------------------------------
    def _run(self) -> Iterator:
        for gap in self.spec.arrivals.gaps(self._arrivals_rng):
            yield gap
            if self.sim.now >= self.stop_time:
                return
            self._emit_drawn_class()

    def _draw_class(self) -> int:
        if self._mix_rng is None:
            return 0
        draw = float(self._mix_rng.random()) * self._total_weight
        acc = 0.0
        for index, cls in enumerate(self._classes):
            acc += cls.weight
            if draw < acc:
                return index
        return len(self._classes) - 1

    def _emit_drawn_class(self) -> None:
        cls = self._classes[self._draw_class()]
        tokens: Optional[int] = None
        if cls.output_tokens is not None:
            lo, hi = cls.output_tokens
            tokens = int(self._lengths_rng.integers(lo, hi + 1))
        self._emit(cls.model, cls.batch_size, tokens)

    # -- emission -----------------------------------------------------------
    def _emit(self, model: str, batch_size: int,
              output_tokens: Optional[int]) -> None:
        request = InferenceRequest(
            model_name=model,
            batch_size=batch_size,
            arrival_time=self.sim.now,
            output_tokens=output_tokens,
        )
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.request_arrival(request)
        self.queues[model].offer(request)
        self.issued += 1
        self.issued_per_model[model] = \
            self.issued_per_model.get(model, 0) + 1
        self.arrival_times.append(request.arrival_time)
