"""Open-loop workload engine: arrival processes, specs, and injection.

The paper evaluates at closed-loop maximum load; the production question
("how much does kernel-wise right-sizing buy under *real* traffic?")
needs open-loop arrivals, bursty rates, and heterogeneous request mixes.
This package is that traffic layer, in three parts:

* :mod:`repro.workload.arrivals` — deterministic arrival processes
  (Poisson, bursty ON-OFF, diurnal-rate, trace replay) driven by named
  :mod:`repro.sim.rng` streams so runs stay bit-identical;
* :mod:`repro.workload.spec` — frozen, hashable, JSON/YAML-serialisable
  workload specs (homogeneous / heterogeneous mixes / trace replay)
  that join the content-addressed cache key;
* :mod:`repro.workload.client` — the injector compiling a spec into
  sim-clock requests through :meth:`repro.server.setup.ServingSetup
  .add_workload` and the ``workload=`` path of
  :func:`~repro.server.rate_experiment.run_rate_experiment`.

``krisp-repro load`` (and :func:`repro.exp.load.run_load_curve`) sweep a
spec across offered rates into latency-vs-rate curves.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    TraceArrivals,
    arrival_from_dict,
    arrival_kind,
    arrival_to_dict,
)
from repro.workload.client import WorkloadClient
from repro.workload.spec import (
    HeterogeneousWorkloadSpec,
    HomogeneousWorkloadSpec,
    RequestClass,
    TraceEntry,
    TraceWorkloadSpec,
    WorkloadSpec,
    load_workload,
    spec_hash,
    workload_from_dict,
    workload_from_yaml,
    workload_to_yaml,
)

__all__ = [
    "ArrivalProcess",
    "DiurnalArrivals",
    "OnOffArrivals",
    "PoissonArrivals",
    "TraceArrivals",
    "arrival_from_dict",
    "arrival_kind",
    "arrival_to_dict",
    "WorkloadClient",
    "HeterogeneousWorkloadSpec",
    "HomogeneousWorkloadSpec",
    "RequestClass",
    "TraceEntry",
    "TraceWorkloadSpec",
    "WorkloadSpec",
    "load_workload",
    "spec_hash",
    "workload_from_dict",
    "workload_from_yaml",
    "workload_to_yaml",
]
