"""Arrival processes: deterministic open-loop traffic generators.

Every process is a frozen dataclass — data, like
:class:`~repro.faults.schedule.FaultSchedule` events — that turns a named
RNG stream (:mod:`repro.sim.rng`) into a stream of inter-arrival *gaps*.
The gaps are drawn lazily, one per arrival, and accumulated on the sim
clock by the consuming client: the engine's ``now + gap`` left-fold is
exactly the accumulation the historical
:class:`~repro.server.frontend.PoissonClient` performs, so a
:class:`PoissonArrivals` stream is bit-identical to it at the same rate.

Kinds:

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate;
* :class:`OnOffArrivals` — bursty traffic alternating between an ON
  phase at ``on_rate`` and an OFF phase at ``off_rate`` (an exact
  piecewise-constant-rate Poisson process via memorylessness: a draw
  crossing the phase boundary is redrawn from the boundary);
* :class:`DiurnalArrivals` — a sinusoidally modulated rate (the
  day/night cycle, compressed to sim seconds) sampled exactly by
  Lewis–Shedler thinning against the peak rate;
* :class:`TraceArrivals` — replay of explicit arrival timestamps; the
  client schedules these at their *absolute* times so a replayed trace
  reproduces its input exactly (no float re-accumulation error).

All kinds serialise to JSON-native dicts under a stable ``kind`` tag
(mirroring the fault-event registry) so workload specs embedding them
can round-trip through YAML and join cache keys.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, replace
from typing import Any, Iterator, Union

import numpy as np

from repro.server.slo import _known_fields

__all__ = [
    "ArrivalProcess",
    "DiurnalArrivals",
    "OnOffArrivals",
    "PoissonArrivals",
    "TraceArrivals",
    "arrival_from_dict",
    "arrival_kind",
    "arrival_to_dict",
]


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals at ``rate`` batches per second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("arrival rate must be > 0")

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        """Inter-arrival gaps, drawn lazily (one ``exponential`` per
        arrival — the exact draw sequence of ``PoissonClient``)."""
        while True:
            yield float(rng.exponential(1.0 / self.rate))

    def mean_rate(self) -> float:
        """Long-run arrivals per second."""
        return self.rate

    def scaled(self, factor: float) -> "PoissonArrivals":
        """The same process at ``factor`` times the rate."""
        return replace(self, rate=self.rate * factor)


@dataclass(frozen=True)
class OnOffArrivals:
    """Bursty traffic: ``on_duration`` at ``on_rate``, then
    ``off_duration`` at ``off_rate``, repeating from t=0.

    An exact piecewise-constant-rate Poisson process: by memorylessness,
    a candidate gap that crosses the current phase's end is discarded
    and redrawn from the boundary at the next phase's rate.
    """

    on_rate: float
    on_duration: float
    off_duration: float
    off_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.on_rate <= 0:
            raise ValueError("on_rate must be > 0")
        if self.off_rate < 0:
            raise ValueError("off_rate must be >= 0")
        if self.on_duration <= 0 or self.off_duration <= 0:
            raise ValueError("phase durations must be > 0")

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        now = 0.0
        last = 0.0
        on = True
        phase_end = self.on_duration
        while True:
            rate = self.on_rate if on else self.off_rate
            if rate <= 0:
                now = phase_end
            else:
                candidate = now + float(rng.exponential(1.0 / rate))
                if candidate < phase_end:
                    now = candidate
                    yield now - last
                    last = now
                    continue
                now = phase_end
            on = not on
            phase_end += self.on_duration if on else self.off_duration

    def mean_rate(self) -> float:
        cycle = self.on_duration + self.off_duration
        return (self.on_rate * self.on_duration
                + self.off_rate * self.off_duration) / cycle

    def scaled(self, factor: float) -> "OnOffArrivals":
        """Both phase rates scaled; the burst timing is unchanged."""
        return replace(self, on_rate=self.on_rate * factor,
                       off_rate=self.off_rate * factor)


@dataclass(frozen=True)
class DiurnalArrivals:
    """Sinusoidally modulated rate: ``base_rate * (1 + amplitude *
    sin(2*pi*t/period + phase))``, sampled exactly by thinning."""

    base_rate: float
    amplitude: float = 0.5
    period: float = 60.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if self.period <= 0:
            raise ValueError("period must be > 0")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at sim time ``t``."""
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(
                2.0 * math.pi * t / self.period + self.phase))

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        # Lewis–Shedler thinning: homogeneous candidates at the peak
        # rate, accepted with probability rate(t)/peak.
        peak = self.base_rate * (1.0 + self.amplitude)
        now = 0.0
        last = 0.0
        while True:
            now += float(rng.exponential(1.0 / peak))
            if float(rng.random()) * peak <= self.rate_at(now):
                yield now - last
                last = now

    def mean_rate(self) -> float:
        """The sinusoid integrates to zero over a full period."""
        return self.base_rate

    def scaled(self, factor: float) -> "DiurnalArrivals":
        return replace(self, base_rate=self.base_rate * factor)


@dataclass(frozen=True)
class TraceArrivals:
    """Replay of explicit arrival timestamps (seconds, sorted)."""

    times: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "times", tuple(self.times))
        if not self.times:
            raise ValueError("trace must contain at least one arrival")
        if any(t < 0 for t in self.times):
            raise ValueError("trace times must be >= 0")
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("trace times must be sorted")

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        """Finite gap view of the trace (no RNG draws).

        Clients replay traces at absolute times instead (see
        :class:`~repro.workload.client.WorkloadClient`) so the input
        timestamps are reproduced exactly; this view exists for code
        that only consumes gap streams.
        """
        last = 0.0
        for t in self.times:
            yield t - last
            last = t

    def mean_rate(self) -> float:
        span = self.times[-1]
        return len(self.times) / span if span > 0 else float(len(self.times))

    def scaled(self, factor: float) -> "TraceArrivals":
        """Rate scaling compresses (or dilates) the timeline."""
        if factor <= 0:
            raise ValueError("scale factor must be > 0")
        return replace(self, times=tuple(t / factor for t in self.times))


ArrivalProcess = Union[
    PoissonArrivals, OnOffArrivals, DiurnalArrivals, TraceArrivals
]

#: Stable kind tags for (de)serialisation, in a fixed registry order.
_ARRIVAL_KINDS: dict[str, type] = {
    "poisson": PoissonArrivals,
    "onoff": OnOffArrivals,
    "diurnal": DiurnalArrivals,
    "trace": TraceArrivals,
}
_KIND_OF = {cls: kind for kind, cls in _ARRIVAL_KINDS.items()}


def arrival_kind(process: ArrivalProcess) -> str:
    """Stable kind tag of one process (``poisson``, ``onoff``, ...)."""
    return _KIND_OF[type(process)]


def arrival_to_dict(process: ArrivalProcess) -> dict[str, Any]:
    """JSON-native form under a ``kind`` tag (folded into cache keys)."""
    payload = {"kind": arrival_kind(process),
               **dataclasses.asdict(process)}
    if "times" in payload:
        payload["times"] = list(payload["times"])
    return payload


def arrival_from_dict(payload: dict[str, Any]) -> ArrivalProcess:
    """Inverse of :func:`arrival_to_dict`; unknown keys are ignored
    (the ``SloGuard.from_dict`` forward-compatibility convention)."""
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind not in _ARRIVAL_KINDS:
        raise ValueError(f"unknown arrival-process kind {kind!r}")
    cls = _ARRIVAL_KINDS[kind]
    data = _known_fields(cls, data)
    if "times" in data:
        data["times"] = tuple(data["times"])
    return cls(**data)
