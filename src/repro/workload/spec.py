"""Workload specs: frozen, hashable, YAML-round-trippable traffic.

A workload spec is the declarative artifact that makes an open-loop
experiment reproducible: it names the request classes (model, batch
size, optional LLM output-length range), their mix, and the arrival
process driving them.  Specs are frozen dataclasses — they hash, they
pickle across the load-curve process pool, and they serialise to
JSON-native dicts under a stable ``kind`` tag so the content-addressed
result cache folds them into its key (a spec'd run is exactly as
cacheable as a closed-loop cell).

Kinds:

* :class:`HomogeneousWorkloadSpec` — one request class;
* :class:`HeterogeneousWorkloadSpec` — weighted per-class mixes
  (requests are routed to per-model queues);
* :class:`TraceWorkloadSpec` — explicit (time, model, batch) entries
  replayed at their absolute timestamps.

The dict/YAML shape follows fmperf's ``HomogeneousWorkloadSpec`` /
``HeterogeneousWorkloadSpec`` convention; ``from_dict`` constructors
tolerate unknown keys exactly like :meth:`SloGuard.from_dict`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Optional, Union

from repro.server.slo import _known_fields
from repro.workload.arrivals import (
    ArrivalProcess,
    arrival_from_dict,
    arrival_to_dict,
)

__all__ = [
    "HeterogeneousWorkloadSpec",
    "HomogeneousWorkloadSpec",
    "RequestClass",
    "TraceEntry",
    "TraceWorkloadSpec",
    "WorkloadSpec",
    "load_workload",
    "spec_hash",
    "workload_from_dict",
    "workload_from_yaml",
    "workload_to_yaml",
]


def _tokens_tuple(value: Any) -> Optional[tuple[int, int]]:
    if value is None:
        return None
    lo, hi = value
    return (int(lo), int(hi))


def _validate_tokens(tokens: Optional[tuple[int, int]]) -> None:
    if tokens is None:
        return
    lo, hi = tokens
    if lo < 1 or hi < lo:
        raise ValueError("output_tokens must be (lo, hi) with 1 <= lo <= hi")


@dataclass(frozen=True)
class RequestClass:
    """One request class inside a heterogeneous mix.

    ``output_tokens`` is an inclusive ``(lo, hi)`` decode-length range
    for LLM-phase models; ``None`` keeps the model's default output
    length (and is the only valid setting for non-LLM models).
    """

    model: str
    batch_size: int = 32
    weight: float = 1.0
    output_tokens: Optional[tuple[int, int]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "output_tokens", _tokens_tuple(self.output_tokens))
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.weight <= 0:
            raise ValueError("class weight must be > 0")
        _validate_tokens(self.output_tokens)

    def to_dict(self) -> dict[str, Any]:
        payload = dataclasses.asdict(self)
        if payload["output_tokens"] is not None:
            payload["output_tokens"] = list(payload["output_tokens"])
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RequestClass":
        """Unknown keys are ignored (``SloGuard.from_dict`` convention)."""
        return cls(**_known_fields(cls, payload))


@dataclass(frozen=True)
class HomogeneousWorkloadSpec:
    """One request class under one arrival process (fmperf's shape)."""

    model: str
    arrivals: ArrivalProcess
    batch_size: int = 32
    output_tokens: Optional[tuple[int, int]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "output_tokens", _tokens_tuple(self.output_tokens))
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        _validate_tokens(self.output_tokens)

    def request_classes(self) -> tuple[RequestClass, ...]:
        """The (single) request class."""
        return (RequestClass(model=self.model, batch_size=self.batch_size,
                             weight=1.0, output_tokens=self.output_tokens),)

    def models(self) -> tuple[str, ...]:
        return (self.model,)

    def request_batch_size(self) -> int:
        """The uniform request batch size of this spec."""
        return self.batch_size

    def offered_rps(self) -> float:
        """Long-run offered load in requests (not batches) per second."""
        return self.arrivals.mean_rate() * self.batch_size

    def at_rate(self, offered_rps: float) -> "HomogeneousWorkloadSpec":
        """The same workload rescaled to ``offered_rps``."""
        if offered_rps <= 0:
            raise ValueError("offered_rps must be > 0")
        return replace(self, arrivals=self.arrivals.scaled(
            offered_rps / self.offered_rps()))

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": "homogeneous",
            "model": self.model,
            "batch_size": self.batch_size,
            "arrivals": arrival_to_dict(self.arrivals),
        }
        if self.output_tokens is not None:
            payload["output_tokens"] = list(self.output_tokens)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "HomogeneousWorkloadSpec":
        data = _known_fields(cls, payload)
        data["arrivals"] = arrival_from_dict(payload["arrivals"])
        return cls(**data)


@dataclass(frozen=True)
class HeterogeneousWorkloadSpec:
    """A weighted mix of request classes under one arrival process.

    Each arrival draws its class from the normalised weights (a separate
    ``workload-mix`` RNG stream, so the arrival gaps themselves stay
    identical across mix changes) and is routed to that class's
    per-model queue.
    """

    classes: tuple[RequestClass, ...]
    arrivals: ArrivalProcess

    def __post_init__(self) -> None:
        object.__setattr__(self, "classes", tuple(self.classes))
        if not self.classes:
            raise ValueError("need at least one request class")

    def request_classes(self) -> tuple[RequestClass, ...]:
        """The mix's request classes (the uniform spec accessor)."""
        return self.classes

    def models(self) -> tuple[str, ...]:
        """Distinct class models, in first-appearance order."""
        return tuple(dict.fromkeys(c.model for c in self.classes))

    def request_batch_size(self) -> int:
        """The uniform request batch size (mixed sizes are rejected:
        the serving stack's throughput accounting assumes one)."""
        sizes = {c.batch_size for c in self.classes}
        if len(sizes) != 1:
            raise ValueError(
                f"mixed per-class batch sizes {sorted(sizes)} are not "
                "supported; give every class the same batch_size")
        return next(iter(sizes))

    def offered_rps(self) -> float:
        total = sum(c.weight for c in self.classes)
        mean_batch = sum(c.weight * c.batch_size
                         for c in self.classes) / total
        return self.arrivals.mean_rate() * mean_batch

    def at_rate(self, offered_rps: float) -> "HeterogeneousWorkloadSpec":
        if offered_rps <= 0:
            raise ValueError("offered_rps must be > 0")
        return replace(self, arrivals=self.arrivals.scaled(
            offered_rps / self.offered_rps()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "heterogeneous",
            "classes": [c.to_dict() for c in self.classes],
            "arrivals": arrival_to_dict(self.arrivals),
        }

    @classmethod
    def from_dict(cls,
                  payload: dict[str, Any]) -> "HeterogeneousWorkloadSpec":
        return cls(
            classes=tuple(RequestClass.from_dict(c)
                          for c in payload["classes"]),
            arrivals=arrival_from_dict(payload["arrivals"]),
        )


@dataclass(frozen=True)
class TraceEntry:
    """One replayed request: arrive at ``time`` for ``model``."""

    time: float
    model: str
    batch_size: int = 32
    output_tokens: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("entry time must be >= 0")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.output_tokens is not None and self.output_tokens < 1:
            raise ValueError("output_tokens must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TraceEntry":
        return cls(**_known_fields(cls, payload))


@dataclass(frozen=True)
class TraceWorkloadSpec:
    """Explicit request timeline, replayed at absolute sim times."""

    entries: tuple[TraceEntry, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))
        if not self.entries:
            raise ValueError("trace workload needs at least one entry")
        times = [e.time for e in self.entries]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace entries must be sorted by time")

    def request_classes(self) -> tuple[RequestClass, ...]:
        """One class per distinct model, in first-appearance order
        (used for queue wiring; the mix is the trace itself)."""
        seen: dict[str, RequestClass] = {}
        for entry in self.entries:
            if entry.model not in seen:
                seen[entry.model] = RequestClass(
                    model=entry.model, batch_size=entry.batch_size)
        return tuple(seen.values())

    def models(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(e.model for e in self.entries))

    def request_batch_size(self) -> int:
        sizes = {e.batch_size for e in self.entries}
        if len(sizes) != 1:
            raise ValueError(
                f"mixed per-entry batch sizes {sorted(sizes)} are not "
                "supported; give every entry the same batch_size")
        return next(iter(sizes))

    def offered_rps(self) -> float:
        span = self.entries[-1].time
        total = sum(e.batch_size for e in self.entries)
        return total / span if span > 0 else float(total)

    def at_rate(self, offered_rps: float) -> "TraceWorkloadSpec":
        """Rescale by compressing/dilating the timeline."""
        if offered_rps <= 0:
            raise ValueError("offered_rps must be > 0")
        factor = offered_rps / self.offered_rps()
        return replace(self, entries=tuple(
            replace(e, time=e.time / factor) for e in self.entries))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "trace",
                "entries": [e.to_dict() for e in self.entries]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TraceWorkloadSpec":
        return cls(entries=tuple(TraceEntry.from_dict(e)
                                 for e in payload["entries"]))


WorkloadSpec = Union[
    HomogeneousWorkloadSpec, HeterogeneousWorkloadSpec, TraceWorkloadSpec
]

#: Stable kind tags, fixed registry order (the fault-schedule idiom).
_SPEC_KINDS: dict[str, type] = {
    "homogeneous": HomogeneousWorkloadSpec,
    "heterogeneous": HeterogeneousWorkloadSpec,
    "trace": TraceWorkloadSpec,
}


def workload_from_dict(payload: dict[str, Any]) -> WorkloadSpec:
    """Build any workload-spec kind from its dict form."""
    kind = payload.get("kind")
    if kind not in _SPEC_KINDS:
        raise ValueError(f"unknown workload-spec kind {kind!r}; "
                         f"expected one of {sorted(_SPEC_KINDS)}")
    return _SPEC_KINDS[kind].from_dict(payload)


def spec_hash(spec: WorkloadSpec) -> str:
    """Stable content hash of one spec's canonical JSON form."""
    canon = json.dumps(spec.to_dict(), sort_keys=True,
                       separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def _yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - PyYAML is a test dep
        raise RuntimeError(
            "PyYAML is required for YAML workload specs; install pyyaml "
            "or use JSON / workload_from_dict") from exc
    return yaml


def workload_to_yaml(spec: WorkloadSpec) -> str:
    """YAML form of one spec (inverse of :func:`workload_from_yaml`)."""
    return _yaml().safe_dump(spec.to_dict(), sort_keys=True,
                             default_flow_style=False)


def workload_from_yaml(text: str) -> WorkloadSpec:
    """Parse a YAML workload spec document."""
    payload = _yaml().safe_load(text)
    if not isinstance(payload, dict):
        raise ValueError("workload spec document must be a mapping")
    return workload_from_dict(payload)


def load_workload(path) -> WorkloadSpec:
    """Load a spec from a ``.json`` or YAML file."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".json":
        return workload_from_dict(json.loads(text))
    return workload_from_yaml(text)
