"""Chrome-trace export of device kernel traces.

Thin backward-compatible wrapper over the observability layer: the event
construction now lives in
:func:`repro.obs.tracer.events_from_kernel_records`, and richer traces
(request lifecycle, mask decisions, flow arrows) come from recording a
run through :class:`repro.obs.Tracer` — see ``krisp-repro trace``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence, Union

from repro.gpu.device import KernelRecord
from repro.obs.tracer import events_from_kernel_records

__all__ = ["trace_events", "export_chrome_trace"]


def trace_events(trace: Sequence[KernelRecord]) -> list[dict]:
    """Chrome trace events (complete 'X' events) for finished kernels.

    Timestamps are microseconds, as the format requires.  Each worker tag
    becomes a thread row; kernels carry their CU-mask metadata as args.
    """
    return events_from_kernel_records(trace)


def export_chrome_trace(trace: Sequence[KernelRecord],
                        path: Union[str, Path]) -> int:
    """Write a chrome://tracing JSON file; returns the event count."""
    events = trace_events(trace)
    Path(path).write_text(json.dumps({"traceEvents": events}, indent=1))
    return len(events)
