"""Chrome-trace export of device kernel traces.

Serialises a device's recorded kernel execution into the Chrome Trace
Event Format (the JSON ``chrome://tracing`` / Perfetto consume), with one
timeline row per worker tag and per-kernel metadata (mask size, SE
shape).  Handy for eyeballing exactly where partitions overlap — the
visual equivalent of the paper's Fig. 1.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence, Union

from repro.gpu.device import KernelRecord

__all__ = ["trace_events", "export_chrome_trace"]


def trace_events(trace: Sequence[KernelRecord]) -> list[dict]:
    """Chrome trace events (complete 'X' events) for finished kernels.

    Timestamps are microseconds, as the format requires.  Each worker tag
    becomes a thread row; kernels carry their CU-mask metadata as args.
    """
    tags = sorted({record.launch.tag or "untagged" for record in trace})
    tid_of = {tag: index + 1 for index, tag in enumerate(tags)}
    events: list[dict] = [
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
         "args": {"name": tag}}
        for tag, tid in tid_of.items()
    ]
    for record in trace:
        if record.end_time is None:
            continue
        desc = record.launch.descriptor
        events.append({
            "name": desc.name,
            "ph": "X",
            "pid": 1,
            "tid": tid_of[record.launch.tag or "untagged"],
            "ts": record.start_time * 1e6,
            "dur": (record.end_time - record.start_time) * 1e6,
            "args": {
                "cus": record.mask.count(),
                "per_se": record.mask.per_se_counts(),
                "workgroups": desc.workgroups,
                "requested_cus": record.launch.requested_cus,
            },
        })
    return events


def export_chrome_trace(trace: Sequence[KernelRecord],
                        path: Union[str, Path]) -> int:
    """Write a chrome://tracing JSON file; returns the event count."""
    events = trace_events(trace)
    Path(path).write_text(json.dumps({"traceEvents": events}, indent=1))
    return len(events)
