"""Repeated-seed experiment statistics.

The experiment harness is deterministic per seed; publication-grade
results want means and confidence intervals over seeds.  This module
repeats an experiment configuration across seeds and summarises any
scalar metric with a Student-t confidence interval (scipy provides the
critical values).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from scipy import stats as scipy_stats

from repro.server.experiment import ExperimentConfig, ExperimentResult, run_experiment

__all__ = ["MetricSummary", "repeat_experiment", "summarize"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean and confidence interval of a scalar metric over seeds."""

    mean: float
    stddev: float
    ci_low: float
    ci_high: float
    samples: int

    @property
    def ci_halfwidth(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2


def summarize(values: Sequence[float], confidence: float = 0.95) -> MetricSummary:
    """Student-t confidence interval for a sample of metric values."""
    if not values:
        raise ValueError("no values")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return MetricSummary(mean, 0.0, mean, mean, 1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stddev = math.sqrt(variance)
    t_crit = float(scipy_stats.t.ppf((1 + confidence) / 2, df=n - 1))
    half = t_crit * stddev / math.sqrt(n)
    return MetricSummary(mean, stddev, mean - half, mean + half, n)


def repeat_experiment(
    config: ExperimentConfig,
    metric: Callable[[ExperimentResult], float],
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    confidence: float = 0.95,
) -> MetricSummary:
    """Run ``config`` under each seed and summarise ``metric``.

    Example::

        summary = repeat_experiment(
            ExperimentConfig(("albert",) * 2, policy="krisp-i"),
            metric=lambda r: r.total_rps,
            seeds=range(5),
        )
    """
    if not seeds:
        raise ValueError("need at least one seed")
    values = [metric(run_experiment(replace(config, seed=seed)))
              for seed in seeds]
    return summarize(values, confidence)
