"""Compact rendering of sweep curves (figure-shaped results)."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_series", "ascii_curve"]


def format_series(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    y_format: str = "{:.3g}",
) -> str:
    """Two-column listing of a sweep (the raw data behind a figure)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    lines = [f"{x_label:>12}  {y_label}"]
    for x, y in zip(xs, ys):
        lines.append(f"{x:>12g}  {y_format.format(y)}")
    return "\n".join(lines)


def ascii_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 48,
    label: str = "",
) -> str:
    """One-line-per-point bar rendering of a curve, for quick shape checks
    in benchmark logs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not ys:
        return label
    top = max(ys)
    lines = [label] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * (0 if top == 0 else max(1, round(y / top * width)))
        lines.append(f"{x:>8g} |{bar} {y:.3g}")
    return "\n".join(lines)
