"""Result analysis and presentation helpers.

:mod:`~repro.analysis.tables` renders experiment results as aligned text
tables (the form every benchmark prints); :mod:`~repro.analysis.series`
renders sweep curves as compact ASCII series for figure-shaped results.
"""

from repro.analysis.series import ascii_curve, format_series
from repro.analysis.tables import format_table

__all__ = ["format_table", "format_series", "ascii_curve"]
