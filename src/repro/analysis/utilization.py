"""CU-utilization timelines (the paper's Fig. 1 motivation view).

Given a device's recorded kernel trace, reconstructs how many CUs were
*allocated* and how many were *occupied* (actually holding workgroups)
over time.  The gap between the device size and the occupied count is
exactly the fine-grain under-utilisation KRISP harvests; comparing
allocated versus occupied shows how much a model-wise partition
over-provisions individual kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.gpu.device import KernelRecord
from repro.gpu.topology import GpuTopology

__all__ = ["UtilizationTimeline", "utilization_timeline"]


@dataclass(frozen=True)
class UtilizationTimeline:
    """Sampled CU usage over a window."""

    times: tuple[float, ...]
    allocated_cus: tuple[float, ...]
    occupied_cus: tuple[float, ...]
    total_cus: int

    def mean_allocated(self) -> float:
        """Time-average allocated CUs."""
        return sum(self.allocated_cus) / len(self.allocated_cus)

    def mean_occupied(self) -> float:
        """Time-average occupied CUs."""
        return sum(self.occupied_cus) / len(self.occupied_cus)

    def under_utilization(self) -> float:
        """Fraction of the device occupied by nothing, on average."""
        return 1.0 - self.mean_occupied() / self.total_cus

    def over_allocation(self) -> float:
        """Fraction of allocated CUs that held no workgroups, on average.

        This is the fine-grain waste *within* partitions that model-wise
        right-sizing cannot recover and kernel-wise right-sizing does.
        """
        allocated = self.mean_allocated()
        if allocated == 0:
            return 0.0
        return 1.0 - self.mean_occupied() / allocated


def utilization_timeline(
    trace: Sequence[KernelRecord],
    topology: GpuTopology,
    start: float = 0.0,
    end: float | None = None,
    samples: int = 200,
) -> UtilizationTimeline:
    """Sample allocated/occupied CU counts from a device kernel trace.

    ``trace`` is ``device.trace`` recorded with ``record_trace=True``;
    incomplete records (still running at the end of simulation) are
    ignored.  Overlapping kernels cap at the device size.
    """
    finished = [r for r in trace if r.end_time is not None]
    if end is None:
        end = max((r.end_time for r in finished), default=start)
    if end <= start:
        raise ValueError("empty sampling window")
    if samples < 1:
        raise ValueError("samples must be >= 1")

    step = (end - start) / samples
    times, allocated, occupied = [], [], []
    for i in range(samples):
        t = start + (i + 0.5) * step
        alloc = 0
        occ = 0
        for record in finished:
            if record.start_time <= t < record.end_time:
                alloc += record.mask.count()
                occ += sum(record.occupied_per_se)
        times.append(t)
        allocated.append(min(alloc, topology.total_cus))
        occupied.append(min(occ, topology.total_cus))
    return UtilizationTimeline(
        times=tuple(times),
        allocated_cus=tuple(allocated),
        occupied_cus=tuple(occupied),
        total_cus=topology.total_cus,
    )
