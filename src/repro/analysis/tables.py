"""Aligned text tables for benchmark output."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as a monospace table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Columns are right-aligned except the first.
    """
    def cell(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))

    def line(cells: Sequence[str]) -> str:
        parts = []
        for i, text in enumerate(cells):
            parts.append(text.ljust(widths[i]) if i == 0
                         else text.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
