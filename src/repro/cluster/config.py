"""Frozen, serialisable configuration for fleet-scale runs.

:class:`ClusterConfig` describes the fleet shape — how many devices,
which models every node serves, the partitioning policy each device
runs, how many worker slots each (node, model) pool holds, and which
placement policy the router uses.  :class:`AutoscalerConfig` describes
the control loop that grows and shrinks those pools at run time.

Both are plain frozen dataclasses with ``to_dict``/``from_dict`` in the
same JSON-native style as :class:`~repro.server.experiment
.ExperimentConfig`, so they pickle across the fleet process pool and
fold into the content-addressed cluster cache key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.server.experiment import ExperimentConfig
from repro.server.slo import _known_fields

__all__ = ["AutoscalerConfig", "ClusterConfig", "ROUTER_POLICIES"]

#: Placement policies the router knows (registry order is stable).
ROUTER_POLICIES: tuple[str, ...] = ("least-loaded", "free-cu", "affinity")


@dataclass(frozen=True)
class ClusterConfig:
    """The shape of one simulated fleet.

    Every node is identical: one :class:`~repro.gpu.device.GpuDevice`
    running ``policy``, serving every model in ``model_names`` through a
    pool of up to ``pool_size`` worker slots per model (``pool_min`` of
    them active from t=0; the autoscaler may activate the rest).
    """

    devices: int
    model_names: tuple[str, ...]
    policy: str = "krisp-i"
    batch_size: int = 32
    seed: int = 0
    router: str = "least-loaded"
    pool_size: int = 2
    pool_min: int = 1
    emulated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "model_names", tuple(self.model_names))
        if self.devices < 1:
            raise ValueError("a cluster needs at least one device")
        if not self.model_names:
            raise ValueError("model_names must be non-empty")
        if len(set(self.model_names)) != len(self.model_names):
            raise ValueError("model_names must be distinct (pools are "
                             "per model; pool_size adds replicas)")
        if not 1 <= self.pool_min <= self.pool_size:
            raise ValueError("need 1 <= pool_min <= pool_size")
        if self.router not in ROUTER_POLICIES:
            raise ValueError(f"unknown router policy {self.router!r}; "
                             f"expected one of {ROUTER_POLICIES}")

    def node_config(self) -> ExperimentConfig:
        """The per-node :class:`ExperimentConfig`.

        One plan (and one policy stream, hence one partition) per pool
        slot: ``model_names`` repeats each model ``pool_size`` times, so
        the plan for (model ``m``, slot ``s``) sits at index
        ``m * pool_size + s`` — the layout :class:`~repro.cluster.setup
        .ClusterSetup` relies on.
        """
        return ExperimentConfig(
            model_names=tuple(model for model in self.model_names
                              for _ in range(self.pool_size)),
            policy=self.policy,
            batch_size=self.batch_size,
            seed=self.seed,
            emulated=self.emulated,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "devices": self.devices,
            "model_names": list(self.model_names),
            "policy": self.policy,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "router": self.router,
            "pool_size": self.pool_size,
            "pool_min": self.pool_min,
            "emulated": self.emulated,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ClusterConfig":
        data = dict(_known_fields(cls, payload))
        data["model_names"] = tuple(data["model_names"])
        return cls(**data)


@dataclass(frozen=True)
class AutoscalerConfig:
    """The load-driven pool controller, ECLIP-style overhead-bounded.

    Every ``interval`` sim-seconds the controller reads each model's
    queued backlog from the fleet's :class:`~repro.obs.sampler
    .SimSampler` gauges, normalises by the model's active worker count,
    and compares against the watermarks.  Churn is capped three ways:

    * **hysteresis** — scale-down needs ``hysteresis_ticks`` consecutive
      below-low-watermark readings (one hot sample never flaps a pool);
    * **cooldown** — after acting on a model, that model is frozen for
      ``cooldown`` sim-seconds;
    * **bounded repacking** — at most ``max_actions_per_window`` resizes
      fleet-wide in any sliding ``window`` (the ECLIP bound: repartition
      overhead stays a bounded fraction of run time).
    """

    interval: float = 20e-3
    high_watermark: float = 3.0
    low_watermark: float = 0.5
    hysteresis_ticks: int = 2
    cooldown: float = 60e-3
    window: float = 0.25
    max_actions_per_window: int = 4
    min_active: int = 1

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be > 0")
        if self.low_watermark < 0 or self.high_watermark <= self.low_watermark:
            raise ValueError("need 0 <= low_watermark < high_watermark")
        if self.hysteresis_ticks < 1:
            raise ValueError("hysteresis_ticks must be >= 1")
        if self.cooldown < 0 or self.window <= 0:
            raise ValueError("need cooldown >= 0 and window > 0")
        if self.max_actions_per_window < 1:
            raise ValueError("max_actions_per_window must be >= 1")
        if self.min_active < 1:
            raise ValueError("min_active must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        return {
            "interval": self.interval,
            "high_watermark": self.high_watermark,
            "low_watermark": self.low_watermark,
            "hysteresis_ticks": self.hysteresis_ticks,
            "cooldown": self.cooldown,
            "window": self.window,
            "max_actions_per_window": self.max_actions_per_window,
            "min_active": self.min_active,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AutoscalerConfig":
        return cls(**_known_fields(cls, payload))
