"""The fleet grid: devices × placement policy × offered rate.

:func:`run_fleet` sweeps :func:`~repro.cluster.experiment
.run_cluster_experiment` over a grid of fleet sizes, router policies,
and offered rates, producing a :class:`FleetReport` with one row per
cell plus a per-(devices, policy) capacity knee.  Cells are pure
functions of their inputs, so the grid parallelises across a process
pool exactly like :func:`~repro.exp.sweep.run_sweep` — serial and
pooled execution assemble bit-identical reports — and caches through
the content-addressed cluster store.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.cluster.config import AutoscalerConfig, ClusterConfig
from repro.cluster.experiment import (
    ClusterResult,
    ClusterResultCache,
    cached_run_cluster_experiment,
    default_cluster_cache,
    run_cluster_experiment,
)
from repro.server.options import RunOptions
from repro.workload.spec import WorkloadSpec, workload_from_dict

__all__ = ["DEFAULT_FLEET_SCALES", "FleetCell", "FleetReport", "run_fleet"]

#: Default offered-rate multiples of the spec's native rate.
DEFAULT_FLEET_SCALES: tuple[float, ...] = (0.5, 1.0, 1.5)


@dataclass(frozen=True)
class FleetCell:
    """One (devices, policy, rate) grid cell and its outcome."""

    devices: int
    router: str
    offered_rps: float
    result: ClusterResult


@dataclass(frozen=True)
class FleetReport:
    """A full fleet grid plus its provenance."""

    base: ClusterConfig
    workload: Any
    duration: float
    autoscaler: Optional[AutoscalerConfig]
    cells: tuple[FleetCell, ...]
    cache_hits: int = 0

    def curve(self, devices: int, router: str) -> list[FleetCell]:
        """One (devices, policy) curve in offered-rate order."""
        return sorted((c for c in self.cells
                       if c.devices == devices and c.router == router),
                      key=lambda c: c.offered_rps)

    def knee_rps(self, devices: int, router: str,
                 factor: float = 3.0) -> Optional[float]:
        """Highest offered rate of the (devices, policy) curve whose p95
        stays within ``factor`` of its lightest point's p95 and whose
        queues drained; ``None`` when even the lightest point blew up."""
        curve = self.curve(devices, router)
        if not curve:
            return None
        base = curve[0].result.latency.p95
        knee = None
        for cell in curve:
            result = cell.result
            if result.queue_residue > 2 * cell.devices \
                    or result.latency.p95 > factor * base:
                break
            knee = cell.offered_rps
        return knee

    def to_rows(self) -> list[dict[str, Any]]:
        """JSON-native rows, one per cell, in grid order."""
        rows = []
        for cell in self.cells:
            r = cell.result
            rows.append({
                "devices": cell.devices,
                "router": cell.router,
                "offered_rps": r.offered_rps,
                "achieved_rps": r.achieved_rps,
                "goodput_rps": r.goodput_rps,
                "p50_ms": r.latency.p50 * 1e3,
                "p95_ms": r.latency.p95 * 1e3,
                "shed": r.shed,
                "queue_residue": r.queue_residue,
                "scale_ups": r.scale_ups,
                "scale_downs": r.scale_downs,
                "crashes": r.crashes,
                "restarts": r.restarts,
                "conservation_ok": r.conservation_ok,
                "node_utilization": [n.gpu_utilization for n in r.nodes],
                "node_completed": [n.completed for n in r.nodes],
            })
        return rows

    def to_payload(self) -> dict[str, Any]:
        """The deterministic JSON document the ``fleet`` CLI emits."""
        knees = [
            {"devices": d, "router": p, "knee_rps": self.knee_rps(d, p)}
            for d in sorted({c.devices for c in self.cells})
            for p in sorted({c.router for c in self.cells})
        ]
        payload: dict[str, Any] = {
            "schema": 1,
            "base": self.base.to_dict(),
            "workload": self.workload.to_dict(),
            "duration": self.duration,
            "rows": self.to_rows(),
            "knees": knees,
            "scale_events": {
                f"{c.devices}x/{c.router}/{c.offered_rps:g}": [
                    e.to_dict() for e in c.result.scale_events]
                for c in self.cells if c.result.scale_events
            },
        }
        if self.autoscaler is not None:
            payload["autoscaler"] = self.autoscaler.to_dict()
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    def to_text(self) -> str:
        from repro.analysis.tables import format_table
        rows = [
            [f"{c.devices}", c.router, f"{r.offered_rps:.0f}",
             f"{r.achieved_rps:.0f}", f"{r.goodput_rps:.0f}",
             f"{r.latency.p95 * 1e3:.2f}", r.shed,
             f"+{r.scale_ups}/-{r.scale_downs}",
             "ok" if r.conservation_ok else "VIOLATED"]
            for c in self.cells for r in (c.result,)
        ]
        table = format_table(
            ["devices", "router", "offered", "achieved", "goodput",
             "p95 (ms)", "shed", "scaled", "conserved"],
            rows,
            title=f"fleet grid over {len(self.cells)} cells "
                  f"({self.duration:.2f} s per cell)")
        lines = [table]
        for d in sorted({c.devices for c in self.cells}):
            for p in sorted({c.router for c in self.cells}):
                knee = self.knee_rps(d, p)
                lines.append(f"knee {d}x {p}: "
                             + (f"{knee:.0f} rps" if knee else "none"))
        return "\n".join(lines)


def _run_cell(base_payload: dict, workload_payload: dict, devices: int,
              router: str, offered_rps: float, duration: float,
              autoscaler_payload: Optional[dict],
              faults_payload: Optional[dict],
              guard_payload: Optional[dict], use_cache: bool):
    """One pooled fleet cell; exceptions cross the pool as strings."""
    try:
        from repro.faults.schedule import FaultSchedule
        from repro.server.slo import SloGuard

        base = ClusterConfig.from_dict(base_payload)
        config = ClusterConfig.from_dict(
            {**base.to_dict(), "devices": devices, "router": router})
        workload = workload_from_dict(workload_payload)
        autoscaler = (AutoscalerConfig.from_dict(autoscaler_payload)
                      if autoscaler_payload is not None else None)
        faults = (FaultSchedule.from_dict(faults_payload)
                  if faults_payload is not None else None)
        guard = (SloGuard.from_dict(guard_payload)
                 if guard_payload is not None else None)
        if use_cache:
            result = cached_run_cluster_experiment(
                config, workload, offered_rps=offered_rps,
                duration=duration, autoscaler=autoscaler,
                faults=faults, guard=guard)
        else:
            result = run_cluster_experiment(
                config, workload.at_rate(offered_rps), duration=duration,
                autoscaler=autoscaler,
                options=RunOptions(faults=faults, guard=guard))
        return devices, router, offered_rps, result, None
    except Exception as exc:  # noqa: BLE001 - report, don't hang the pool
        return devices, router, offered_rps, None, f"{type(exc).__name__}: {exc}"


def run_fleet(
    base: ClusterConfig,
    workload: WorkloadSpec,
    *,
    devices: tuple[int, ...] = (1, 2, 4),
    routers: Optional[tuple[str, ...]] = None,
    scales: tuple[float, ...] = DEFAULT_FLEET_SCALES,
    duration: Optional[float] = None,
    autoscaler: Optional[AutoscalerConfig] = AutoscalerConfig(),
    faults=None,
    guard=None,
    jobs: int = 1,
    use_cache: bool = True,
    cache: Optional[ClusterResultCache] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FleetReport:
    """Sweep the fleet grid; deterministic across ``jobs`` settings.

    ``routers=None`` runs only the base config's policy; pass a tuple
    to compare policies.  Rates are ``scales`` multiples of the spec's
    native offered rate.  ``faults`` (NodeCrash-only) and ``guard``
    apply to every cell.  Grid order (devices-major, router, then rate)
    is the report's cell order regardless of pool scheduling.
    """
    from repro.cluster.experiment import DEFAULT_FLEET_DURATION

    if duration is None:
        duration = DEFAULT_FLEET_DURATION
    policies = routers if routers is not None else (base.router,)
    native = workload.offered_rps()
    grid = [(d, p, native * s)
            for d in devices for p in policies for s in scales]
    store = cache if cache is not None else default_cluster_cache()
    hits_before = store.stats.hits if use_cache else 0

    results: dict[tuple[int, str, float], ClusterResult] = {}
    done = 0
    if progress:
        progress(0, len(grid))

    def record(key, result, error):
        nonlocal done
        if error is not None:
            raise RuntimeError(f"fleet cell {key} failed: {error}")
        results[key] = result
        done += 1
        if progress:
            progress(done, len(grid))

    base_payload = base.to_dict()
    workload_payload = workload.to_dict()
    autoscaler_payload = autoscaler.to_dict() if autoscaler is not None \
        else None
    faults_payload = faults.to_dict() if faults is not None else None
    guard_payload = guard.to_dict() if guard is not None else None
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_run_cell, base_payload, workload_payload,
                            d, p, rate, duration, autoscaler_payload,
                            faults_payload, guard_payload, use_cache)
                for d, p, rate in grid
            ]
            for future in futures:
                d, p, rate, result, error = future.result()
                record((d, p, rate), result, error)
    else:
        for d, p, rate in grid:
            config = ClusterConfig.from_dict(
                {**base_payload, "devices": d, "router": p})
            if use_cache:
                result = cached_run_cluster_experiment(
                    config, workload, offered_rps=rate, duration=duration,
                    autoscaler=autoscaler, faults=faults, guard=guard,
                    cache=store)
            else:
                result = run_cluster_experiment(
                    config, workload.at_rate(rate), duration=duration,
                    autoscaler=autoscaler,
                    options=RunOptions(faults=faults, guard=guard))
            record((d, p, rate), result, None)

    cells = tuple(FleetCell(devices=d, router=p, offered_rps=rate,
                            result=results[(d, p, rate)])
                  for d, p, rate in grid)
    # Pool workers hit/store the on-disk cache in their own processes, so
    # the parent's counter only reflects serial runs — report it as-is.
    hits = (store.stats.hits - hits_before) if use_cache else 0
    return FleetReport(base=base, workload=workload, duration=duration,
                       autoscaler=autoscaler, cells=cells, cache_hits=hits)
