"""Fleet-scale serving: cluster setup, routing, autoscaling, fleet grid.

The single-device harness answers "how should one GPU be partitioned";
this package answers the operator's next question — "how do N such GPUs
behave as a fleet".  It wires N :class:`~repro.server.setup
.ServingSetup` cells onto one shared simulator clock
(:class:`ClusterSetup`), places every request through a deterministic
pluggable policy (:class:`ClusterRouter`), resizes per-model worker
pools from sampled load with bounded churn (:class:`PoolAutoscaler`),
survives whole-node crashes by re-routing displaced work
(:class:`~repro.cluster.faults.ClusterFaultDriver`), and sweeps the
devices × policy × rate grid (:func:`run_fleet`) — all under the same
bit-identical determinism contract as every other harness in the repo.
"""

from repro.cluster.autoscaler import PoolAutoscaler, ScaleEvent
from repro.cluster.config import (
    ROUTER_POLICIES,
    AutoscalerConfig,
    ClusterConfig,
)
from repro.cluster.experiment import (
    ClusterResult,
    ClusterResultCache,
    NodeStats,
    cached_run_cluster_experiment,
    cluster_cache_key,
    cluster_result_hash,
    default_cluster_cache,
    run_cluster_experiment,
)
from repro.cluster.faults import ClusterFaultDriver
from repro.cluster.fleet import FleetCell, FleetReport, run_fleet
from repro.cluster.router import ClusterRouter, FleetClient
from repro.cluster.setup import ClusterNode, ClusterSetup, PoolSlot

__all__ = [
    "AutoscalerConfig",
    "ClusterConfig",
    "ClusterFaultDriver",
    "ClusterNode",
    "ClusterResult",
    "ClusterResultCache",
    "ClusterRouter",
    "ClusterSetup",
    "FleetCell",
    "FleetClient",
    "FleetReport",
    "NodeStats",
    "PoolAutoscaler",
    "PoolSlot",
    "ROUTER_POLICIES",
    "ScaleEvent",
    "cached_run_cluster_experiment",
    "cluster_cache_key",
    "cluster_result_hash",
    "default_cluster_cache",
    "run_cluster_experiment",
    "run_fleet",
]
