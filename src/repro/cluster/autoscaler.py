"""Load-driven worker-pool autoscaling on the simulator clock.

The :class:`PoolAutoscaler` is a recurring sim event that reads each
model's backlog from the fleet's sampled metrics (the ``node{i}_queue
_depth`` gauges the per-node :class:`~repro.obs.sampler.SimSampler`
maintains), normalises by the model's active slot count, and activates
or deactivates pool slots against the watermarks of its
:class:`~repro.cluster.config.AutoscalerConfig`.

Scale-up spreads: the new slot lands on the live node with the fewest
active slots for the model (lowest index on ties).  Scale-down packs:
the highest-index active slot of the node with the most comes out
(LIFO — the slot most recently added is the first removed, so repeated
up/down cycles touch the same slots and the fleet's t=0 construction
order never changes).  Deactivation is graceful by construction: the
router stops sending, the worker drains its backlog.

The tick runs at priority :data:`TICK_PRIORITY` (after the samplers'
100), so a tick co-scheduled with a sample always reads the fresh
gauges — the control loop is downstream of observation, exactly like a
metrics-scraping autoscaler in a real fleet.

Churn is bounded ECLIP-style: hysteresis on scale-down, a per-model
cooldown after every action, and a fleet-wide sliding-window cap on
actions (see :class:`AutoscalerConfig`).  Every decision is recorded as
a frozen :class:`ScaleEvent` so runs can assert the controller both
grew *and* shrank capacity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.cluster.config import AutoscalerConfig
from repro.cluster.setup import ClusterSetup, PoolSlot

__all__ = ["PoolAutoscaler", "ScaleEvent", "TICK_PRIORITY"]

#: After the samplers' priority 100: observe, then act.
TICK_PRIORITY = 110


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision, as replayable data."""

    time: float
    action: str  # "up" | "down"
    model: str
    node: int
    slot: int
    #: Cluster-wide active slots for the model after the action.
    active_after: int
    #: The load-per-active-slot reading that triggered it.
    load: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "action": self.action,
            "model": self.model,
            "node": self.node,
            "slot": self.slot,
            "active_after": self.active_after,
            "load": self.load,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ScaleEvent":
        return cls(**{k: payload[k] for k in (
            "time", "action", "model", "node", "slot", "active_after",
            "load")})


class PoolAutoscaler:
    """Grows and shrinks per-model worker pools from sampled load."""

    def __init__(self, cluster: ClusterSetup,
                 config: Optional[AutoscalerConfig] = None) -> None:
        self.cluster = cluster
        self.config = config if config is not None else AutoscalerConfig()
        self.events: list[ScaleEvent] = []
        self.stop_time: Optional[float] = None
        #: Consecutive below-low-watermark ticks, per model (hysteresis).
        self._low_ticks: dict[str, int] = {
            m: 0 for m in cluster.config.model_names}
        #: Sim time of the last action per model (cooldown).
        self._last_action: dict[str, float] = {}
        #: Fleet-wide action times inside the sliding window.
        self._window: deque[float] = deque()

    @property
    def scale_ups(self) -> int:
        return sum(1 for e in self.events if e.action == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for e in self.events if e.action == "down")

    def start(self, *, stop_time: float) -> None:
        """Begin ticking now; the last tick is at ``stop_time`` latest."""
        self.stop_time = stop_time
        self.cluster.sim.schedule(self.cluster.sim.now, self._tick,
                                  priority=TICK_PRIORITY)

    def _tick(self) -> None:
        for model in self.cluster.config.model_names:
            self._evaluate(model)
        next_time = self.cluster.sim.now + self.config.interval
        if self.stop_time is None or next_time <= self.stop_time:
            self.cluster.sim.schedule(next_time, self._tick,
                                      priority=TICK_PRIORITY)

    # -- load signal ---------------------------------------------------------
    def _model_load(self, model: str) -> tuple[float, int]:
        """(load per active slot, active slot count) for ``model``.

        Backlog comes from the sampled queue-depth gauges — the same
        series an operator's dashboard would alert on — summed over
        *every* slot of the model on live nodes (a drained slot's
        leftover backlog still argues against scaling down).  In-flight
        requests count one each.
        """
        cluster = self.cluster
        registry = cluster.metrics
        queued = 0.0
        in_flight = 0
        for node in cluster.nodes:
            if node.crashed:
                continue
            for slot in node.pools[model]:
                queued += registry.gauge(
                    f"node{slot.node_index}_queue_depth",
                    queue=slot.queue.name).value
                if slot.worker is not None \
                        and slot.worker.in_flight is not None:
                    in_flight += 1
        active = len(cluster.active_slots(model))
        if active == 0:
            return (float("inf") if queued + in_flight > 0 else 0.0, 0)
        return ((queued + in_flight) / active, active)

    # -- control law ---------------------------------------------------------
    def _evaluate(self, model: str) -> None:
        config = self.config
        now = self.cluster.sim.now
        load, active = self._model_load(model)

        if load >= config.high_watermark:
            self._low_ticks[model] = 0
            if self._may_act(model, now):
                self._scale_up(model, now, load, active)
        elif load <= config.low_watermark:
            self._low_ticks[model] += 1
            if self._low_ticks[model] >= config.hysteresis_ticks \
                    and active > config.min_active \
                    and self._may_act(model, now):
                self._scale_down(model, now, load, active)
                self._low_ticks[model] = 0
        else:
            self._low_ticks[model] = 0

    def _may_act(self, model: str, now: float) -> bool:
        last = self._last_action.get(model)
        if last is not None and now - last < self.config.cooldown:
            return False
        while self._window and self._window[0] <= now - self.config.window:
            self._window.popleft()
        return len(self._window) < self.config.max_actions_per_window

    def _record(self, action: str, model: str, slot: PoolSlot, now: float,
                load: float, active_after: int) -> None:
        self._last_action[model] = now
        self._window.append(now)
        self.events.append(ScaleEvent(
            time=now, action=action, model=model, node=slot.node_index,
            slot=slot.slot_index, active_after=active_after, load=load))

    def _scale_up(self, model: str, now: float, load: float,
                  active: int) -> None:
        best: Optional[PoolSlot] = None
        best_key = None
        for node in self.cluster.nodes:
            if node.crashed:
                continue
            inactive = [s for s in node.pools[model] if not s.active]
            if not inactive:
                continue
            key = (node.active_count(model), node.index)
            if best_key is None or key < best_key:
                best_key = key
                best = inactive[0]
        if best is None:
            return  # every live pool is already full
        self.cluster.activate_slot(best)
        self._record("up", model, best, now, load, active + 1)

    def _scale_down(self, model: str, now: float, load: float,
                    active: int) -> None:
        best: Optional[PoolSlot] = None
        best_key = None
        for node in self.cluster.nodes:
            if node.crashed:
                continue
            candidates = [s for s in node.pools[model] if s.active]
            if not candidates:
                continue
            key = (-node.active_count(model), -node.index)
            if best_key is None or key < best_key:
                best_key = key
                best = candidates[-1]
        if best is None:
            return
        self.cluster.deactivate_slot(best)
        self._record("down", model, best, now, load, active - 1)
