"""Node-level fault injection for fleet runs.

:class:`ClusterFaultDriver` is the fleet analogue of
:class:`~repro.faults.injector.FaultInjector`, specialised to
:class:`~repro.faults.schedule.NodeCrash` events (the only kind that
makes sense fleet-wide; schedules carrying any other kind are rejected
up front rather than silently half-applied).

A node crash kills every worker on the device at once and *re-routes*
the displaced work — both in-flight orphans and requests still queued on
the node's slots — through the cluster router to surviving nodes, under
the same bounded-retry guard rail as single-device crash recovery:
each displaced request costs one retry, backs off exponentially
(``guard.retry_backoff * 2**(retries-1)``), and is shed once
``guard.max_retries`` is exhausted.  Re-routed requests bypass
admission (they were admitted once already).  The node restarts whole
after one :class:`~repro.faults.schedule.ReloadCostModel` reload unless
the event says otherwise; while it is down the router simply never
selects it.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.router import ClusterRouter
from repro.cluster.setup import ClusterNode, ClusterSetup
from repro.faults.schedule import FaultSchedule, NodeCrash, event_kind
from repro.server.request import InferenceRequest
from repro.server.slo import SloGuard

__all__ = ["ClusterFaultDriver"]


class ClusterFaultDriver:
    """Arms a NodeCrash-only fault schedule against a fleet."""

    def __init__(self, cluster: ClusterSetup, router: ClusterRouter,
                 schedule: FaultSchedule, metrics=None) -> None:
        bad = sorted({event_kind(e) for e in schedule.events
                      if not isinstance(e, NodeCrash)})
        if bad:
            raise ValueError(
                f"fleet runs only support node_crash fault events; "
                f"schedule also carries {bad}")
        self.cluster = cluster
        self.router = router
        self.schedule = schedule
        self.metrics = metrics
        self.guard = cluster.guard if cluster.guard is not None \
            else SloGuard()
        self.injected = 0
        self.retried = 0
        self.shed_retries = 0
        #: Re-routes scheduled (in backoff) but not yet placed — the
        #: conservation audit's "in transit" term at run end.
        self.pending_reroutes = 0
        for event in schedule.sorted_events():
            cluster.sim.schedule(event.time,
                                 lambda e=event: self._crash(e))

    # -- crash ---------------------------------------------------------------
    def _crash(self, event: NodeCrash) -> None:
        nodes = self.cluster.nodes
        node = nodes[event.node % len(nodes)]
        if node.crashed:
            return
        node.crashed = True
        self.injected += 1
        tracer = self.cluster.sim.tracer
        if tracer.enabled:
            tracer.fault_injected("node_crash", {"node": node.index,
                                                 "restart": event.restart})
        if self.metrics is not None:
            self.metrics.counter("faults_injected_total",
                                 "Fault-schedule events injected",
                                 kind="node_crash").inc()
        displaced: list[InferenceRequest] = []
        for slot in node.slots:
            if slot.worker is not None:
                orphan = slot.worker.crash()
                if orphan is not None:
                    displaced.append(orphan)
            while len(slot.queue):
                displaced.append(slot.queue.pop())
        for request in displaced:
            self._reroute(request)
        if event.restart:
            counts = [slot.worker.kernel_count for slot in node.slots
                      if slot.worker is not None]
            reload_time = self.schedule.reload.reload_time(
                max(counts) if counts else 0)
            self.cluster.sim.schedule_in(reload_time,
                                         lambda: self._restore(node))

    def _restore(self, node: ClusterNode) -> None:
        node.crashed = False
        for slot in node.slots:
            if slot.worker is not None:
                slot.worker.restart()

    # -- displaced-work recovery --------------------------------------------
    def _reroute(self, request: InferenceRequest) -> None:
        guard = self.guard
        tracer = self.cluster.sim.tracer
        if request.retries >= guard.max_retries:
            self.shed_retries += 1
            request.shed = True
            if tracer.enabled:
                tracer.request_shed(request, "retries")
            if self.metrics is not None:
                self.metrics.counter("requests_shed_total",
                                     "Requests dropped by guard rails",
                                     reason="retries").inc()
            return
        request.retries += 1
        self.retried += 1
        if self.metrics is not None:
            self.metrics.counter("requests_retried_total",
                                 "Requests re-routed after crashes").inc()
        backoff = guard.retry_backoff * (2.0 ** (request.retries - 1))
        self.pending_reroutes += 1
        self.cluster.sim.schedule_in(
            backoff, lambda r=request: self._place(r))

    def _place(self, request: InferenceRequest) -> None:
        self.pending_reroutes -= 1
        self.router.route(request, admission=False)
