"""One fleet run: build, route, autoscale, measure — deterministically.

:func:`run_cluster_experiment` is the fleet counterpart of
:func:`~repro.server.rate_experiment.run_rate_experiment`: it drives a
:class:`~repro.cluster.config.ClusterConfig` fleet open-loop with a
workload spec, routes every request through the cluster router, lets the
:class:`~repro.cluster.autoscaler.PoolAutoscaler` resize pools from
sampled load, and returns a :class:`ClusterResult` with fleet-wide
throughput/latency/shed accounting, per-node statistics, the full
autoscaler event log, and a request-conservation audit
(``issued == completed + shed + residue + in flight + in transit`` —
the fleet generalisation of :mod:`repro.check.invariants`).

It is an *options-first* API: harness knobs arrive in one
:class:`~repro.server.options.RunOptions` (there are no legacy keyword
shims to deprecate — the fleet surface was born after the
consolidation).  Results are cached content-addressed under
``<cache>/cluster/`` via :func:`cluster_cache_key`, which folds the
cluster topology and autoscaler config into the open-loop key
:func:`~repro.exp.cache.rate_cache_key` **only-when-given** — so every
pre-existing single-device cache entry is untouched by the fleet layer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.cluster.autoscaler import PoolAutoscaler, ScaleEvent
from repro.cluster.config import AutoscalerConfig, ClusterConfig
from repro.cluster.faults import ClusterFaultDriver
from repro.cluster.router import ClusterRouter, FleetClient
from repro.cluster.setup import ClusterSetup
from repro.exp.cache import (
    CacheStats,
    _atomic_write_text,
    cache_root,
    fingerprint,
    locate_entry,
    rate_cache_key,
    sharded_entry_path,
)
from repro.server.metrics import LatencyStats
from repro.server.options import RunOptions, reject_unsupported
from repro.workload.spec import WorkloadSpec

__all__ = [
    "ClusterResult",
    "ClusterResultCache",
    "DEFAULT_FLEET_DURATION",
    "NodeStats",
    "cached_run_cluster_experiment",
    "cluster_cache_key",
    "cluster_result_hash",
    "default_cluster_cache",
    "run_cluster_experiment",
]

logger = logging.getLogger(__name__)

#: Default fleet run length in sim seconds (matches the rate CLI).
DEFAULT_FLEET_DURATION = 2.0


@dataclass(frozen=True)
class NodeStats:
    """Per-device accounting of one fleet run."""

    node: int
    routed: int
    completed: int
    gpu_utilization: float
    peak_cu_occupancy: int
    crashes: int
    restarts: int

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "NodeStats":
        return cls(**{f.name: payload[f.name]
                      for f in dataclasses.fields(cls)})


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one fleet run."""

    devices: int
    router: str
    offered_rps: float
    achieved_rps: float
    goodput_rps: float
    latency: LatencyStats
    issued: int
    completed: int
    shed_admission: int
    shed_deadline: int
    shed_retries: int
    shed_unroutable: int
    retried: int
    queue_residue: int
    in_flight: int
    in_reroute: int
    crashes: int
    restarts: int
    scale_events: tuple[ScaleEvent, ...]
    nodes: tuple[NodeStats, ...]
    conservation_ok: bool

    @property
    def scale_ups(self) -> int:
        return sum(1 for e in self.scale_events if e.action == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for e in self.scale_events if e.action == "down")

    @property
    def shed(self) -> int:
        return (self.shed_admission + self.shed_deadline
                + self.shed_retries + self.shed_unroutable)

    def to_dict(self) -> dict[str, Any]:
        return {
            "devices": self.devices,
            "router": self.router,
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "goodput_rps": self.goodput_rps,
            "latency": dataclasses.asdict(self.latency),
            "issued": self.issued,
            "completed": self.completed,
            "shed_admission": self.shed_admission,
            "shed_deadline": self.shed_deadline,
            "shed_retries": self.shed_retries,
            "shed_unroutable": self.shed_unroutable,
            "retried": self.retried,
            "queue_residue": self.queue_residue,
            "in_flight": self.in_flight,
            "in_reroute": self.in_reroute,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "scale_events": [e.to_dict() for e in self.scale_events],
            "nodes": [n.to_dict() for n in self.nodes],
            "conservation_ok": self.conservation_ok,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ClusterResult":
        data = dict(payload)
        data["latency"] = LatencyStats(**data["latency"])
        data["scale_events"] = tuple(
            ScaleEvent.from_dict(e) for e in data["scale_events"])
        data["nodes"] = tuple(
            NodeStats.from_dict(n) for n in data["nodes"])
        return cls(**{f.name: data[f.name]
                      for f in dataclasses.fields(cls)})


def cluster_result_hash(result: ClusterResult) -> str:
    """Content hash of one result's canonical JSON payload (floats
    survive bit-exactly, so two runs hash equally iff bit-identical)."""
    canonical = json.dumps(result.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_cluster_experiment(
    config: ClusterConfig,
    workload: WorkloadSpec,
    *,
    offered_rps: Optional[float] = None,
    duration: Optional[float] = None,
    autoscaler: Optional[AutoscalerConfig] = AutoscalerConfig(),
    options: Optional[RunOptions] = None,
) -> ClusterResult:
    """Drive one fleet open-loop and measure it.

    ``offered_rps`` rescales the workload spec (``None`` keeps its
    native rate); ``autoscaler=None`` pins the pools at ``pool_min``
    for the whole run.  ``options.faults`` must contain only
    :class:`~repro.faults.schedule.NodeCrash` events; ``options.guard``
    bounds admission/deadline/retries exactly as on a single device.
    """
    opts = options if options is not None else RunOptions()
    reject_unsupported("run_cluster_experiment", opts, "workload", "audit")
    if duration is None:
        duration = DEFAULT_FLEET_DURATION
    spec = workload if offered_rps is None else workload.at_rate(offered_rps)
    offered = spec.offered_rps()
    mismatched = sorted({c.batch_size for c in spec.request_classes()}
                        - {config.batch_size})
    if mismatched:
        raise ValueError(
            f"workload class batch sizes {mismatched} differ from "
            f"cluster batch_size={config.batch_size}")

    cluster = ClusterSetup.build(
        config, tracer=opts.tracer, recorder=opts.recorder,
        guard=opts.guard, metrics=opts.metrics)
    router = ClusterRouter(cluster)
    driver = None
    if opts.faults is not None and len(opts.faults):
        driver = ClusterFaultDriver(cluster, router, opts.faults,
                                    metrics=opts.metrics)
    cluster.start(stop_time=duration, sample_interval=opts.sample_interval)
    client = FleetClient(cluster, router, spec, stop_time=duration)
    scaler = None
    if autoscaler is not None:
        scaler = PoolAutoscaler(cluster, autoscaler)
        scaler.start(stop_time=duration)

    cluster.sim.run(until=duration)

    # -- fleet-wide accounting ----------------------------------------------
    deadline = opts.guard.deadline if opts.guard is not None else None
    latencies: list[float] = []
    completed = 0
    good = 0
    for worker in cluster.all_workers():
        for request in worker.stats.completed:
            if request.completion_time is None:
                continue
            latencies.append(request.latency)  # queueing-inclusive
            completed += 1
            if deadline is None or request.latency <= deadline:
                good += 1
    shed_admission = sum(q.shed for q in cluster.all_queues())
    shed_deadline = sum(w.stats.shed_deadline for w in cluster.all_workers())
    residue = sum(len(q) for q in cluster.all_queues())
    in_flight = sum(1 for w in cluster.all_workers()
                    if w.in_flight is not None)
    shed_retries = driver.shed_retries if driver is not None else 0
    in_reroute = driver.pending_reroutes if driver is not None else 0
    retried = driver.retried if driver is not None else 0
    accounted = (completed + shed_admission + shed_deadline + shed_retries
                 + router.unroutable + residue + in_flight + in_reroute)
    conservation_ok = client.issued == accounted
    if not conservation_ok:
        logger.warning("fleet conservation violated: issued=%d accounted=%d",
                       client.issued, accounted)

    nodes = tuple(
        NodeStats(
            node=node.index,
            routed=router.routed_per_node[node.index],
            completed=sum(len(w.stats.completed)
                          for w in node.setup.workers),
            gpu_utilization=node.setup.device.meter.utilization(
                cluster.sim.now),
            peak_cu_occupancy=node.setup.device.counters.peak_busy_cus,
            crashes=sum(w.crashes for w in node.setup.workers),
            restarts=sum(w.restarts for w in node.setup.workers),
        )
        for node in cluster.nodes
    )
    return ClusterResult(
        devices=config.devices,
        router=router.policy,
        offered_rps=offered,
        achieved_rps=completed * config.batch_size / duration,
        goodput_rps=good * config.batch_size / duration,
        latency=(LatencyStats.from_samples(latencies) if latencies
                 else LatencyStats.empty()),
        issued=client.issued,
        completed=completed,
        shed_admission=shed_admission,
        shed_deadline=shed_deadline,
        shed_retries=shed_retries,
        shed_unroutable=router.unroutable,
        retried=retried,
        queue_residue=residue,
        in_flight=in_flight,
        in_reroute=in_reroute,
        crashes=sum(n.crashes for n in nodes),
        restarts=sum(n.restarts for n in nodes),
        scale_events=tuple(scaler.events) if scaler is not None else (),
        nodes=nodes,
        conservation_ok=conservation_ok,
    )


# -- caching -----------------------------------------------------------------

def cluster_cache_key(config: ClusterConfig, offered_rps: float,
                      duration: float,
                      workload: Optional[WorkloadSpec] = None,
                      autoscaler: Optional[AutoscalerConfig] = None,
                      faults=None, guard=None) -> str:
    """Stable content hash of one fleet run's inputs.

    Delegates to :func:`~repro.exp.cache.rate_cache_key` over the
    per-node config, folding the cluster topology (and autoscaler, when
    enabled) through its only-when-given ``cluster=`` slot — the same
    convention that keeps fault-free single-device keys stable.
    """
    cluster_payload: dict[str, Any] = {"cluster": config.to_dict()}
    if autoscaler is not None:
        cluster_payload["autoscaler"] = autoscaler.to_dict()
    return rate_cache_key(
        config.node_config(), offered_rps, duration,
        workload=workload, faults=faults, guard=guard,
        cluster=cluster_payload)


class ClusterResultCache:
    """Content-addressed store of fleet results under ``<root>/cluster/``."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self._root = root
        self.stats = CacheStats()

    def root(self) -> Path:
        return self._root if self._root is not None else cache_root()

    def path_for(self, key: str) -> Path:
        return sharded_entry_path(self.root() / "cluster", key)

    def get(self, key: str) -> Optional[ClusterResult]:
        path = locate_entry(self.root() / "cluster", key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            self.stats.invalidations += 1
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not an object")
            result = ClusterResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            self.stats.invalidations += 1
            logger.warning("discarding corrupt cluster cache entry %s", path)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: ClusterResult,
            context: Optional[dict[str, Any]] = None) -> None:
        payload: dict[str, Any] = {
            "constants": fingerprint(),
            "result": result.to_dict(),
        }
        if context:
            payload.update(context)
        try:
            _atomic_write_text(
                self.path_for(key),
                json.dumps(payload, indent=2, sort_keys=True))
            self.stats.stores += 1
        except OSError:
            pass


_DEFAULT_CLUSTER_CACHE = ClusterResultCache()


def default_cluster_cache() -> ClusterResultCache:
    """The process-wide fleet cache (follows ``REPRO_CACHE_DIR``)."""
    return _DEFAULT_CLUSTER_CACHE


def cached_run_cluster_experiment(
    config: ClusterConfig,
    workload: WorkloadSpec,
    *,
    offered_rps: Optional[float] = None,
    duration: Optional[float] = None,
    autoscaler: Optional[AutoscalerConfig] = AutoscalerConfig(),
    faults=None,
    guard=None,
    cache: Optional[ClusterResultCache] = None,
) -> ClusterResult:
    """:func:`run_cluster_experiment` through the fleet cache."""
    if duration is None:
        duration = DEFAULT_FLEET_DURATION
    spec = workload if offered_rps is None else workload.at_rate(offered_rps)
    offered = spec.offered_rps()
    store = cache if cache is not None else default_cluster_cache()
    key = cluster_cache_key(config, offered, duration, workload=spec,
                            autoscaler=autoscaler, faults=faults,
                            guard=guard)
    result = store.get(key)
    if result is None:
        result = run_cluster_experiment(
            config, spec, duration=duration, autoscaler=autoscaler,
            options=RunOptions(faults=faults, guard=guard))
        context: dict[str, Any] = {
            "cluster": config.to_dict(),
            "offered_rps": offered,
            "duration": duration,
            "workload": spec.to_dict(),
        }
        if autoscaler is not None:
            context["autoscaler"] = autoscaler.to_dict()
        if faults is not None:
            context["faults"] = faults.to_dict()
        if guard is not None:
            context["guard"] = guard.to_dict()
        store.put(key, result, context=context)
    return result
