"""Fleet assembly: N serving cells sharing one simulator clock.

:class:`ClusterSetup` promotes the single-device
:class:`~repro.server.setup.ServingSetup` to a fleet: one shared
:class:`~repro.sim.engine.Simulator`, one :class:`~repro.server.setup
.ServingSetup` per node (each with its own device, policy streams, and
RNG fork ``{label}/node{i}``), and per-(node, model) *worker pools* of
:class:`PoolSlot` entries the router places requests on and the
autoscaler activates/deactivates at run time.

Construction order is load-bearing: nodes are built in index order and
slot queues in model-major/slot-minor order, so event sequence numbers —
and therefore every tie-break in the shared event heap — are a pure
function of the :class:`~repro.cluster.config.ClusterConfig`.  That is
what makes a fleet run bit-identical across repeats and across the
serial/pooled fleet grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.config import ClusterConfig
from repro.faults.schedule import ReloadCostModel
from repro.server.request import RequestQueue
from repro.server.setup import ServingSetup
from repro.server.slo import SloGuard
from repro.server.worker import Worker
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

__all__ = ["ClusterNode", "ClusterSetup", "PoolSlot"]


@dataclass
class PoolSlot:
    """One worker slot of a (node, model) pool.

    A slot owns its request queue from construction; its worker exists
    only once the slot has been activated (initially or by the
    autoscaler).  ``active`` is the router-visible bit: an inactive slot
    receives no new requests but its worker keeps draining whatever is
    already queued — deactivation never drops work.
    """

    node_index: int
    model: str
    slot_index: int
    #: Index into the node's plans/streams (``model_idx * pool_size +
    #: slot_index`` — the :meth:`ClusterConfig.node_config` layout).
    plan_index: int
    queue: RequestQueue
    #: Kernels per request of this slot's plan (prices the cold start).
    kernel_count: int
    worker: Optional[Worker] = None
    active: bool = False
    #: A cold start is in flight (worker creation scheduled but not run).
    pending_start: bool = False


@dataclass
class ClusterNode:
    """One fleet node: a full serving cell plus its pool slots."""

    index: int
    setup: ServingSetup
    #: Model name -> slots, in slot-index order.
    pools: dict[str, list[PoolSlot]] = field(default_factory=dict)
    #: Set while the node is down (the router skips crashed nodes).
    crashed: bool = False

    @property
    def slots(self) -> list[PoolSlot]:
        """Every slot on the node, model-major/slot-minor."""
        return [slot for pool in self.pools.values() for slot in pool]

    def active_count(self, model: str) -> int:
        return sum(1 for slot in self.pools[model] if slot.active)

    def free_cus(self) -> int:
        """CUs without a resident kernel right now (router signal)."""
        counters = self.setup.device.counters
        return self.setup.topology.total_cus - counters.busy_cus()


@dataclass
class ClusterSetup:
    """A wired fleet, ready for a router, autoscaler, and client."""

    config: ClusterConfig
    sim: Simulator
    rng: RngRegistry
    nodes: list[ClusterNode]
    reload: ReloadCostModel
    metrics: "MetricsRegistry"
    guard: Optional[SloGuard] = None
    samplers: list = field(default_factory=list)

    @classmethod
    def build(
        cls,
        config: ClusterConfig,
        *,
        rng_label: str = "fleet",
        tracer=None,
        recorder=None,
        guard: Optional[SloGuard] = None,
        metrics=None,
        reload: Optional[ReloadCostModel] = None,
    ) -> "ClusterSetup":
        """Assemble the fleet in deterministic construction order.

        One simulator first (it carries the composed tracer/recorder),
        then node 0..N-1 — each a :meth:`ServingSetup.build` against the
        shared simulator — then every node's slot queues.  The cluster
        RNG fork (``rng_label``) feeds fleet-level draws (the client's
        arrival/mix/length streams); each node forks
        ``{rng_label}/node{i}`` so per-node host jitter is independent
        of fleet size ordering.
        """
        if recorder is not None:
            from repro.obs.flight import compose_tracers
            tracer = compose_tracers(tracer, recorder)
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry
            metrics = MetricsRegistry()
        sim = Simulator(tracer=tracer)
        rng = RngRegistry(config.seed).fork(rng_label)
        node_cfg = config.node_config()
        nodes: list[ClusterNode] = []
        for i in range(config.devices):
            setup = ServingSetup.build(
                node_cfg, rng_label=f"{rng_label}/node{i}", sim=sim,
                guard=guard)
            node = ClusterNode(index=i, setup=setup)
            for mi, model in enumerate(config.model_names):
                pool: list[PoolSlot] = []
                for s in range(config.pool_size):
                    plan_index = mi * config.pool_size + s
                    plan = setup.plans[plan_index]
                    queue = setup.new_queue(f"n{i}:{model}:{s}", model,
                                            config.batch_size)
                    pool.append(PoolSlot(
                        node_index=i, model=model, slot_index=s,
                        plan_index=plan_index, queue=queue,
                        kernel_count=sum(
                            len(burst) for burst, _gap in plan.model.segments(
                                plan.batch_size, setup.topology)),
                    ))
                node.pools[model] = pool
            nodes.append(node)
        return cls(config=config, sim=sim, rng=rng, nodes=nodes,
                   reload=reload or ReloadCostModel(), metrics=metrics,
                   guard=guard)

    # -- slot lifecycle ------------------------------------------------------
    def activate_slot(self, slot: PoolSlot) -> None:
        """Open a slot for routing, cold-starting its worker if needed.

        At t=0 (initial activation) the worker exists immediately; a
        mid-run activation of a never-started slot pays the
        :class:`ReloadCostModel` cold-start cost first — requests routed
        meanwhile wait in the slot's queue.  Re-activating a previously
        drained slot is free: its worker never stopped, it was just
        starved of new work.
        """
        if slot.active:
            return
        slot.active = True
        if slot.worker is not None or slot.pending_start:
            return
        if self.sim.now > 0:
            slot.pending_start = True
            self.sim.schedule_in(self.reload.reload_time(slot.kernel_count),
                                 lambda: self._start_worker(slot))
        else:
            self._start_worker(slot)

    def deactivate_slot(self, slot: PoolSlot) -> None:
        """Close a slot to new routing (its backlog still drains)."""
        slot.active = False

    def _start_worker(self, slot: PoolSlot) -> None:
        slot.pending_start = False
        setup = self.nodes[slot.node_index].setup
        plan = setup.plans[slot.plan_index]
        slot.worker = setup.add_worker(
            slot.plan_index, slot.queue, stop_time=float("inf"),
            name=f"n{slot.node_index}w{slot.plan_index}",
            segments_for=setup._segments_fn(plan))

    def start(self, *, stop_time: float, sample_interval: float) -> None:
        """Activate the initial pools and start the per-node samplers.

        ``pool_min`` slots per (node, model) come up in slot order; each
        node then gets a :class:`~repro.obs.sampler.SimSampler` under
        the ``node{i}`` metric prefix — the shared registry carries one
        occupancy/queue-depth series set per device, which is exactly
        the load signal the autoscaler reads.
        """
        for node in self.nodes:
            for model in self.config.model_names:
                for slot in node.pools[model][:self.config.pool_min]:
                    self.activate_slot(slot)
        for node in self.nodes:
            self.samplers.append(node.setup.start_sampler(
                self.metrics, sample_interval, stop_time=stop_time,
                prefix=f"node{node.index}"))

    # -- fleet-wide views ----------------------------------------------------
    def pool(self, model: str) -> list[PoolSlot]:
        """Every slot serving ``model``, node-major/slot-minor."""
        return [slot for node in self.nodes for slot in node.pools[model]]

    def active_slots(self, model: str) -> list[PoolSlot]:
        """Active slots for ``model`` on live nodes (routable targets)."""
        return [slot for node in self.nodes if not node.crashed
                for slot in node.pools[model] if slot.active]

    def all_workers(self) -> list[Worker]:
        return [w for node in self.nodes for w in node.setup.workers]

    def all_queues(self) -> list[RequestQueue]:
        return [q for node in self.nodes for q in node.setup.queues]
