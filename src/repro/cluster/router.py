"""Cluster-level request routing with pluggable placement policies.

The router is the fleet's frontend: every arriving request is placed on
exactly one active pool slot of a live node, chosen by a deterministic
placement policy.  All policies break ties on ``(node_index,
slot_index)`` so routing — like everything else in the harness — is a
pure function of the configuration and the RNG seed.

Policies (the :data:`~repro.cluster.config.ROUTER_POLICIES` registry):

* ``least-loaded`` — fewest requests pending-plus-in-flight on the slot
  (classic join-the-shortest-queue);
* ``free-cu`` — partition-aware: prefer the node with the most CUs
  currently free of resident kernels (the right-sizing signal KRISP
  exposes per device), then least-loaded on that node;
* ``affinity`` — model-affinity: prefer slots whose worker already
  exists (the model is resident — no cold start), pricing cold slots by
  their :class:`~repro.faults.schedule.ReloadCostModel` reload time.

:class:`FleetClient` is the open-loop injection loop of
:class:`~repro.workload.client.WorkloadClient` re-pointed at the router:
same ``arrivals`` / ``workload-mix`` / ``workload-lengths`` stream
discipline (drawn from the *cluster* RNG fork, so arrival times are
invariant across fleet size and policy), with per-request placement
instead of fixed per-model queues.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cluster.config import ROUTER_POLICIES
from repro.cluster.setup import ClusterSetup, PoolSlot
from repro.faults.schedule import ReloadCostModel
from repro.server.request import InferenceRequest
from repro.sim.process import Process
from repro.workload.arrivals import TraceArrivals
from repro.workload.spec import TraceWorkloadSpec, WorkloadSpec

__all__ = ["ClusterRouter", "FleetClient"]


def _slot_load(slot: PoolSlot) -> int:
    """Pending plus in-flight work parked on one slot."""
    load = len(slot.queue)
    if slot.worker is not None and slot.worker.in_flight is not None:
        load += 1
    return load


class ClusterRouter:
    """Places each request on one active slot of a live node."""

    def __init__(self, cluster: ClusterSetup,
                 policy: Optional[str] = None) -> None:
        self.cluster = cluster
        self.policy = policy if policy is not None else cluster.config.router
        if self.policy not in ROUTER_POLICIES:
            raise ValueError(f"unknown router policy {self.policy!r}; "
                             f"expected one of {ROUTER_POLICIES}")
        self.reload: ReloadCostModel = cluster.reload
        self.routed = 0
        self.unroutable = 0
        self.routed_per_node = [0] * len(cluster.nodes)

    # -- placement -----------------------------------------------------------
    def _key(self, slot: PoolSlot):
        load = _slot_load(slot)
        tail = (load, slot.node_index, slot.slot_index)
        if self.policy == "free-cu":
            return (-self.cluster.nodes[slot.node_index].free_cus(), *tail)
        if self.policy == "affinity":
            warm = slot.worker is not None
            cold_cost = 0.0 if warm else \
                self.reload.reload_time(slot.kernel_count)
            return (0 if warm else 1, cold_cost, *tail)
        return tail

    def select(self, model: str) -> Optional[PoolSlot]:
        """The policy's slot for one ``model`` request, or ``None`` when
        no live node has an active slot for it."""
        candidates = self.cluster.active_slots(model)
        if not candidates:
            return None
        return min(candidates, key=self._key)

    def route(self, request: InferenceRequest, *,
              admission: bool = True) -> bool:
        """Place ``request``; returns ``True`` once enqueued somewhere.

        ``admission=False`` bypasses the queue-depth bound (re-routed
        requests were already admitted once — the fault-driver retry
        contract).  An unroutable request (every node down, or no active
        slot for its model) is shed and counted.
        """
        slot = self.select(request.model_name)
        if slot is None:
            self.unroutable += 1
            request.shed = True
            tracer = self.cluster.sim.tracer
            if tracer.enabled:
                tracer.request_shed(request, "unroutable")
            return False
        self.routed += 1
        self.routed_per_node[slot.node_index] += 1
        if admission:
            return slot.queue.offer(request)
        slot.queue.put(request)
        return True


class FleetClient:
    """Open-loop workload injection through the router.

    The loop is :class:`~repro.workload.client.WorkloadClient` with
    placement: one gap drawn from the cluster's ``arrivals`` stream per
    emission, class from ``workload-mix``, LLM output length from
    ``workload-lengths``, then :meth:`ClusterRouter.route` instead of a
    fixed queue.  Arrivals rejected by admission or left unroutable are
    lost (open-loop semantics); the next arrival is drawn regardless.
    """

    def __init__(self, cluster: ClusterSetup, router: ClusterRouter,
                 spec: WorkloadSpec, stop_time: float) -> None:
        self.sim = cluster.sim
        self.router = router
        self.spec = spec
        self.stop_time = stop_time
        self.issued = 0
        self.issued_per_model: dict[str, int] = {}
        self.process: Optional[Process] = None

        configured = set(cluster.config.model_names)
        missing = sorted({c.model for c in spec.request_classes()}
                         - configured)
        if missing:
            raise ValueError(f"workload models {missing} are not in "
                             f"cluster model_names {sorted(configured)}")

        if isinstance(spec, TraceWorkloadSpec):
            for entry in spec.entries:
                if entry.time >= stop_time:
                    continue
                self.sim.schedule(entry.time, lambda e=entry: self._emit(
                    e.model, e.batch_size, e.output_tokens))
            return

        classes = spec.request_classes()
        self._classes = classes
        self._arrivals_rng = cluster.rng.stream("arrivals")
        self._mix_rng = cluster.rng.stream("workload-mix") \
            if len(classes) > 1 else None
        self._total_weight = sum(c.weight for c in classes)
        self._lengths_rng = cluster.rng.stream("workload-lengths") \
            if any(c.output_tokens is not None for c in classes) else None

        if isinstance(spec.arrivals, TraceArrivals):
            for t in spec.arrivals.times:
                if t >= stop_time:
                    continue
                self.sim.schedule(t, self._emit_drawn_class)
        else:
            self.process = Process(self.sim, self._run(),
                                   name="fleet-client")

    def _run(self) -> Iterator:
        for gap in self.spec.arrivals.gaps(self._arrivals_rng):
            yield gap
            if self.sim.now >= self.stop_time:
                return
            self._emit_drawn_class()

    def _draw_class(self) -> int:
        if self._mix_rng is None:
            return 0
        draw = float(self._mix_rng.random()) * self._total_weight
        acc = 0.0
        for index, cls in enumerate(self._classes):
            acc += cls.weight
            if draw < acc:
                return index
        return len(self._classes) - 1

    def _emit_drawn_class(self) -> None:
        cls = self._classes[self._draw_class()]
        tokens: Optional[int] = None
        if cls.output_tokens is not None:
            lo, hi = cls.output_tokens
            tokens = int(self._lengths_rng.integers(lo, hi + 1))
        self._emit(cls.model, cls.batch_size, tokens)

    def _emit(self, model: str, batch_size: int,
              output_tokens: Optional[int]) -> None:
        request = InferenceRequest(
            model_name=model,
            batch_size=batch_size,
            arrival_time=self.sim.now,
            output_tokens=output_tokens,
        )
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.request_arrival(request)
        self.router.route(request)
        self.issued += 1
        self.issued_per_model[model] = \
            self.issued_per_model.get(model, 0) + 1
