"""Inference workers.

A worker owns one GPU stream, dequeues request batches, performs host-side
pre-processing, enqueues the model's kernel trace, waits for the last
kernel, and post-processes.  Workers are independent of each other (the
paper's design), so concurrent inference execution on the same GPU falls
out of running several workers.

Host-side pre/post-processing times carry small stochastic jitter (from a
named RNG stream); that jitter is the only nondeterminism in the server
and produces the latency *tails* the SLO analysis measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Protocol, Sequence

import numpy as np

from repro.gpu.kernel import KernelDescriptor
from repro.server.request import InferenceRequest, RequestQueue
from repro.server.slo import SloGuard
from repro.sim.engine import Simulator
from repro.sim.process import Process, Signal

__all__ = ["HostCostModel", "Worker", "WorkerStats", "StreamLike"]


class StreamLike(Protocol):
    """What a worker needs from a stream (native or emulated)."""

    def launch_kernel(self, descriptor: KernelDescriptor,
                      tag: str = "") -> Signal: ...

    def synchronize_signal(self) -> Signal: ...


@dataclass(frozen=True)
class HostCostModel:
    """Host-side request handling costs.

    ``pre_mean``/``post_mean`` are the mean pre/post-processing times; the
    actual draw is gamma-distributed with shape ``jitter_shape`` (higher =
    tighter), giving realistic right-skewed host tails.
    """

    pre_mean: float = 250e-6
    post_mean: float = 150e-6
    jitter_shape: float = 8.0

    def draw(self, mean: float, rng: np.random.Generator) -> float:
        """One jittered host delay."""
        if mean <= 0:
            return 0.0
        return float(rng.gamma(self.jitter_shape, mean / self.jitter_shape))


@dataclass
class WorkerStats:
    """Per-worker measurement log."""

    completed: list[InferenceRequest] = field(default_factory=list)
    requests_processed: int = 0
    #: Requests dropped by a guard rail (kept out of ``completed`` so
    #: latency statistics never see them).
    shed: list[InferenceRequest] = field(default_factory=list)
    shed_deadline: int = 0

    def latencies_in(self, start: float, end: float) -> list[float]:
        """Service latencies of requests completed inside the window."""
        return [r.service_latency for r in self.completed
                if r.completion_time is not None
                and start <= r.completion_time <= end]

    def completions_in(self, start: float, end: float) -> int:
        """Number of requests completed inside the window."""
        return sum(1 for r in self.completed
                   if r.completion_time is not None
                   and start <= r.completion_time <= end)


class Worker:
    """One inference worker bound to a stream and a model trace."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        stream: StreamLike,
        segments: Sequence[tuple[Sequence[KernelDescriptor], float]],
        queue: RequestQueue,
        rng: np.random.Generator,
        host_costs: Optional[HostCostModel] = None,
        stop_time: float = float("inf"),
        on_complete: Optional["Callable[[InferenceRequest], None]"] = None,
        guard: Optional[SloGuard] = None,
        segments_for: Optional[
            "Callable[[InferenceRequest], Sequence]"] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.stream = stream
        self.segments = [(list(burst), gap) for burst, gap in segments]
        self.queue = queue
        self.rng = rng
        self.host_costs = host_costs or HostCostModel()
        self.stop_time = stop_time
        self.on_complete = on_complete
        self.guard = guard
        #: Per-request segment override (LLM variable output lengths);
        #: ``None`` serves the static ``segments`` for every request.
        self.segments_for = segments_for
        self.stats = WorkerStats()
        self.crashed = False
        self.crashes = 0
        self.restarts = 0
        # Crash epoch: crash() bumps it, and a generator resumed under a
        # newer epoch (its wakeup was already in flight) exits silently.
        self._epoch = 0
        self._current: Optional[InferenceRequest] = None
        self.process = Process(sim, self._run(), name=name)

    @property
    def kernel_count(self) -> int:
        """Kernels per request (sizes the restart reload cost)."""
        return sum(len(burst) for burst, _gap in self.segments)

    @property
    def in_flight(self) -> Optional[InferenceRequest]:
        """The request currently being served, if any.

        Public read-only view for the request-accounting audit
        (:func:`repro.check.invariants.request_conservation`): a popped
        request is either completed, deadline-shed, orphaned by a crash,
        or still here.
        """
        return self._current

    def crash(self) -> Optional[InferenceRequest]:
        """Kill the worker now; returns its orphaned in-flight request.

        Kernels already resident on the device run to retirement (the
        hardware does not crash), but the worker never observes them and
        the request is never completed — the caller decides whether to
        re-queue it.  The worker stays dead until :meth:`restart`.
        """
        if self.crashed:
            return None
        self._epoch += 1
        self.crashed = True
        self.crashes += 1
        orphan = self._current
        self._current = None
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.worker_crashed(self.name)
        return orphan

    def restart(self) -> None:
        """Bring a crashed worker back (after the reload cost elapsed)."""
        if not self.crashed:
            return
        self.crashed = False
        self.restarts += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.worker_restarted(self.name)
        self.process = Process(self.sim, self._run(), name=self.name)

    def _shed(self, request: InferenceRequest, reason: str) -> None:
        request.shed = True
        self.stats.shed.append(request)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.request_shed(request, reason)
        # Still report upstream so a closed-loop client re-arms; the
        # request carries ``shed`` so nobody mistakes it for a completion.
        if self.on_complete is not None:
            self.on_complete(request)

    def _run(self) -> Iterator:
        costs = self.host_costs
        guard = self.guard
        epoch = self._epoch
        while self.sim.now < self.stop_time:
            yield self.queue.get_signal()
            if self._epoch != epoch:
                return
            if self.sim.now >= self.stop_time:
                break
            request = self.queue.pop()
            if (guard is not None and guard.deadline is not None
                    and self.sim.now - request.arrival_time > guard.deadline):
                # Its deadline already passed in the queue: serving it
                # would burn GPU time on a response nobody is waiting for.
                self.stats.shed_deadline += 1
                self._shed(request, "deadline")
                continue
            self._current = request
            request.start_time = self.sim.now
            tracer = self.sim.tracer
            traced = tracer.enabled
            # Service-phase boundaries thread ``mark`` so consecutive
            # phases share their boundary timestamp bitwise — the exact
            # tiling the latency-attribution decomposition relies on.
            mark = request.start_time
            if traced:
                tracer.request_dequeued(request, self.name)
            yield costs.draw(costs.pre_mean, self.rng)
            if self._epoch != epoch:
                return
            if traced:
                now = self.sim.now
                tracer.service_phase(request, self.name, "host_pre",
                                     mark, now)
                mark = now
            segments = self.segments if self.segments_for is None \
                else self.segments_for(request)
            for burst, gap in segments:
                for desc in burst:
                    self.stream.launch_kernel(desc, tag=self.name)
                yield self.stream.synchronize_signal()
                if self._epoch != epoch:
                    return
                if traced:
                    now = self.sim.now
                    tracer.service_phase(request, self.name, "burst",
                                         mark, now)
                    mark = now
                if gap > 0:
                    yield gap
                    if self._epoch != epoch:
                        return
                    if traced:
                        now = self.sim.now
                        tracer.service_phase(request, self.name, "gap",
                                             mark, now)
                        mark = now
            yield costs.draw(costs.post_mean, self.rng)
            if self._epoch != epoch:
                return
            request.completion_time = self.sim.now
            self._current = None
            if traced:
                tracer.service_phase(request, self.name, "host_post",
                                     mark, request.completion_time)
                tracer.request_completed(request, self.name)
            self.stats.completed.append(request)
            self.stats.requests_processed += 1
            if self.on_complete is not None:
                self.on_complete(request)
