"""Inference workers.

A worker owns one GPU stream, dequeues request batches, performs host-side
pre-processing, enqueues the model's kernel trace, waits for the last
kernel, and post-processes.  Workers are independent of each other (the
paper's design), so concurrent inference execution on the same GPU falls
out of running several workers.

Host-side pre/post-processing times carry small stochastic jitter (from a
named RNG stream); that jitter is the only nondeterminism in the server
and produces the latency *tails* the SLO analysis measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Protocol, Sequence

import numpy as np

from repro.gpu.kernel import KernelDescriptor
from repro.server.request import InferenceRequest, RequestQueue
from repro.sim.engine import Simulator
from repro.sim.process import Process, Signal

__all__ = ["HostCostModel", "Worker", "WorkerStats", "StreamLike"]


class StreamLike(Protocol):
    """What a worker needs from a stream (native or emulated)."""

    def launch_kernel(self, descriptor: KernelDescriptor,
                      tag: str = "") -> Signal: ...

    def synchronize_signal(self) -> Signal: ...


@dataclass(frozen=True)
class HostCostModel:
    """Host-side request handling costs.

    ``pre_mean``/``post_mean`` are the mean pre/post-processing times; the
    actual draw is gamma-distributed with shape ``jitter_shape`` (higher =
    tighter), giving realistic right-skewed host tails.
    """

    pre_mean: float = 250e-6
    post_mean: float = 150e-6
    jitter_shape: float = 8.0

    def draw(self, mean: float, rng: np.random.Generator) -> float:
        """One jittered host delay."""
        if mean <= 0:
            return 0.0
        return float(rng.gamma(self.jitter_shape, mean / self.jitter_shape))


@dataclass
class WorkerStats:
    """Per-worker measurement log."""

    completed: list[InferenceRequest] = field(default_factory=list)
    requests_processed: int = 0

    def latencies_in(self, start: float, end: float) -> list[float]:
        """Service latencies of requests completed inside the window."""
        return [r.service_latency for r in self.completed
                if r.completion_time is not None
                and start <= r.completion_time <= end]

    def completions_in(self, start: float, end: float) -> int:
        """Number of requests completed inside the window."""
        return sum(1 for r in self.completed
                   if r.completion_time is not None
                   and start <= r.completion_time <= end)


class Worker:
    """One inference worker bound to a stream and a model trace."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        stream: StreamLike,
        segments: Sequence[tuple[Sequence[KernelDescriptor], float]],
        queue: RequestQueue,
        rng: np.random.Generator,
        host_costs: Optional[HostCostModel] = None,
        stop_time: float = float("inf"),
        on_complete: Optional["Callable[[InferenceRequest], None]"] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.stream = stream
        self.segments = [(list(burst), gap) for burst, gap in segments]
        self.queue = queue
        self.rng = rng
        self.host_costs = host_costs or HostCostModel()
        self.stop_time = stop_time
        self.on_complete = on_complete
        self.stats = WorkerStats()
        self.process = Process(sim, self._run(), name=name)

    def _run(self) -> Iterator:
        costs = self.host_costs
        while self.sim.now < self.stop_time:
            yield self.queue.get_signal()
            if self.sim.now >= self.stop_time:
                break
            request = self.queue.pop()
            request.start_time = self.sim.now
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.request_dequeued(request, self.name)
            yield costs.draw(costs.pre_mean, self.rng)
            for burst, gap in self.segments:
                for desc in burst:
                    self.stream.launch_kernel(desc, tag=self.name)
                yield self.stream.synchronize_signal()
                if gap > 0:
                    yield gap
            yield costs.draw(costs.post_mean, self.rng)
            request.completion_time = self.sim.now
            if tracer.enabled:
                tracer.request_completed(request, self.name)
            self.stats.completed.append(request)
            self.stats.requests_processed += 1
            if self.on_complete is not None:
                self.on_complete(request)
