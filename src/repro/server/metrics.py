"""Latency/throughput/energy metrics.

Percentiles use the nearest-rank method on the measured samples, matching
how inference-serving papers report pXX tail latencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["percentile", "geomean", "LatencyStats", "BoxplotStats"]


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile; ``pct`` in (0, 100]."""
    if not samples:
        raise ValueError("no samples")
    if not 0 < pct <= 100:
        raise ValueError(f"pct={pct} out of (0, 100]")
    ordered = sorted(samples)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("no values")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample set."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Build from raw latency samples in seconds."""
        if not samples:
            raise ValueError("no latency samples")
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            maximum=max(samples),
        )


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary for Fig. 15-style throughput distributions."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxplotStats":
        """Build from raw samples."""
        if not samples:
            raise ValueError("no samples")
        return cls(
            minimum=min(samples),
            q1=percentile(samples, 25),
            median=percentile(samples, 50),
            q3=percentile(samples, 75),
            maximum=max(samples),
        )
