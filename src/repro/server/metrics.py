"""Latency/throughput/energy metrics.

Percentiles use the nearest-rank method on the measured samples, matching
how inference-serving papers report pXX tail latencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["percentile", "geomean", "LatencyStats", "BoxplotStats"]


def _nearest_rank(ordered: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sample set."""
    if not ordered:
        raise ValueError("percentile of an empty sample set")
    if not 0 < pct <= 100:
        raise ValueError(f"pct={pct} out of (0, 100]")
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile; ``pct`` in (0, 100].

    Both argument errors raise ``ValueError`` with a clear message —
    and are validated *before* the sort, so a bad ``pct`` fails fast
    instead of paying O(n log n) first.
    """
    if not 0 < pct <= 100:
        raise ValueError(f"pct={pct} out of (0, 100]")
    return _nearest_rank(sorted(samples), pct)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("no values")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample set."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    p999: float
    maximum: float

    @classmethod
    def empty(cls) -> "LatencyStats":
        """All-zero stats for a worker that served nothing in the window
        (e.g. crashed under fault injection).  ``count == 0`` marks it."""
        return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0,
                   p999=0.0, maximum=0.0)

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Build from raw latency samples in seconds (sorts once)."""
        if not samples:
            raise ValueError("no latency samples")
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=_nearest_rank(ordered, 50),
            p95=_nearest_rank(ordered, 95),
            p99=_nearest_rank(ordered, 99),
            p999=_nearest_rank(ordered, 99.9),
            maximum=ordered[-1],
        )


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary for Fig. 15-style throughput distributions."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxplotStats":
        """Build from raw samples (sorts once)."""
        if not samples:
            raise ValueError("no samples")
        ordered = sorted(samples)
        return cls(
            minimum=ordered[0],
            q1=_nearest_rank(ordered, 25),
            median=_nearest_rank(ordered, 50),
            q3=_nearest_rank(ordered, 75),
            maximum=ordered[-1],
        )
