"""The shared harness-option surface for every experiment runner.

Every runner grew the same observability and resilience keywords one PR
at a time — ``tracer=``, ``recorder=``, ``metrics=``, ``sample_interval=``,
``faults=``, ``guard=``, ``audit=``, ``workload=`` — and a second device
would have doubled the sprawl.  :class:`RunOptions` is the one frozen
carrier for all of them: build it once, pass it to
:func:`~repro.server.experiment.run_experiment`,
:func:`~repro.server.rate_experiment.run_rate_experiment`,
:func:`~repro.exp.sweep.run_sweep`,
:func:`~repro.exp.load.run_load_curve` or
:func:`~repro.cluster.experiment.run_cluster_experiment` as ``options=``.

The legacy keywords still work on every runner but emit a
:class:`DeprecationWarning` through :func:`resolve_run_options`; tier-1
runs under ``-W error::DeprecationWarning`` in CI, so in-tree callers
are all on the new surface.  Each runner supports a subset of the
fields (``run_experiment`` has no ``workload``; ``run_sweep`` cannot
carry a live ``tracer`` across a process pool) and rejects the rest via
:func:`reject_unsupported` so a misdirected option fails loudly instead
of being silently dropped.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["RunOptions", "reject_unsupported", "resolve_run_options"]

#: Sample interval threaded to :class:`~repro.obs.sampler.SimSampler`
#: when ``metrics`` is given (matches the sampler's own default).
DEFAULT_SAMPLE_INTERVAL = 250e-6

#: Sentinel distinguishing "legacy keyword not passed" from an explicit
#: ``None`` (``None`` is a meaningful value for every legacy keyword).
_UNSET: Any = object()


@dataclass(frozen=True)
class RunOptions:
    """Shared harness options accepted by every experiment runner.

    All fields default to "off", so ``RunOptions()`` is equivalent to
    calling a runner with no harness keywords at all.  The dataclass is
    frozen: derive variants with :meth:`replace`.
    """

    #: Event tracer (:class:`~repro.obs.tracer.EventTracer`) attached to
    #: the simulator; pure observation, never perturbs results.
    tracer: Any = None
    #: Flight recorder (:class:`~repro.obs.flight.FlightRecorder`) for
    #: per-request latency attribution.
    recorder: Any = None
    #: Metrics registry (:class:`~repro.obs.metrics.MetricsRegistry`);
    #: when given, a :class:`~repro.obs.sampler.SimSampler` runs at
    #: ``sample_interval``.
    metrics: Any = None
    #: Seconds between metric samples (used only with ``metrics``).
    sample_interval: float = DEFAULT_SAMPLE_INTERVAL
    #: Fault schedule (:class:`~repro.faults.schedule.FaultSchedule`)
    #: armed against the run.
    faults: Any = None
    #: SLO guard (:class:`~repro.server.slo.SloGuard`) for admission
    #: control, deadline shedding and retry budgets.
    guard: Any = None
    #: Post-run audit hook ``audit(setup, injector)`` (see
    #: :mod:`repro.check`): runs before teardown, may raise.
    audit: Optional[Callable[..., Any]] = None
    #: Workload spec (open-loop runners only).
    workload: Any = None

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be > 0, got {self.sample_interval}")

    def replace(self, **changes: Any) -> "RunOptions":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)


def resolve_run_options(caller: str, options: Optional[RunOptions],
                        **legacy: Any) -> RunOptions:
    """Merge deprecated per-keyword arguments into a :class:`RunOptions`.

    Runners pass each legacy keyword with the :data:`_UNSET` default;
    anything still ``_UNSET`` here was not supplied.  Supplying any
    legacy keyword warns :class:`DeprecationWarning` (mixing them with
    ``options=`` is an error — there is no sane precedence).
    """
    passed = {name: value for name, value in legacy.items()
              if value is not _UNSET}
    if not passed:
        return options if options is not None else RunOptions()
    if options is not None:
        raise TypeError(
            f"{caller}() got both options= and the legacy keyword(s) "
            f"{', '.join(sorted(passed))}; pass everything via options=")
    warnings.warn(
        f"{caller}(): the {', '.join(sorted(passed))} keyword(s) are "
        f"deprecated; pass options=RunOptions(...) instead",
        DeprecationWarning, stacklevel=3)
    return RunOptions(**passed)


def reject_unsupported(caller: str, options: RunOptions,
                       *fields: str) -> None:
    """Raise if ``options`` sets a field ``caller`` cannot honour.

    A silently-ignored tracer or workload would corrupt an analysis
    without a trace; unsupported fields are a hard error instead.
    """
    defaults = RunOptions()
    offending = [name for name in fields
                 if getattr(options, name) != getattr(defaults, name)]
    if offending:
        raise ValueError(
            f"{caller}() does not support RunOptions field(s) "
            f"{', '.join(sorted(offending))}")
