"""Simulated GPU inference server (paper Section VI-A).

Mirrors the paper's custom inference-server architecture: a frontend that
enqueues client requests (:mod:`~repro.server.frontend`), shared request
queues (:mod:`~repro.server.request`), and independent workers that batch,
pre-process, run inference through the GPU runtime, and post-process
(:mod:`~repro.server.worker`).  :mod:`~repro.server.policies` implements
the five spatial-partitioning policies under evaluation and
:mod:`~repro.server.experiment` drives full co-location experiments at
maximum load, producing the throughput / tail-latency / energy metrics of
Fig. 13.
"""

from repro.server.experiment import (
    ExperimentConfig,
    ExperimentResult,
    isolated_baseline,
    normalized_rps,
    run_experiment,
    slo_target,
)
from repro.server.metrics import LatencyStats, geomean, percentile
from repro.server.policies import POLICY_NAMES, get_policy

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "isolated_baseline",
    "normalized_rps",
    "run_experiment",
    "slo_target",
    "LatencyStats",
    "geomean",
    "percentile",
    "POLICY_NAMES",
    "get_policy",
]
