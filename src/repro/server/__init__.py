"""Simulated GPU inference server (paper Section VI-A).

Mirrors the paper's custom inference-server architecture: a frontend that
enqueues client requests (:mod:`~repro.server.frontend`), shared request
queues (:mod:`~repro.server.request`), and independent workers that batch,
pre-process, run inference through the GPU runtime, and post-process
(:mod:`~repro.server.worker`).  :mod:`~repro.server.policies` implements
the five spatial-partitioning policies under evaluation.

Assembly goes through one builder — :class:`~repro.server.setup
.ServingSetup` — shared by the closed-loop harness
(:mod:`~repro.server.experiment`, the Fig. 13 maximum-load shape), the
open-loop harness (:mod:`~repro.server.rate_experiment`, Poisson
arrivals), and the chaos runner (:mod:`repro.exp.chaos`).  SLO guard
rails (admission control, deadline shedding, bounded retry) live in
:mod:`~repro.server.slo`.
"""

from repro.server.experiment import (
    ExperimentConfig,
    ExperimentResult,
    isolated_baseline,
    measurement_window,
    normalized_rps,
    run_experiment,
    slo_target,
)
from repro.server.metrics import LatencyStats, geomean, percentile
from repro.server.options import RunOptions
from repro.server.policies import POLICY_NAMES, get_policy
from repro.server.rate_experiment import (
    RateResult,
    max_sustainable_rate,
    run_rate_experiment,
)
from repro.server.setup import ServingSetup
from repro.server.slo import ResilienceStats, SloGuard

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "isolated_baseline",
    "measurement_window",
    "normalized_rps",
    "run_experiment",
    "slo_target",
    "RunOptions",
    "RateResult",
    "max_sustainable_rate",
    "run_rate_experiment",
    "ServingSetup",
    "ResilienceStats",
    "SloGuard",
    "LatencyStats",
    "geomean",
    "percentile",
    "POLICY_NAMES",
    "get_policy",
]
