"""Shared serving-stack assembly: one builder for every harness.

Before this module, the closed-loop harness (:mod:`repro.server
.experiment`), the open-loop harness (:mod:`repro.server.rate_experiment`)
and any new runner each re-derived the same nine lines of wiring —
topology, simulator, device, seeded RNG fork, worker plans, policy,
streams — and drift between the copies silently invalidated cached
results.  :class:`ServingSetup` is that wiring, once: :meth:`ServingSetup
.build` performs the construction in the exact historical order (object
creation order determines event sequence numbers at t=0, so reordering
would change results), and the harnesses add their load shape on top
through :meth:`add_closed_loop_worker` / :meth:`add_open_loop`.

The builder also carries the robustness surface: an optional
:class:`~repro.server.slo.SloGuard` threaded into every queue and worker
it creates, and the degraded/shed/crash accounting
(:meth:`resilience_stats`) every guarded run reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.gpu.device import GpuDevice
from repro.gpu.topology import GpuTopology
from repro.models.zoo import get_model
from repro.server.frontend import ClosedLoopClient, PoissonClient
from repro.server.policies import Policy, WorkerPlan, get_policy
from repro.server.request import RequestQueue
from repro.server.slo import ResilienceStats, SloGuard
from repro.server.worker import HostCostModel, Worker
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

__all__ = ["ServingSetup"]


@dataclass
class ServingSetup:
    """A fully wired serving cell, ready for a load generator.

    Construct with :meth:`build`; then attach workers/clients.  All
    mutable collections are appended in creation order — the order is
    load-bearing for determinism and must not be shuffled.
    """

    config: "ExperimentConfig"
    sim: Simulator
    device: GpuDevice
    topology: GpuTopology
    rng: RngRegistry
    plans: list[WorkerPlan]
    policy: Policy
    streams: list
    guard: Optional[SloGuard] = None
    queues: list[RequestQueue] = field(default_factory=list)
    workers: list[Worker] = field(default_factory=list)
    clients: list = field(default_factory=list)
    #: queue -> (model_name, batch_size); what a storm injects there.
    queue_models: dict = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        config: "ExperimentConfig",
        *,
        rng_label: str,
        tracer=None,
        guard: Optional[SloGuard] = None,
        recorder=None,
        sim: Optional[Simulator] = None,
    ) -> "ServingSetup":
        """Assemble device, RNG, policy, and streams for ``config``.

        ``rng_label`` is the registry fork label — each harness keeps its
        historical label (changing it changes every random draw).

        ``recorder`` (a :class:`~repro.obs.flight.FlightRecorder`) is a
        second tracer-protocol observer; when both ``tracer`` and
        ``recorder`` are given they are fanned out through a
        :class:`~repro.obs.flight.TeeTracer`.  Pure observation either
        way — results are bit-identical with and without it.

        ``sim`` injects an existing simulator so several setups (one per
        fleet node) share one event clock; the default path constructs
        its own in the exact historical position (object creation order
        determines event sequence numbers at t=0).  A shared simulator
        already carries its tracer, so ``tracer``/``recorder`` must be
        ``None`` then.
        """
        if sim is not None and (tracer is not None or recorder is not None):
            raise ValueError(
                "tracer/recorder belong to the shared simulator; attach "
                "them where it is created, not per setup")
        if recorder is not None:
            from repro.obs.flight import compose_tracers
            tracer = compose_tracers(tracer, recorder)
        topology = GpuTopology.mi50()
        if sim is None:
            sim = Simulator(tracer=tracer)
        device = GpuDevice(sim, topology, exec_config=config.exec_config())
        rng = RngRegistry(config.seed).fork(rng_label)
        plans = [WorkerPlan(get_model(name), config.batch_size)
                 for name in config.model_names]
        policy = get_policy(config.policy, emulated=config.emulated,
                            overlap_limit=config.overlap_limit,
                            reshape=config.allocator_reshape,
                            allocation=config.allocation,
                            sizing=config.sizing)
        streams = policy.setup(sim, device, plans)
        return cls(config=config, sim=sim, device=device, topology=topology,
                   rng=rng, plans=plans, policy=policy, streams=streams,
                   guard=guard)

    # -- wiring -------------------------------------------------------------
    def new_queue(self, name: str, model_name: str,
                  batch_size: int) -> RequestQueue:
        """A request queue, admission-bounded when the guard says so."""
        depth = self.guard.admission_depth if self.guard is not None else None
        queue = RequestQueue(self.sim, name=name, max_depth=depth)
        self.queues.append(queue)
        self.queue_models[id(queue)] = (model_name, batch_size)
        return queue

    def add_worker(self, index: int, queue: RequestQueue, *,
                   stop_time: float, on_complete=None,
                   segments_for=None, name: Optional[str] = None) -> Worker:
        """Worker ``index`` over its plan/stream, on ``queue``.

        Names follow the historical scheme (``worker-{i}`` processes,
        ``host-{i}`` RNG streams) so seeded runs reproduce exactly;
        ``name`` overrides the process name (fleet nodes disambiguate
        their workers) without touching the RNG stream.
        ``segments_for`` optionally overrides the static plan segments
        per request (LLM variable output lengths).
        """
        plan = self.plans[index]
        worker = Worker(
            self.sim,
            name=name if name is not None else f"worker-{index}",
            stream=self.streams[index],
            segments=plan.model.segments(plan.batch_size, self.topology),
            queue=queue,
            rng=self.rng.stream(f"host-{index}"),
            host_costs=HostCostModel(),
            stop_time=stop_time,
            on_complete=on_complete,
            guard=self.guard,
            segments_for=segments_for,
        )
        self.workers.append(worker)
        return worker

    def add_closed_loop_worker(self, index: int, *,
                               stop_time: float) -> Worker:
        """One private queue + closed-loop client + worker (Fig. 13 shape)."""
        plan = self.plans[index]
        queue = self.new_queue(f"q{index}", plan.model.name, plan.batch_size)
        backoff = self.guard.retry_backoff if self.guard is not None else 1e-3
        client = ClosedLoopClient(
            self.sim, queue, plan.model.name, plan.batch_size,
            concurrency=1, stop_time=stop_time, retry_backoff=backoff,
        )
        self.clients.append(client)
        return self.add_worker(index, queue, stop_time=stop_time,
                               on_complete=client.on_request_complete)

    def add_open_loop(self, offered_rps: float, *,
                      stop_time: float) -> PoissonClient:
        """One shared queue + Poisson client + all workers (rate shape)."""
        first = self.plans[0]
        queue = self.new_queue("shared", first.model.name, first.batch_size)
        client = PoissonClient(
            self.sim, queue, first.model.name, self.config.batch_size,
            rate=offered_rps / self.config.batch_size,
            rng=self.rng.stream("arrivals"), stop_time=stop_time,
        )
        self.clients.append(client)
        for index in range(len(self.plans)):
            self.add_worker(index, queue, stop_time=stop_time)
        return client

    @staticmethod
    def _segments_fn(plan: WorkerPlan):
        """Per-request segment override for LLM plans (else ``None``)."""
        from repro.models.zoo import LlmModelSpec, llm_segments
        if not isinstance(plan.model, LlmModelSpec):
            return None
        name, batch = plan.model.name, plan.batch_size

        def segments_for(request):
            return llm_segments(name, batch, request.output_tokens)
        return segments_for

    def add_workload(self, spec, *, stop_time: float):
        """Queues + workload client + all workers for a workload spec.

        Single-model specs reproduce the historical open-loop wiring
        exactly — one ``shared`` queue served by every worker, arrival
        gaps drawn from the ``arrivals`` stream — so a homogeneous
        Poisson spec is bit-identical to :meth:`add_open_loop` at the
        same rate.  Multi-model specs route each class to a per-model
        ``wl-{model}`` queue served by that model's workers (a worker
        only ever runs its own plan's kernels); workers of a configured
        model the spec never sends traffic to idle on an ``idle-{model}``
        queue.
        """
        from repro.workload.client import WorkloadClient

        classes = spec.request_classes()
        configured = {plan.model.name for plan in self.plans}
        missing = sorted({c.model for c in classes} - configured)
        if missing:
            raise ValueError(
                f"workload models {missing} are not in "
                f"config.model_names {sorted(configured)}")
        # Legacy-identical wiring (one shared queue, every worker) only
        # when the whole deployment serves the spec's single model —
        # otherwise a worker would run its own plan's kernels against
        # another model's requests.
        single = (len({c.model for c in classes}) == 1
                  and all(plan.model.name == classes[0].model
                          for plan in self.plans))
        queue_for: dict[str, RequestQueue] = {}
        for cls in classes:
            if cls.model not in queue_for:
                name = "shared" if single else f"wl-{cls.model}"
                queue_for[cls.model] = self.new_queue(
                    name, cls.model, cls.batch_size)
        client = WorkloadClient(self.sim, spec, queues=queue_for,
                                rng=self.rng, stop_time=stop_time)
        self.clients.append(client)
        for index, plan in enumerate(self.plans):
            if single:
                queue = next(iter(queue_for.values()))
            elif plan.model.name in queue_for:
                queue = queue_for[plan.model.name]
            else:
                queue = self.new_queue(f"idle-{plan.model.name}",
                                       plan.model.name, plan.batch_size)
            self.add_worker(index, queue, stop_time=stop_time,
                            segments_for=self._segments_fn(plan))
        return client

    def start_sampler(self, metrics, sample_interval: float,
                      stop_time: float, prefix: str = "krisp"):
        """Attach the periodic occupancy/queue-depth sampler.

        ``prefix`` namespaces the metric families (fleet nodes use
        ``node{i}`` so one registry holds every device's series).
        Returns the sampler so callers can force off-cycle samples.
        """
        from repro.obs.sampler import SimSampler
        sampler = SimSampler(self.sim, self.device, metrics,
                             queues=self.queues, interval=sample_interval,
                             prefix=prefix)
        sampler.start(stop_time=stop_time)
        return sampler

    # -- accounting ---------------------------------------------------------
    def degraded_count(self) -> int:
        """Fallback-served launches across every right-sizer + allocator."""
        total = 0
        seen: set[int] = set()
        for stream in self.streams:
            sizer = getattr(stream, "rightsizer", None) \
                or getattr(stream, "sizer", None)
            if sizer is not None and id(sizer) not in seen:
                seen.add(id(sizer))
                total += getattr(sizer, "degraded", 0)
            runtime = getattr(stream, "runtime", None)
            allocator = getattr(runtime, "allocator", None)
            if allocator is not None and id(allocator) not in seen:
                seen.add(id(allocator))
                total += getattr(allocator, "degraded", 0)
        return total

    def resilience_stats(self, *, window_start: float, window_end: float,
                         injector=None) -> ResilienceStats:
        """Aggregate shed/retry/degraded/goodput accounting for the run.

        Goodput counts only completions inside the window that met the
        guard's deadline (every completion when no deadline is set),
        scaled by batch size — directly comparable to ``total_rps``.
        """
        deadline = self.guard.deadline if self.guard is not None else None
        window = window_end - window_start
        good = 0
        for worker in self.workers:
            for request in worker.stats.completed:
                if request.completion_time is None:
                    continue
                if not window_start <= request.completion_time <= window_end:
                    continue
                if deadline is None or request.latency <= deadline:
                    good += 1
        return ResilienceStats(
            shed_admission=sum(q.shed for q in self.queues),
            shed_deadline=sum(w.stats.shed_deadline for w in self.workers),
            shed_retries=injector.shed_retries if injector else 0,
            retried=injector.retried if injector else 0,
            degraded=self.degraded_count(),
            crashes=sum(w.crashes for w in self.workers),
            restarts=sum(w.restarts for w in self.workers),
            faults_injected=injector.injected if injector else 0,
            goodput_rps=good * self.config.batch_size / window,
        )
