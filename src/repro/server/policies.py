"""The five spatial-partitioning policies under evaluation (Section VI-A).

Each policy's ``setup`` wires per-worker streams over a shared device:

* **MPS Default** — concurrent kernels share every CU with no isolation
  (AMD's default concurrency, equivalent to unrestricted Nvidia MPS).
* **Static Equal** — equal-sized, non-overlapping per-worker CU
  partitions.
* **Model Right-Size** — prior work's upper bound: each worker's stream
  is masked to the model's profiled kneepoint; partitions overlap only
  when the models no longer fit (open-circle cases in the paper's plots).
* **KRISP-O** — kernel-scoped partitions with unlimited CU
  oversubscription.
* **KRISP-I** — kernel-scoped partitions with isolation (overlap limit
  0); kernels may receive fewer CUs than their minimum when isolated
  resources run out.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.allocation import DistributionPolicy, ResourceMaskGenerator
from repro.core.krisp import KrispConfig, KrispSystem
from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.models.zoo import ModelSpec
from repro.runtime.hsa import HsaRuntime
from repro.runtime.stream import Stream
from repro.server.profiles import combined_database, model_right_size
from repro.server.worker import StreamLike
from repro.sim.engine import Simulator

__all__ = ["WorkerPlan", "Policy", "POLICY_NAMES", "get_policy"]


@dataclass(frozen=True)
class WorkerPlan:
    """One co-located worker: which model it serves at which batch size."""

    model: ModelSpec
    batch_size: int = 32


class Policy(ABC):
    """A spatial-partitioning policy building per-worker streams."""

    name: str = ""

    @abstractmethod
    def setup(self, sim: Simulator, device: GpuDevice,
              plans: Sequence[WorkerPlan]) -> list[StreamLike]:
        """Create one stream per worker plan over the shared device."""


class MpsDefaultPolicy(Policy):
    """All workers share all CUs with no restriction."""

    name = "mps-default"

    def setup(self, sim, device, plans):
        runtime = HsaRuntime(sim, device)
        return [Stream(runtime, name=f"w{i}") for i in range(len(plans))]


class StaticEqualPolicy(Policy):
    """Equal-sized, non-overlapping partitions (flat CU slices).

    For 2 and 4 workers on an MI50 the slices coincide with whole shader
    engines (30 CUs = 2 SEs, 15 CUs = 1 SE), matching how MIG-style equal
    partitioning falls on cluster boundaries.
    """

    name = "static-equal"

    def setup(self, sim, device, plans):
        runtime = HsaRuntime(sim, device)
        topology = device.topology
        share = topology.total_cus // len(plans)
        if share < 1:
            raise ValueError("more workers than CUs")
        streams = []
        for i in range(len(plans)):
            stream = Stream(runtime, name=f"w{i}")
            cus = range(i * share, (i + 1) * share)
            stream.queue.set_cu_mask(CUMask.from_cus(topology, cus))
            streams.append(stream)
        return streams


class ModelRightSizePolicy(Policy):
    """Prior work's model-wise right-sizing (GSLICE / Gpulet / PARIS).

    Worker partitions are sized to each model's profiled kneepoint and
    placed with the Conserved allocator; when the kneepoints no longer
    fit on the device, partitions overlap on the least-loaded CUs.
    """

    name = "model-rightsize"

    def setup(self, sim, device, plans):
        runtime = HsaRuntime(sim, device)
        topology = device.topology
        generator = ResourceMaskGenerator(
            topology, policy=DistributionPolicy.CONSERVED, overlap_limit=None
        )
        placement = CUKernelCounters(topology)
        streams = []
        for i, plan in enumerate(plans):
            size = model_right_size(plan.model.name, plan.batch_size)
            mask = generator.generate(size, placement)
            placement.assign(mask)
            stream = Stream(runtime, name=f"w{i}")
            stream.queue.set_cu_mask(mask)
            streams.append(stream)
        return streams


class KrispPolicy(Policy):
    """Kernel-scoped partitions; ``overlap_limit`` selects O vs I."""

    def __init__(self, name: str, overlap_limit: Optional[int],
                 emulated: bool = False, reshape: bool = True,
                 allocation: str = "krisp", sizing: str = "static") -> None:
        self.name = name
        self.overlap_limit = overlap_limit
        self.emulated = emulated
        self.reshape = reshape
        self.allocation = allocation
        self.sizing = sizing

    def setup(self, sim, device, plans):
        batch = plans[0].batch_size
        names = tuple(sorted({plan.model.name for plan in plans}))
        database = combined_database(names, batch)
        system = KrispSystem(
            sim, device, database,
            config=KrispConfig(overlap_limit=self.overlap_limit,
                               reshape=self.reshape,
                               allocation=self.allocation,
                               sizing=self.sizing),
        )
        # Each stream degrades to its model-wise right-size when a kernel
        # is missing from the perf-DB (a complete DB never consults it).
        return [
            system.create_stream(
                f"w{i}",
                emulated=self.emulated,
                fallback_cus=model_right_size(plan.model.name,
                                              plan.batch_size),
            )
            for i, plan in enumerate(plans)
        ]


#: Paper ordering of the evaluated policies.
POLICY_NAMES: tuple[str, ...] = (
    "mps-default",
    "static-equal",
    "model-rightsize",
    "krisp-o",
    "krisp-i",
)


def get_policy(name: str, emulated: bool = False,
               overlap_limit: Optional[int] = None,
               reshape: bool = True,
               allocation: str = "krisp",
               sizing: str = "static") -> Policy:
    """Policy factory.

    ``emulated`` selects the barrier-packet emulation for the KRISP
    policies; ``overlap_limit`` overrides KRISP's overlap budget (the
    Fig. 16 sweep); ``reshape=False`` selects the literal single-pass
    Algorithm 1; ``allocation``/``sizing`` select the mask-allocation
    and right-sizing policies of :mod:`repro.core.pools`.  All are
    ignored by the non-KRISP policies.
    """
    if name == "mps-default":
        return MpsDefaultPolicy()
    if name == "static-equal":
        return StaticEqualPolicy()
    if name == "model-rightsize":
        return ModelRightSizePolicy()
    if name == "krisp-o":
        limit = overlap_limit  # None = unlimited oversubscription
        return KrispPolicy("krisp-o", limit, emulated=emulated,
                           reshape=reshape, allocation=allocation,
                           sizing=sizing)
    if name == "krisp-i":
        limit = 0 if overlap_limit is None else overlap_limit
        return KrispPolicy("krisp-i", limit, emulated=emulated,
                           reshape=reshape, allocation=allocation,
                           sizing=sizing)
    raise KeyError(f"unknown policy {name!r}; available: {POLICY_NAMES}")
