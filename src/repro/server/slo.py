"""SLO guard rails for the serving path.

The fault-free harness drives a perfect stack: every request is admitted,
every admitted request is served, and the queue can always absorb the
offered load.  Under injected faults (worker crashes, stragglers, request
storms — :mod:`repro.faults`) that assumption breaks, so the serving path
grows three production guard rails, all configured through one frozen
:class:`SloGuard`:

* **admission control** — a queue depth bound; requests offered to a full
  queue are *shed* at the frontend instead of growing an unbounded
  backlog;
* **deadline-based load shedding** — a worker dequeuing a request whose
  age already exceeds the deadline drops it instead of wasting GPU time
  on a response nobody is waiting for;
* **bounded retry with backoff** — a request in flight on a crashed
  worker is re-queued after an exponential backoff, at most
  ``max_retries`` times, then shed.

Shed requests are excluded from latency statistics (they were never
served) but fully accounted: :class:`ResilienceStats` carries the
shed/retry/degraded counters and the goodput every guarded run reports
through :class:`~repro.server.experiment.ExperimentResult`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["SloGuard", "ResilienceStats"]


def _known_fields(cls, payload: dict[str, Any]) -> dict[str, Any]:
    """``payload`` filtered to ``cls``'s dataclass fields.

    Forward compatibility for the ``from_dict`` constructors: a payload
    written by a future schema (extra counters, new policy knobs) loads
    cleanly instead of raising ``TypeError``; the unknown keys are
    uniformly ignored.
    """
    known = {f.name for f in dataclasses.fields(cls)}
    return {key: value for key, value in payload.items() if key in known}


@dataclass(frozen=True)
class SloGuard:
    """Admission/deadline/retry policy for one serving run.

    ``admission_depth=None`` disables admission control (the fault-free
    default); ``deadline=None`` disables deadline shedding.  ``deadline``
    is measured from the request's arrival, in seconds — chaos runs set
    it to the model's 2x-isolated SLO target.  A retried request waits
    ``retry_backoff * 2**(retries - 1)`` seconds before re-entering the
    queue.
    """

    admission_depth: Optional[int] = None
    deadline: Optional[float] = None
    max_retries: int = 2
    retry_backoff: float = 1e-3

    def __post_init__(self) -> None:
        if self.admission_depth is not None and self.admission_depth < 1:
            raise ValueError("admission_depth must be >= 1 (or None)")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be > 0 (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        """JSON-native form (folded into cache keys)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SloGuard":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        return cls(**_known_fields(cls, payload))


@dataclass(frozen=True)
class ResilienceStats:
    """Fault/degradation accounting of one guarded serving run.

    ``goodput_rps`` counts only requests completed within the guard's
    deadline (all completions when no deadline is set) — the quantity a
    chaos experiment compares against the fault-free cell.
    """

    #: Requests rejected by admission control at the frontend.
    shed_admission: int = 0
    #: Requests dropped at dequeue because their deadline had passed.
    shed_deadline: int = 0
    #: Requests abandoned after exhausting their retry budget.
    shed_retries: int = 0
    #: Re-queue events for requests orphaned by a worker crash.
    retried: int = 0
    #: Kernel launches served through a degraded (fallback) partition
    #: size because the perf-DB entry was missing or mask generation
    #: failed.
    degraded: int = 0
    crashes: int = 0
    restarts: int = 0
    #: Fault-schedule events actually injected inside the run.
    faults_injected: int = 0
    #: Requests completed within the deadline, per second of window.
    goodput_rps: float = 0.0

    @property
    def shed(self) -> int:
        """Total shed requests, across every shedding mechanism."""
        return self.shed_admission + self.shed_deadline + self.shed_retries

    def to_dict(self) -> dict[str, Any]:
        """JSON-native form (stored in cached results)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ResilienceStats":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        return cls(**_known_fields(cls, payload))
