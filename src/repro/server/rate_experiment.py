"""Open-loop (rate-driven) serving experiments.

The paper evaluates at maximum load; prior inference servers additionally
adapt to fluctuating request rates.  This extension drives a co-located
deployment with Poisson arrivals at a given rate and measures end-to-end
(queueing-inclusive) latency, enabling max-sustainable-throughput
searches under an SLO — the natural next question a KRISP adopter asks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.server.experiment import ExperimentConfig, slo_target
from repro.server.metrics import LatencyStats
from repro.server.slo import ResilienceStats, SloGuard

__all__ = ["RateResult", "run_rate_experiment", "max_sustainable_rate"]


@dataclass(frozen=True)
class RateResult:
    """Outcome of one open-loop run."""

    offered_rps: float
    achieved_rps: float
    latency: LatencyStats
    queue_residue: int
    #: Shed/retry/degraded/goodput accounting; ``None`` on an unguarded,
    #: fault-free run.
    resilience: Optional[ResilienceStats] = None

    @property
    def saturated(self) -> bool:
        """Whether the server failed to keep up with the offered load.

        Judged by the backlog left in the request queue at the end of the
        run — under a sustainable rate the queue drains continuously.
        """
        return self.queue_residue > 2


def run_rate_experiment(
    config: ExperimentConfig,
    offered_rps: float,
    duration: Optional[float] = None,
    *,
    tracer=None,
    metrics=None,
    sample_interval: float = 250e-6,
    faults=None,
    guard: Optional[SloGuard] = None,
) -> RateResult:
    """Drive the deployment with Poisson arrivals at ``offered_rps``.

    All workers share one request queue (any worker may serve any
    request), matching the paper's frontend/queue/worker architecture.
    Requests arrive in batches of ``config.batch_size``, so the arrival
    rate of batches is ``offered_rps / batch_size``.

    ``tracer``, ``metrics``, ``sample_interval``, ``faults``, and
    ``guard`` mirror :func:`repro.server.experiment.run_experiment`
    exactly (the aligned keyword surface).
    """
    from repro.server.setup import ServingSetup

    if offered_rps <= 0:
        raise ValueError("offered_rps must be > 0")
    setup = ServingSetup.build(config, rng_label=f"rate/{offered_rps}",
                               tracer=tracer, guard=guard)
    sim = setup.sim

    if duration is None:
        base = max(slo_target(name, config.batch_size)
                   for name in config.model_names)
        duration = max(1.0, 40 * base)

    setup.add_open_loop(offered_rps, stop_time=duration)
    queue = setup.queues[0]

    injector = None
    if faults is not None and len(faults):
        from repro.faults.injector import FaultInjector
        injector = FaultInjector(setup, faults, metrics=metrics)

    if metrics is not None:
        setup.start_sampler(metrics, sample_interval, stop_time=duration)

    sim.run(until=duration)

    faulted = guard is not None or injector is not None
    latencies = []
    completed = 0
    for worker in setup.workers:
        for request in worker.stats.completed:
            if request.completion_time is not None:
                latencies.append(request.latency)  # queueing-inclusive
                completed += 1
    if not latencies and not faulted:
        raise RuntimeError("no requests completed; offered rate too low "
                           "or duration too short")
    resilience = None
    if faulted:
        resilience = setup.resilience_stats(
            window_start=0.0, window_end=duration, injector=injector)
    return RateResult(
        offered_rps=offered_rps,
        achieved_rps=completed * config.batch_size / duration,
        latency=(LatencyStats.from_samples(latencies) if latencies
                 else LatencyStats.empty()),
        queue_residue=len(queue),
        resilience=resilience,
    )


def max_sustainable_rate(
    config: ExperimentConfig,
    slo_latency: float,
    low_rps: float,
    high_rps: float,
    iterations: int = 6,
) -> float:
    """Binary-search the highest offered rate whose p95 meets the SLO."""
    if low_rps <= 0 or high_rps <= low_rps:
        raise ValueError("need 0 < low_rps < high_rps")
    best = 0.0
    for _ in range(iterations):
        mid = (low_rps + high_rps) / 2
        result = run_rate_experiment(config, mid)
        if not result.saturated and result.latency.p95 <= slo_latency:
            best = mid
            low_rps = mid
        else:
            high_rps = mid
    return best
