"""Open-loop (rate-driven) serving experiments.

The paper evaluates at maximum load; prior inference servers additionally
adapt to fluctuating request rates.  This extension drives a co-located
deployment with Poisson arrivals at a given rate and measures end-to-end
(queueing-inclusive) latency, enabling max-sustainable-throughput
searches under an SLO — the natural next question a KRISP adopter asks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpu.device import GpuDevice
from repro.gpu.topology import GpuTopology
from repro.models.zoo import get_model
from repro.server.experiment import ExperimentConfig, slo_target
from repro.server.frontend import PoissonClient
from repro.server.metrics import LatencyStats
from repro.server.policies import WorkerPlan, get_policy
from repro.server.request import RequestQueue
from repro.server.worker import HostCostModel, Worker
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

__all__ = ["RateResult", "run_rate_experiment", "max_sustainable_rate"]


@dataclass(frozen=True)
class RateResult:
    """Outcome of one open-loop run."""

    offered_rps: float
    achieved_rps: float
    latency: LatencyStats
    queue_residue: int

    @property
    def saturated(self) -> bool:
        """Whether the server failed to keep up with the offered load.

        Judged by the backlog left in the request queue at the end of the
        run — under a sustainable rate the queue drains continuously.
        """
        return self.queue_residue > 2


def run_rate_experiment(
    config: ExperimentConfig,
    offered_rps: float,
    duration: Optional[float] = None,
) -> RateResult:
    """Drive the deployment with Poisson arrivals at ``offered_rps``.

    All workers share one request queue (any worker may serve any
    request), matching the paper's frontend/queue/worker architecture.
    Requests arrive in batches of ``config.batch_size``, so the arrival
    rate of batches is ``offered_rps / batch_size``.
    """
    if offered_rps <= 0:
        raise ValueError("offered_rps must be > 0")
    topology = GpuTopology.mi50()
    sim = Simulator()
    device = GpuDevice(sim, topology, exec_config=config.exec_config())
    rng = RngRegistry(config.seed).fork(f"rate/{offered_rps}")
    plans = [WorkerPlan(get_model(name), config.batch_size)
             for name in config.model_names]
    policy = get_policy(config.policy, emulated=config.emulated,
                        overlap_limit=config.overlap_limit)
    streams = policy.setup(sim, device, plans)

    if duration is None:
        base = max(slo_target(name, config.batch_size)
                   for name in config.model_names)
        duration = max(1.0, 40 * base)

    queue = RequestQueue(sim, name="shared")
    batch_rate = offered_rps / config.batch_size
    client = PoissonClient(sim, queue, plans[0].model.name,
                           config.batch_size, rate=batch_rate,
                           rng=rng.stream("arrivals"), stop_time=duration)
    workers = [
        Worker(sim, f"worker-{i}", stream,
               plan.model.segments(plan.batch_size, topology),
               queue, rng.stream(f"host-{i}"),
               host_costs=HostCostModel(), stop_time=duration)
        for i, (plan, stream) in enumerate(zip(plans, streams))
    ]
    sim.run(until=duration)

    latencies = []
    completed = 0
    for worker in workers:
        for request in worker.stats.completed:
            if request.completion_time is not None:
                latencies.append(request.latency)  # queueing-inclusive
                completed += 1
    if not latencies:
        raise RuntimeError("no requests completed; offered rate too low "
                           "or duration too short")
    return RateResult(
        offered_rps=offered_rps,
        achieved_rps=completed * config.batch_size / duration,
        latency=LatencyStats.from_samples(latencies),
        queue_residue=len(queue),
    )


def max_sustainable_rate(
    config: ExperimentConfig,
    slo_latency: float,
    low_rps: float,
    high_rps: float,
    iterations: int = 6,
) -> float:
    """Binary-search the highest offered rate whose p95 meets the SLO."""
    if low_rps <= 0 or high_rps <= low_rps:
        raise ValueError("need 0 < low_rps < high_rps")
    best = 0.0
    for _ in range(iterations):
        mid = (low_rps + high_rps) / 2
        result = run_rate_experiment(config, mid)
        if not result.saturated and result.latency.p95 <= slo_latency:
            best = mid
            low_rps = mid
        else:
            high_rps = mid
    return best
