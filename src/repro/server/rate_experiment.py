"""Open-loop (rate-driven) serving experiments.

The paper evaluates at maximum load; prior inference servers additionally
adapt to fluctuating request rates.  This extension drives a co-located
deployment with Poisson arrivals at a given rate and measures end-to-end
(queueing-inclusive) latency, enabling max-sustainable-throughput
searches under an SLO — the natural next question a KRISP adopter asks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.server.experiment import ExperimentConfig, slo_target
from repro.server.metrics import LatencyStats
from repro.server.options import _UNSET, RunOptions, resolve_run_options
from repro.server.slo import ResilienceStats, SloGuard

__all__ = ["RateResult", "default_rate_duration", "run_rate_experiment",
           "max_sustainable_rate"]


@dataclass(frozen=True)
class RateResult:
    """Outcome of one open-loop run."""

    offered_rps: float
    achieved_rps: float
    latency: LatencyStats
    queue_residue: int
    #: Shed/retry/degraded/goodput accounting; ``None`` on an unguarded,
    #: fault-free run.
    resilience: Optional[ResilienceStats] = None

    @property
    def saturated(self) -> bool:
        """Whether the server failed to keep up with the offered load.

        Judged by the backlog left in the request queue at the end of the
        run — under a sustainable rate the queue drains continuously.
        """
        return self.queue_residue > 2


def default_rate_duration(config: ExperimentConfig) -> float:
    """Default open-loop run length for ``config``.

    40x the slowest co-located model's SLO target, floored at one
    second — long enough for queueing to reach (or visibly diverge
    from) steady state.  Exposed so the load-curve cache can pin the
    actual duration into its key.
    """
    base = max(slo_target(name, config.batch_size)
               for name in config.model_names)
    return max(1.0, 40 * base)


def run_rate_experiment(
    config: ExperimentConfig,
    offered_rps: Optional[float] = None,
    duration: Optional[float] = None,
    options: Optional[RunOptions] = None,
    *,
    workload=_UNSET,
    tracer=_UNSET,
    recorder=_UNSET,
    metrics=_UNSET,
    sample_interval=_UNSET,
    faults=_UNSET,
    guard=_UNSET,
    audit=_UNSET,
) -> RateResult:
    """Drive the deployment open-loop and measure end-to-end latency.

    With only ``offered_rps`` given, arrivals are Poisson at that rate:
    all workers share one request queue (any worker may serve any
    request), matching the paper's frontend/queue/worker architecture.
    Requests arrive in batches of ``config.batch_size``, so the arrival
    rate of batches is ``offered_rps / batch_size``.

    Harness options travel in a single frozen
    :class:`~repro.server.options.RunOptions` passed as ``options=``;
    the per-keyword spellings below are deprecated shims mapping into
    it (and cannot be mixed with ``options=``).

    Parameters
    ----------
    offered_rps:
        Offered load in requests per second.  Optional when
        ``options.workload`` is given (it then defaults to the spec's
        ``offered_rps()``); passing both pins the RNG fork label to the
        explicit rate, which the Poisson-equivalence tests rely on.
    duration:
        Run length in sim seconds; defaults to
        :func:`default_rate_duration`.
    options:
        A :class:`~repro.server.options.RunOptions`.  ``workload`` (a
        :mod:`repro.workload` spec) replaces the Poisson client with the
        spec's arrival process and request mix via
        :meth:`~repro.server.setup.ServingSetup.add_workload` — a
        homogeneous Poisson spec at the same rate is bit-identical to
        the legacy path, and every class's ``batch_size`` must equal
        ``config.batch_size``.  ``tracer``/``recorder``/``metrics``/
        ``sample_interval``/``faults``/``guard``/``audit`` mirror
        :func:`repro.server.experiment.run_experiment` (the aligned
        option surface): observation hooks are pure, ``guard`` or a
        non-empty ``faults`` make the result carry
        :class:`~repro.server.slo.ResilienceStats`.
    """
    from repro.server.setup import ServingSetup

    opts = resolve_run_options(
        "run_rate_experiment", options, workload=workload, tracer=tracer,
        recorder=recorder, metrics=metrics, sample_interval=sample_interval,
        faults=faults, guard=guard, audit=audit)
    workload, tracer, recorder = opts.workload, opts.tracer, opts.recorder
    metrics, sample_interval = opts.metrics, opts.sample_interval
    faults, guard, audit = opts.faults, opts.guard, opts.audit

    if workload is not None:
        mismatched = sorted({c.batch_size
                             for c in workload.request_classes()}
                            - {config.batch_size})
        if mismatched:
            raise ValueError(
                f"workload class batch sizes {mismatched} differ from "
                f"config.batch_size={config.batch_size}")
        if offered_rps is None:
            offered_rps = workload.offered_rps()
    if offered_rps is None or offered_rps <= 0:
        raise ValueError("offered_rps must be > 0")
    setup = ServingSetup.build(config, rng_label=f"rate/{offered_rps}",
                               tracer=tracer, guard=guard,
                               recorder=recorder)
    sim = setup.sim

    if duration is None:
        duration = default_rate_duration(config)

    if workload is None:
        setup.add_open_loop(offered_rps, stop_time=duration)
    else:
        setup.add_workload(workload, stop_time=duration)

    injector = None
    if faults is not None and len(faults):
        from repro.faults.injector import FaultInjector
        injector = FaultInjector(setup, faults, metrics=metrics)

    if metrics is not None:
        setup.start_sampler(metrics, sample_interval, stop_time=duration)

    sim.run(until=duration)
    if audit is not None:
        audit(setup, injector)

    faulted = guard is not None or injector is not None
    latencies = []
    completed = 0
    for worker in setup.workers:
        for request in worker.stats.completed:
            if request.completion_time is not None:
                latencies.append(request.latency)  # queueing-inclusive
                completed += 1
    if not latencies and not faulted:
        raise RuntimeError("no requests completed; offered rate too low "
                           "or duration too short")
    resilience = None
    if faulted:
        resilience = setup.resilience_stats(
            window_start=0.0, window_end=duration, injector=injector)
    return RateResult(
        offered_rps=offered_rps,
        achieved_rps=completed * config.batch_size / duration,
        latency=(LatencyStats.from_samples(latencies) if latencies
                 else LatencyStats.empty()),
        queue_residue=sum(len(q) for q in setup.queues),
        resilience=resilience,
    )


def max_sustainable_rate(
    config: ExperimentConfig,
    slo_latency: float,
    low_rps: float,
    high_rps: float,
    iterations: int = 6,
) -> float:
    """Binary-search the highest offered rate whose p95 meets the SLO."""
    if low_rps <= 0 or high_rps <= low_rps:
        raise ValueError("need 0 < low_rps < high_rps")
    best = 0.0
    for _ in range(iterations):
        mid = (low_rps + high_rps) / 2
        result = run_rate_experiment(config, mid)
        if not result.saturated and result.latency.p95 <= slo_latency:
            best = mid
            low_rps = mid
        else:
            high_rps = mid
    return best
