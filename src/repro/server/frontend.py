"""Inference frontend: client load generators.

The paper's evaluation "drives the GPU and inference server at maximum
load", which :class:`ClosedLoopClient` models: a fixed number of
outstanding requests per worker, each completion immediately re-arming a
new request.  :class:`PoissonClient` is an open-loop generator for
rate-driven studies beyond the paper's evaluation.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.server.request import InferenceRequest, RequestQueue
from repro.sim.engine import Simulator
from repro.sim.process import Process

__all__ = ["ClosedLoopClient", "PoissonClient"]


class ClosedLoopClient:
    """Keeps ``concurrency`` requests outstanding until ``stop_time``.

    Wire its :meth:`on_request_complete` as the workers' completion
    callback; each completion enqueues a fresh request, so the server
    never idles (maximum load).
    """

    def __init__(
        self,
        sim: Simulator,
        queue: RequestQueue,
        model_name: str,
        batch_size: int,
        concurrency: int,
        stop_time: float = float("inf"),
        retry_backoff: float = 1e-3,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.sim = sim
        self.queue = queue
        self.model_name = model_name
        self.batch_size = batch_size
        self.stop_time = stop_time
        self.retry_backoff = retry_backoff
        self.issued = 0
        self.rejected = 0
        for _ in range(concurrency):
            self._issue()

    def _issue(self) -> None:
        if self.sim.now >= self.stop_time:
            return
        request = InferenceRequest(
            model_name=self.model_name,
            batch_size=self.batch_size,
            arrival_time=self.sim.now,
        )
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.request_arrival(request)
        if self.queue.offer(request):
            self.issued += 1
        else:
            # Admission-controlled queue is full.  Re-arm after a backoff
            # rather than immediately, or the closed loop would spin at
            # the same timestamp against a queue that cannot drain yet.
            self.rejected += 1
            self.sim.schedule_in(self.retry_backoff, self._issue)

    def on_request_complete(self, request: InferenceRequest) -> None:
        """Worker completion callback: re-arm one request.

        Fault-injected storm requests re-arm nothing — they are one-shot
        extras on top of the closed loop, not part of its concurrency.
        """
        if request.injected:
            return
        self._issue()


class PoissonClient:
    """Open-loop Poisson arrivals at ``rate`` requests per second."""

    def __init__(
        self,
        sim: Simulator,
        queue: RequestQueue,
        model_name: str,
        batch_size: int,
        rate: float,
        rng: np.random.Generator,
        stop_time: float,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.sim = sim
        self.queue = queue
        self.model_name = model_name
        self.batch_size = batch_size
        self.rate = rate
        self.rng = rng
        self.stop_time = stop_time
        self.issued = 0
        self.process = Process(sim, self._run(), name="poisson-client")

    def _run(self) -> Iterator:
        while True:
            gap = float(self.rng.exponential(1.0 / self.rate))
            yield gap
            if self.sim.now >= self.stop_time:
                return
            request = InferenceRequest(
                model_name=self.model_name,
                batch_size=self.batch_size,
                arrival_time=self.sim.now,
            )
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.request_arrival(request)
            # Open loop: an admission-rejected arrival is simply lost
            # (the queue counts it as shed); the next arrival is drawn
            # regardless, preserving the offered rate.
            self.queue.offer(request)
            self.issued += 1
