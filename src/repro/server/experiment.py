"""Co-location experiments at maximum load (the Fig. 13 harness).

:func:`run_experiment` assembles one experiment cell — a device, a
partitioning policy, N workers each closed-loop-driven with one model —
runs it for an auto-sized measurement window, and reports throughput,
tail latency, and energy per inference.  :func:`isolated_baseline` runs
the 1-worker unrestricted reference everything is normalised against
(and that defines the 2x SLO target).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.gpu.cu_mask import CUMask
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.topology import GpuTopology
from repro.models.zoo import get_model
from repro.profiling.model_profiler import run_inference_once
from repro.server.metrics import LatencyStats
from repro.server.options import (
    _UNSET,
    RunOptions,
    reject_unsupported,
    resolve_run_options,
)
from repro.server.slo import ResilienceStats, SloGuard

__all__ = [
    "ExperimentConfig",
    "WorkerResult",
    "ExperimentResult",
    "run_experiment",
    "isolated_baseline",
    "measurement_window",
    "normalized_rps",
    "slo_target",
    "SLO_FACTOR",
]

#: SLO definition shared with prior spatially partitioned servers:
#: 2x the isolated inference tail latency (Section VI-B).
SLO_FACTOR = 2.0


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell.

    ``model_names`` has one entry per worker (repeat a name for N workers
    of the same model; mix names for Fig. 15's pairs).  ``requests_scale``
    stretches the auto-sized measurement window for tighter tails.
    """

    model_names: tuple[str, ...]
    policy: str = "mps-default"
    batch_size: int = 32
    seed: int = 0
    emulated: bool = False
    overlap_limit: Optional[int] = None
    requests_scale: float = 1.0
    #: Ablation knobs: intra-CU interference exponent and the memory
    #: bandwidth budget of the execution model (None = model defaults).
    intra_cu_alpha: Optional[float] = None
    mem_bandwidth_budget: Optional[float] = None
    #: False selects the literal single-pass Algorithm 1 allocation
    #: (ragged masks) instead of the balanced two-pass refinement.
    allocator_reshape: bool = True
    #: Mask-allocation policy for the KRISP policies: ``"krisp"``
    #: (per-kernel Algorithm 1), ``"pooled"`` (ECLIP-style pre-generated
    #: pools), or ``"pooled-contention"`` (pools plus the
    #: memory-interference co-residency bias).  Ignored by the MPS
    #: baselines, which do not allocate per-kernel masks.
    allocation: str = "krisp"
    #: Right-sizing policy: ``"static"`` (perf-DB oracle) or
    #: ``"predictive"`` (online bandwidth/straggler-aware shrinking over
    #: the oracle).
    sizing: str = "static"

    def __post_init__(self) -> None:
        if not self.model_names:
            raise ValueError("at least one worker is required")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.requests_scale <= 0:
            raise ValueError("requests_scale must be > 0")
        from repro.core.pools import ALLOCATION_POLICIES, SIZING_POLICIES
        if self.allocation not in ALLOCATION_POLICIES:
            raise ValueError(
                f"unknown allocation {self.allocation!r}; "
                f"available: {list(ALLOCATION_POLICIES)}")
        if self.sizing not in SIZING_POLICIES:
            raise ValueError(
                f"unknown sizing {self.sizing!r}; "
                f"available: {list(SIZING_POLICIES)}")

    def exec_config(self) -> ExecutionModelConfig:
        """Execution-model configuration with ablation overrides applied."""
        base = ExecutionModelConfig()
        kwargs = {}
        if self.intra_cu_alpha is not None:
            kwargs["intra_cu_alpha"] = self.intra_cu_alpha
        if self.mem_bandwidth_budget is not None:
            kwargs["mem_bandwidth_budget"] = self.mem_bandwidth_budget
        if not kwargs:
            return base
        from dataclasses import replace
        return replace(base, **kwargs)


@dataclass(frozen=True)
class WorkerResult:
    """Measured behaviour of one worker inside the window."""

    model_name: str
    requests_completed: int
    rps: float
    latency: LatencyStats


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregate measurements of one experiment cell."""

    config: ExperimentConfig
    workers: tuple[WorkerResult, ...]
    window: float
    total_rps: float
    energy_joules: float
    energy_per_request: float
    gpu_utilization: float
    #: High-water mark of simultaneously busy CUs over the whole run
    #: (from the Resource Monitor's per-CU kernel counters).
    peak_cu_occupancy: int = 0
    #: Shed/retry/degraded/goodput accounting; ``None`` on an unguarded,
    #: fault-free run (keeping its cached payload byte-stable).
    resilience: Optional[ResilienceStats] = None

    @property
    def goodput_rps(self) -> float:
        """Deadline-met throughput; equals ``total_rps`` when unguarded."""
        if self.resilience is None:
            return self.total_rps
        return self.resilience.goodput_rps

    @property
    def shed_requests(self) -> int:
        """Requests dropped by guard rails (0 when unguarded)."""
        return self.resilience.shed if self.resilience is not None else 0

    def worker_p95(self, index: int) -> float:
        """p95 service latency of one worker, in seconds."""
        return self.workers[index].latency.p95

    def max_p95(self) -> float:
        """Worst worker p95 in the cell."""
        return max(w.latency.p95 for w in self.workers)

    def meets_slo(self) -> bool:
        """Whether every worker meets its model's 2x-isolated SLO."""
        return all(
            w.latency.p95 <= slo_target(w.model_name, self.config.batch_size)
            for w in self.workers
        )


@lru_cache(maxsize=None)
def _isolated_pass_latency(model_name: str, batch_size: int) -> float:
    """Latency of one inference pass alone on the full device."""
    model = get_model(model_name)
    gpu_time = run_inference_once(
        model.trace(batch_size), CUMask.all_cus(GpuTopology.mi50())
    )
    return gpu_time + model.host_gap_total(batch_size)


def measurement_window(config: ExperimentConfig) -> tuple[float, float]:
    """Auto-sized (warmup, measurement end) from the slowest model.

    Public so fault schedules and chaos scenarios can place events
    inside the measured region of a cell they have not run yet.
    """
    base = max(_isolated_pass_latency(name, config.batch_size)
               for name in config.model_names)
    workers = len(config.model_names)
    warmup = max(0.02, 2.0 * base * workers)
    measure = max(0.3, 16.0 * base * workers) * config.requests_scale
    return warmup, warmup + measure


#: Backward-compatible private alias (the pre-rename name).
_window_for = measurement_window


def run_experiment(
    config: ExperimentConfig,
    options: Optional[RunOptions] = None,
    *,
    stats_out: Optional[dict] = None,
    tracer=_UNSET,
    recorder=_UNSET,
    metrics=_UNSET,
    sample_interval=_UNSET,
    faults=_UNSET,
    guard=_UNSET,
    audit=_UNSET,
) -> ExperimentResult:
    """Run one co-location cell and return its measurements.

    Harness options — tracer, recorder, metrics, sample interval, fault
    schedule, SLO guard, post-run audit — travel in a single frozen
    :class:`~repro.server.options.RunOptions` passed as ``options=``.
    The per-keyword spellings are deprecated shims that map into it (and
    cannot be mixed with ``options=``).  ``RunOptions.workload`` is
    rejected: this runner is closed-loop.

    ``stats_out`` (a plain dict) receives engine-level run statistics —
    ``events_executed`` and final ``sim_time`` — for harnesses (the
    bench CLI) that need them; the measurement payload itself stays
    byte-stable.

    ``audit`` (a callable taking ``(setup, injector)``) is invoked once
    after the run completes, with the live :class:`ServingSetup` and the
    :class:`~repro.faults.injector.FaultInjector` (or ``None``), so the
    audit subsystem (:mod:`repro.check`) can inspect end-of-run state —
    queues, workers, device structures — that the result payload does
    not carry.  Observation only: it runs after every measurement is
    already fixed and has no effect on the returned result.

    ``tracer`` (a :class:`repro.obs.Tracer`) records the request/kernel/
    mask-decision timeline; ``recorder`` (a :class:`repro.obs.flight
    .FlightRecorder`) captures per-request flights for latency
    attribution (:mod:`repro.obs.attribution`); ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) receives periodic
    occupancy/load/queue-depth samples every ``sample_interval``
    simulated seconds.  All default to off and add no overhead when
    omitted.

    ``faults`` (a :class:`repro.faults.FaultSchedule`) injects the
    schedule's events during the run; ``guard`` (a :class:`repro.server
    .slo.SloGuard`) enables admission control, deadline shedding, and
    bounded retry.  When either is given the result carries
    :class:`~repro.server.slo.ResilienceStats`; when both are ``None``
    the run is bit-identical to the pre-fault-layer harness.
    """
    from repro.server.setup import ServingSetup

    opts = resolve_run_options(
        "run_experiment", options, tracer=tracer, recorder=recorder,
        metrics=metrics, sample_interval=sample_interval, faults=faults,
        guard=guard, audit=audit)
    reject_unsupported("run_experiment", opts, "workload")
    tracer, recorder, metrics = opts.tracer, opts.recorder, opts.metrics
    sample_interval = opts.sample_interval
    faults, guard, audit = opts.faults, opts.guard, opts.audit

    setup = ServingSetup.build(
        config,
        rng_label=(f"{'-'.join(config.model_names)}/{config.policy}"
                   f"/{config.batch_size}"),
        tracer=tracer,
        guard=guard,
        recorder=recorder,
    )
    sim, device = setup.sim, setup.device

    warmup, end = measurement_window(config)
    for i in range(len(setup.plans)):
        setup.add_closed_loop_worker(i, stop_time=end)

    injector = None
    if faults is not None and len(faults):
        from repro.faults.injector import FaultInjector
        injector = FaultInjector(setup, faults, metrics=metrics)

    if metrics is not None:
        setup.start_sampler(metrics, sample_interval, stop_time=end)

    energy_marks: dict[str, float] = {}

    def snapshot(label: str) -> None:
        device.finalize()
        energy_marks[label] = device.meter.energy_joules

    sim.schedule(warmup, lambda: snapshot("warmup"), priority=-10)
    sim.schedule(end, lambda: snapshot("end"), priority=10)
    sim.run(until=end)
    snapshot("final")
    if stats_out is not None:
        stats_out["events_executed"] = sim.events_executed
        stats_out["batches_drained"] = sim.batches_drained
        stats_out["sim_time"] = sim.now
    if audit is not None:
        audit(setup, injector)

    faulted = guard is not None or injector is not None
    window = end - warmup
    worker_results = []
    total_requests = 0
    for plan, worker in zip(setup.plans, setup.workers):
        latencies = worker.stats.latencies_in(warmup, end)
        completed = worker.stats.completions_in(warmup, end)
        if not latencies and not faulted:
            raise RuntimeError(
                f"worker for {plan.model.name} completed no requests in the "
                f"measurement window; widen requests_scale"
            )
        total_requests += completed
        worker_results.append(WorkerResult(
            model_name=plan.model.name,
            requests_completed=completed,
            rps=completed * plan.batch_size / window,
            latency=(LatencyStats.from_samples(latencies) if latencies
                     else LatencyStats.empty()),
        ))

    resilience = None
    if faulted:
        resilience = setup.resilience_stats(
            window_start=warmup, window_end=end, injector=injector)

    energy = energy_marks["end"] - energy_marks["warmup"]
    return ExperimentResult(
        config=config,
        workers=tuple(worker_results),
        window=window,
        total_rps=sum(w.rps for w in worker_results),
        energy_joules=energy,
        energy_per_request=energy / max(1, total_requests),
        gpu_utilization=device.meter.utilization(sim.now),
        peak_cu_occupancy=device.counters.peak_busy_cus,
        resilience=resilience,
    )


@lru_cache(maxsize=None)
def isolated_baseline(model_name: str, batch_size: int = 32,
                      seed: int = 0) -> ExperimentResult:
    """The 1-worker unrestricted reference cell for ``model_name``.

    Routed through the content-addressed result cache (lazily imported —
    :mod:`repro.exp.cache` depends on this module) so a warm sweep re-run
    does not recompute the normalisation baselines either.
    """
    from repro.exp.cache import cached_run_experiment
    return cached_run_experiment(ExperimentConfig(
        model_names=(model_name,),
        policy="mps-default",
        batch_size=batch_size,
        seed=seed,
    ))


def slo_target(model_name: str, batch_size: int = 32) -> float:
    """SLO latency bound: 2x the isolated p95 (Section VI-B)."""
    return SLO_FACTOR * isolated_baseline(model_name, batch_size).max_p95()


def normalized_rps(result: ExperimentResult) -> float:
    """System throughput in units of isolated single-worker throughput.

    Each worker's RPS is normalised by its own model's isolated RPS and
    the shares are summed — the Fig. 13a/15 y-axis.
    """
    total = 0.0
    for worker in result.workers:
        base = isolated_baseline(worker.model_name,
                                 result.config.batch_size).total_rps
        total += worker.rps / base
    return total
