"""Co-location experiments at maximum load (the Fig. 13 harness).

:func:`run_experiment` assembles one experiment cell — a device, a
partitioning policy, N workers each closed-loop-driven with one model —
runs it for an auto-sized measurement window, and reports throughput,
tail latency, and energy per inference.  :func:`isolated_baseline` runs
the 1-worker unrestricted reference everything is normalised against
(and that defines the 2x SLO target).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.topology import GpuTopology
from repro.models.zoo import get_model
from repro.profiling.model_profiler import run_inference_once
from repro.server.frontend import ClosedLoopClient
from repro.server.metrics import LatencyStats
from repro.server.policies import WorkerPlan, get_policy
from repro.server.request import RequestQueue
from repro.server.worker import HostCostModel, Worker
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

__all__ = [
    "ExperimentConfig",
    "WorkerResult",
    "ExperimentResult",
    "run_experiment",
    "isolated_baseline",
    "slo_target",
]

#: SLO definition shared with prior spatially partitioned servers:
#: 2x the isolated inference tail latency (Section VI-B).
SLO_FACTOR = 2.0


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell.

    ``model_names`` has one entry per worker (repeat a name for N workers
    of the same model; mix names for Fig. 15's pairs).  ``requests_scale``
    stretches the auto-sized measurement window for tighter tails.
    """

    model_names: tuple[str, ...]
    policy: str = "mps-default"
    batch_size: int = 32
    seed: int = 0
    emulated: bool = False
    overlap_limit: Optional[int] = None
    requests_scale: float = 1.0
    #: Ablation knobs: intra-CU interference exponent and the memory
    #: bandwidth budget of the execution model (None = model defaults).
    intra_cu_alpha: Optional[float] = None
    mem_bandwidth_budget: Optional[float] = None
    #: False selects the literal single-pass Algorithm 1 allocation
    #: (ragged masks) instead of the balanced two-pass refinement.
    allocator_reshape: bool = True

    def __post_init__(self) -> None:
        if not self.model_names:
            raise ValueError("at least one worker is required")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.requests_scale <= 0:
            raise ValueError("requests_scale must be > 0")

    def exec_config(self) -> ExecutionModelConfig:
        """Execution-model configuration with ablation overrides applied."""
        base = ExecutionModelConfig()
        kwargs = {}
        if self.intra_cu_alpha is not None:
            kwargs["intra_cu_alpha"] = self.intra_cu_alpha
        if self.mem_bandwidth_budget is not None:
            kwargs["mem_bandwidth_budget"] = self.mem_bandwidth_budget
        if not kwargs:
            return base
        from dataclasses import replace
        return replace(base, **kwargs)


@dataclass(frozen=True)
class WorkerResult:
    """Measured behaviour of one worker inside the window."""

    model_name: str
    requests_completed: int
    rps: float
    latency: LatencyStats


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregate measurements of one experiment cell."""

    config: ExperimentConfig
    workers: tuple[WorkerResult, ...]
    window: float
    total_rps: float
    energy_joules: float
    energy_per_request: float
    gpu_utilization: float
    #: High-water mark of simultaneously busy CUs over the whole run
    #: (from the Resource Monitor's per-CU kernel counters).
    peak_cu_occupancy: int = 0

    def worker_p95(self, index: int) -> float:
        """p95 service latency of one worker, in seconds."""
        return self.workers[index].latency.p95

    def max_p95(self) -> float:
        """Worst worker p95 in the cell."""
        return max(w.latency.p95 for w in self.workers)

    def meets_slo(self) -> bool:
        """Whether every worker meets its model's 2x-isolated SLO."""
        return all(
            w.latency.p95 <= slo_target(w.model_name, self.config.batch_size)
            for w in self.workers
        )


@lru_cache(maxsize=None)
def _isolated_pass_latency(model_name: str, batch_size: int) -> float:
    """Latency of one inference pass alone on the full device."""
    model = get_model(model_name)
    gpu_time = run_inference_once(
        model.trace(batch_size), CUMask.all_cus(GpuTopology.mi50())
    )
    return gpu_time + model.host_gap_total(batch_size)


def _window_for(config: ExperimentConfig) -> tuple[float, float]:
    """Auto-size (warmup, measurement end) from the slowest model."""
    base = max(_isolated_pass_latency(name, config.batch_size)
               for name in config.model_names)
    workers = len(config.model_names)
    warmup = max(0.02, 2.0 * base * workers)
    measure = max(0.3, 16.0 * base * workers) * config.requests_scale
    return warmup, warmup + measure


def run_experiment(
    config: ExperimentConfig,
    *,
    tracer=None,
    metrics=None,
    sample_interval: float = 250e-6,
) -> ExperimentResult:
    """Run one co-location cell and return its measurements.

    ``tracer`` (a :class:`repro.obs.Tracer`) records the request/kernel/
    mask-decision timeline; ``metrics`` (a :class:`repro.obs.MetricsRegistry`)
    receives periodic occupancy/load/queue-depth samples every
    ``sample_interval`` simulated seconds.  Both default to off and add no
    overhead when omitted.
    """
    topology = GpuTopology.mi50()
    sim = Simulator(tracer=tracer)
    device = GpuDevice(sim, topology, exec_config=config.exec_config())
    rng = RngRegistry(config.seed).fork(
        f"{'-'.join(config.model_names)}/{config.policy}/{config.batch_size}"
    )
    plans = [WorkerPlan(get_model(name), config.batch_size)
             for name in config.model_names]
    policy = get_policy(config.policy, emulated=config.emulated,
                        overlap_limit=config.overlap_limit,
                        reshape=config.allocator_reshape)
    streams = policy.setup(sim, device, plans)

    warmup, end = _window_for(config)
    workers: list[Worker] = []
    queues: list[RequestQueue] = []
    for i, (plan, stream) in enumerate(zip(plans, streams)):
        queue = RequestQueue(sim, name=f"q{i}")
        queues.append(queue)
        client = ClosedLoopClient(
            sim, queue, plan.model.name, plan.batch_size,
            concurrency=1, stop_time=end,
        )
        workers.append(Worker(
            sim,
            name=f"worker-{i}",
            stream=stream,
            segments=plan.model.segments(plan.batch_size, topology),
            queue=queue,
            rng=rng.stream(f"host-{i}"),
            host_costs=HostCostModel(),
            stop_time=end,
            on_complete=client.on_request_complete,
        ))

    if metrics is not None:
        from repro.obs.sampler import SimSampler
        sampler = SimSampler(sim, device, metrics, queues=queues,
                             interval=sample_interval)
        sampler.start(stop_time=end)

    energy_marks: dict[str, float] = {}

    def snapshot(label: str) -> None:
        device.finalize()
        energy_marks[label] = device.meter.energy_joules

    sim.schedule(warmup, lambda: snapshot("warmup"), priority=-10)
    sim.schedule(end, lambda: snapshot("end"), priority=10)
    sim.run(until=end)
    snapshot("final")

    window = end - warmup
    worker_results = []
    total_requests = 0
    for plan, worker in zip(plans, workers):
        latencies = worker.stats.latencies_in(warmup, end)
        completed = worker.stats.completions_in(warmup, end)
        if not latencies:
            raise RuntimeError(
                f"worker for {plan.model.name} completed no requests in the "
                f"measurement window; widen requests_scale"
            )
        total_requests += completed
        worker_results.append(WorkerResult(
            model_name=plan.model.name,
            requests_completed=completed,
            rps=completed * plan.batch_size / window,
            latency=LatencyStats.from_samples(latencies),
        ))

    energy = energy_marks["end"] - energy_marks["warmup"]
    return ExperimentResult(
        config=config,
        workers=tuple(worker_results),
        window=window,
        total_rps=sum(w.rps for w in worker_results),
        energy_joules=energy,
        energy_per_request=energy / max(1, total_requests),
        gpu_utilization=device.meter.utilization(sim.now),
        peak_cu_occupancy=device.counters.peak_busy_cus,
    )


@lru_cache(maxsize=None)
def isolated_baseline(model_name: str, batch_size: int = 32,
                      seed: int = 0) -> ExperimentResult:
    """The 1-worker unrestricted reference cell for ``model_name``.

    Routed through the content-addressed result cache (lazily imported —
    :mod:`repro.exp.cache` depends on this module) so a warm sweep re-run
    does not recompute the normalisation baselines either.
    """
    from repro.exp.cache import cached_run_experiment
    return cached_run_experiment(ExperimentConfig(
        model_names=(model_name,),
        policy="mps-default",
        batch_size=batch_size,
        seed=seed,
    ))


def slo_target(model_name: str, batch_size: int = 32) -> float:
    """SLO latency bound: 2x the isolated p95 (Section VI-B)."""
    return SLO_FACTOR * isolated_baseline(model_name, batch_size).max_p95()


def normalized_rps(result: ExperimentResult) -> float:
    """System throughput in units of isolated single-worker throughput.

    Each worker's RPS is normalised by its own model's isolated RPS and
    the shares are summed — the Fig. 13a/15 y-axis.
    """
    total = 0.0
    for worker in result.workers:
        base = isolated_baseline(worker.model_name,
                                 result.config.batch_size).total_rps
        total += worker.rps / base
    return total
