"""Dynamic request batching (the inference-frontend half the paper's
server performs before workers see a batch).

Clients submit *single* inference requests; the batcher coalesces them
into batch requests of up to ``max_batch_size``, flushing early when the
oldest queued request has waited ``max_delay`` — the standard
TorchServe/Triton-style policy.  Workers then consume whole batches from
the downstream :class:`~repro.server.request.RequestQueue`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.server.request import InferenceRequest, RequestQueue
from repro.sim.engine import Event, Simulator

__all__ = ["SingleRequest", "DynamicBatcher"]

_single_ids = itertools.count()


@dataclass
class SingleRequest:
    """One client request before batching."""

    model_name: str
    arrival_time: float
    request_id: int = field(default_factory=lambda: next(_single_ids))
    batch_request: Optional[InferenceRequest] = None

    @property
    def latency(self) -> float:
        """End-to-end latency including batching delay, in seconds."""
        if self.batch_request is None or \
                self.batch_request.completion_time is None:
            raise ValueError(f"request {self.request_id} not completed")
        return self.batch_request.completion_time - self.arrival_time


class DynamicBatcher:
    """Coalesces single requests into batches for one model."""

    def __init__(
        self,
        sim: Simulator,
        downstream: RequestQueue,
        model_name: str,
        max_batch_size: int = 32,
        max_delay: float = 5e-3,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.sim = sim
        self.downstream = downstream
        self.model_name = model_name
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay
        self.batches_emitted = 0
        self.requests_accepted = 0
        self._pending: list[SingleRequest] = []
        self._flush_event: Optional[Event] = None

    def submit(self, request: SingleRequest) -> None:
        """Accept one client request."""
        if request.model_name != self.model_name:
            raise ValueError(
                f"batcher for {self.model_name} got a request for "
                f"{request.model_name}"
            )
        self._pending.append(request)
        self.requests_accepted += 1
        if len(self._pending) >= self.max_batch_size:
            self._flush()
        elif self._flush_event is None:
            self._flush_event = self.sim.schedule_in(
                self.max_delay, self._flush)

    def _flush(self) -> None:
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        if not self._pending:
            return
        batch, self._pending = (self._pending[:self.max_batch_size],
                                self._pending[self.max_batch_size:])
        batch_request = InferenceRequest(
            model_name=self.model_name,
            batch_size=len(batch),
            arrival_time=batch[0].arrival_time,
        )
        for single in batch:
            single.batch_request = batch_request
        self.downstream.put(batch_request)
        self.batches_emitted += 1
        if self._pending:
            # Requests left over from an oversized burst restart the clock.
            self._flush_event = self.sim.schedule_in(
                self.max_delay, self._flush)

    @property
    def pending(self) -> int:
        """Requests waiting to be batched."""
        return len(self._pending)
