"""Inference requests and the shared request queue.

The paper's server stores request data in shared-memory queues between
the gRPC frontend and the workers; here the queue is a simulated FIFO
with signal-based blocking so workers can wait for work without polling.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.process import Signal

__all__ = ["InferenceRequest", "RequestQueue"]

_request_ids = itertools.count()


@dataclass
class InferenceRequest:
    """One client inference request batch."""

    model_name: str
    batch_size: int
    arrival_time: float
    request_id: int = field(default_factory=lambda: next(_request_ids))
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    #: Re-queue count after worker crashes (bounded by SloGuard.max_retries).
    retries: int = 0
    #: True for fault-injected storm requests, which must not re-arm a
    #: closed-loop client's issue loop on completion.
    injected: bool = False
    #: Set when the request was dropped by a guard rail instead of served.
    shed: bool = False
    #: Decode tokens to emit, for LLM-phase models with variable output
    #: lengths; ``None`` uses the model's default (and is the only value
    #: non-LLM requests carry).
    output_tokens: Optional[int] = None

    @property
    def latency(self) -> float:
        """End-to-end latency (arrival to response), in seconds."""
        if self.completion_time is None:
            raise ValueError(f"request {self.request_id} not completed")
        return self.completion_time - self.arrival_time

    @property
    def service_latency(self) -> float:
        """Processing latency (dispatch to response), in seconds.

        Under closed-loop max-load driving, this is the inference latency
        the paper's SLO analysis bounds (queueing to a saturated server is
        unbounded by construction).
        """
        if self.completion_time is None or self.start_time is None:
            raise ValueError(f"request {self.request_id} not completed")
        return self.completion_time - self.start_time


class RequestQueue:
    """FIFO of pending requests with blocking dequeue.

    ``max_depth`` bounds the backlog for admission control: :meth:`offer`
    rejects (returns ``False``) when the queue is full, counting the
    rejection in ``shed``.  The default (``None``) keeps the historical
    unbounded behaviour, and :meth:`put` always enqueues regardless of
    depth (retries and storm injection bypass admission).
    """

    def __init__(self, sim: Simulator, name: str = "requests",
                 max_depth: Optional[int] = None) -> None:
        self.sim = sim
        self.name = name
        self.max_depth = max_depth
        self._pending: deque[InferenceRequest] = deque()
        self._waiters: deque[Signal] = deque()
        self.enqueued = 0
        self.shed = 0

    def put(self, request: InferenceRequest) -> None:
        """Enqueue a request, waking one blocked worker if any."""
        self._pending.append(request)
        self.enqueued += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.request_enqueued(request, self.name)
            tracer.queue_depth(self.name, len(self._pending))
        if self._waiters:
            self._waiters.popleft().fire(None)

    def offer(self, request: InferenceRequest) -> bool:
        """Enqueue unless the queue is at ``max_depth``.

        Returns ``True`` on admission.  A rejected request is marked
        ``shed`` and counted; the caller owns any further accounting.
        """
        if self.max_depth is not None and len(self._pending) >= self.max_depth:
            self.shed += 1
            request.shed = True
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.request_shed(request, "admission")
            return False
        self.put(request)
        return True

    def get_signal(self) -> Signal:
        """Signal that fires once a request is (or becomes) available.

        Usage from a worker process::

            yield queue.get_signal()
            request = queue.pop()
        """
        signal = Signal(self.sim, name=f"{self.name}.wait")
        if self._pending:
            signal.fire(None)
        else:
            self._waiters.append(signal)
        return signal

    def pop(self) -> InferenceRequest:
        """Dequeue the oldest pending request."""
        if not self._pending:
            raise IndexError("pop from empty request queue")
        request = self._pending.popleft()
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.queue_depth(self.name, len(self._pending))
        return request

    def __len__(self) -> int:
        return len(self._pending)
