"""Cached offline profiling inputs for server policies.

Model-wise right-sizes (the Model Right-Size policy's input) and kernel
performance databases (KRISP's input) are offline profiling products.
Both are deterministic functions of the model zoo and the timing model,
so they are memoised in-process; right-sizes — the only expensive sweep —
are additionally persisted through the :class:`~repro.exp.cache
.JsonStore` on disk (the analogue of the paper's install-time profiling
databases).  Corrupt cache files are treated as misses and recomputed.

Set ``REPRO_CACHE_DIR`` to relocate the on-disk cache; delete the file to
force re-profiling.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.perfdb import PerfDatabase
from repro.models.zoo import get_model
from repro.profiling.kernel_profiler import KernelProfiler, build_database
from repro.profiling.model_profiler import profile_model

__all__ = ["combined_database", "model_database", "model_right_size"]

_RIGHTSIZE_TOLERANCE = 0.05


def _store():
    """The right-size store (re-resolves ``REPRO_CACHE_DIR`` per call)."""
    from repro.exp.cache import JsonStore, cache_root
    return JsonStore(cache_root() / "rightsize.json")


@lru_cache(maxsize=None)
def model_right_size(model_name: str, batch_size: int = 32) -> int:
    """Profiled model-wise right-size (kneepoint) in CUs.

    This is the quantity every prior-work policy in Table II profiles
    offline; it is cached on disk because the sweep runs dozens of full
    inference passes.
    """
    key = f"{model_name}|{batch_size}|{_RIGHTSIZE_TOLERANCE}"
    store = _store()
    cached = store.get(key)
    if cached is not None:
        try:
            return int(cached)
        except (TypeError, ValueError):
            pass  # corrupt value: fall through and re-profile
    sensitivity = profile_model(
        get_model(model_name),
        batch_size=batch_size,
        cu_counts=range(2, 61),
        tolerance=_RIGHTSIZE_TOLERANCE,
    )
    store.put(key, sensitivity.right_size)
    return sensitivity.right_size


@lru_cache(maxsize=None)
def model_database(model_name: str, batch_size: int = 32,
                   tolerance: float = 0.05) -> PerfDatabase:
    """Kernel performance database for one model at one batch size.

    Cheap (analytic profiling), so memoised in-process only.
    """
    profiler = KernelProfiler(tolerance=tolerance)
    return build_database(get_model(model_name).trace(batch_size), profiler)


def combined_database(model_names: tuple[str, ...],
                      batch_size: int = 32) -> PerfDatabase:
    """Merged database covering every kernel of the given models."""
    merged = PerfDatabase()
    for name in model_names:
        merged.merge(model_database(name, batch_size))
    return merged
