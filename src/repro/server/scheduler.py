"""Multi-model frontend scheduler.

The paper's inference frontend accepts requests for many models and
hands them to per-model workers through shared queues.  This module is
that routing layer: one :class:`FrontendScheduler` owns a
:class:`~repro.server.batching.DynamicBatcher` and a downstream request
queue per served model, routes incoming single requests by model name,
and tracks per-model arrival statistics.

It deliberately stays policy-free about *GPU* resources — spatial
partitioning is the job of :mod:`repro.server.policies`; the scheduler
only decides which worker queue a request lands in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.server.batching import DynamicBatcher, SingleRequest
from repro.server.request import RequestQueue
from repro.sim.engine import Simulator

__all__ = ["ModelEndpoint", "FrontendScheduler"]


@dataclass
class ModelEndpoint:
    """The per-model serving plumbing the scheduler routes into."""

    model_name: str
    batcher: DynamicBatcher
    queue: RequestQueue
    requests_routed: int = 0


class FrontendScheduler:
    """Routes client requests to per-model batchers and queues."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._endpoints: dict[str, ModelEndpoint] = {}
        self.rejected = 0

    def register_model(
        self,
        model_name: str,
        max_batch_size: int = 32,
        max_delay: float = 5e-3,
    ) -> ModelEndpoint:
        """Create the batcher + queue pair for one served model."""
        if model_name in self._endpoints:
            raise ValueError(f"model {model_name!r} already registered")
        queue = RequestQueue(self.sim, name=f"{model_name}.queue")
        batcher = DynamicBatcher(self.sim, queue, model_name,
                                 max_batch_size=max_batch_size,
                                 max_delay=max_delay)
        endpoint = ModelEndpoint(model_name, batcher, queue)
        self._endpoints[model_name] = endpoint
        return endpoint

    def endpoint(self, model_name: str) -> ModelEndpoint:
        """The endpoint serving ``model_name``."""
        return self._endpoints[model_name]

    @property
    def model_names(self) -> tuple[str, ...]:
        """Registered model names, in registration order."""
        return tuple(self._endpoints)

    def submit(self, request: SingleRequest) -> bool:
        """Route one client request; returns False when the model is not
        served (the request is rejected, mirroring a 404 from the
        frontend)."""
        endpoint = self._endpoints.get(request.model_name)
        if endpoint is None:
            self.rejected += 1
            return False
        endpoint.batcher.submit(request)
        endpoint.requests_routed += 1
        return True
