"""Deterministic fault injection for the serving stack.

KRISP's pitch is that kernel-scoped partitions recover from change in
microseconds rather than epoch-long reloads (paper Fig. 2, Section III)
— a claim that can only be demonstrated by *injecting* the change.  This
package provides the change: a seeded, fully deterministic
:class:`~repro.faults.schedule.FaultSchedule` of worker crashes (with
:class:`~repro.faults.schedule.ReloadCostModel` restart costs), kernel
straggler windows, memory-bandwidth pressure spikes, request-burst
storms, and perf-DB dropout, plus the
:class:`~repro.faults.injector.FaultInjector` that drives a schedule off
the sim clock into a live experiment cell.

Faults compose with the SLO guard rails of :mod:`repro.server.slo`
(admission control, deadline shedding, bounded retry) and every injected
event is observable through the tracer and metrics registry of
:mod:`repro.obs`.
Schedules serialise to JSON-native dicts so they participate in the
content-addressed result-cache key: a fault-injected cell is exactly as
cacheable and as reproducible as a fault-free one.
"""

from repro.faults.schedule import (
    BandwidthSpike,
    FaultEvent,
    FaultSchedule,
    KernelStraggler,
    NodeCrash,
    PerfDbDropout,
    ReloadCostModel,
    RequestStorm,
    WorkerCrash,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "BandwidthSpike",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "KernelStraggler",
    "NodeCrash",
    "PerfDbDropout",
    "ReloadCostModel",
    "RequestStorm",
    "WorkerCrash",
]
