"""Drives a :class:`~repro.faults.schedule.FaultSchedule` into a live cell.

The injector arms every schedule event on the simulator clock at
construction; thereafter the events fire interleaved with normal serving.
Injection is purely deterministic — times and victims come from the
schedule, perf-DB dropout victims from its seed — so a fault-injected
run replays bit-identically across serial, pooled, and cached execution.

Crash handling implements the bounded-retry guard rail: a request caught
in flight on a crashed worker is re-queued after an exponential backoff
(``guard.retry_backoff * 2**(retries-1)``) at most ``guard.max_retries``
times, then shed.  Restarts pay the schedule's
:class:`~repro.faults.schedule.ReloadCostModel` cost scaled by the
worker's kernel count.

Every event is emitted through the tracer (``fault_injected`` instants
and ``fault_window`` spans on a dedicated ``faults`` timeline row) and,
when a registry is attached, counted in ``faults_injected_total`` /
``requests_retried_total`` / ``requests_shed_total`` metrics.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.schedule import (
    BandwidthSpike,
    FaultSchedule,
    KernelStraggler,
    NodeCrash,
    PerfDbDropout,
    RequestStorm,
    WorkerCrash,
    event_kind,
)
from repro.server.request import InferenceRequest
from repro.server.slo import SloGuard

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms one fault schedule against one :class:`ServingSetup`."""

    def __init__(self, setup, schedule: FaultSchedule,
                 metrics=None) -> None:
        self.setup = setup
        self.schedule = schedule
        self.metrics = metrics
        self.guard = setup.guard if setup.guard is not None else SloGuard()
        self.injected = 0
        self.retried = 0
        self.shed_retries = 0
        self._arm()

    # -- arming -------------------------------------------------------------
    def _arm(self) -> None:
        sim = self.setup.sim
        for event in self.schedule.sorted_events():
            if isinstance(event, WorkerCrash):
                sim.schedule(event.time,
                             lambda e=event: self._crash(e))
            elif isinstance(event, KernelStraggler):
                sim.schedule(event.start,
                             lambda e=event: self._straggle_start(e))
                sim.schedule(event.start + event.duration,
                             lambda e=event: self._straggle_end(e))
            elif isinstance(event, BandwidthSpike):
                sim.schedule(event.start,
                             lambda e=event: self._spike_start(e))
                sim.schedule(event.start + event.duration,
                             lambda e=event: self._spike_end(e))
            elif isinstance(event, RequestStorm):
                self._arm_storm(event)
            elif isinstance(event, PerfDbDropout):
                sim.schedule(event.time,
                             lambda e=event: self._dropout(e))
            elif isinstance(event, NodeCrash):
                sim.schedule(event.time,
                             lambda e=event: self._node_crash(e))

    def _record(self, event, args: dict) -> None:
        self.injected += 1
        tracer = self.setup.sim.tracer
        if tracer.enabled:
            tracer.fault_injected(event_kind(event), args)
        if self.metrics is not None:
            self.metrics.counter("faults_injected_total",
                                 "Fault-schedule events injected",
                                 kind=event_kind(event)).inc()

    # -- worker crash + bounded retry ---------------------------------------
    def _crash(self, event: WorkerCrash) -> None:
        workers = self.setup.workers
        if not workers:
            return
        worker = workers[event.worker % len(workers)]
        orphan = worker.crash()
        self._record(event, {"worker": worker.name,
                             "restart": event.restart})
        if orphan is not None:
            self._retry(orphan, worker)
        if event.restart:
            reload_time = self.schedule.reload.reload_time(
                worker.kernel_count)
            self.setup.sim.schedule_in(reload_time, worker.restart)

    def _node_crash(self, event: NodeCrash) -> None:
        """Whole-node crash on a single-device setup: this setup *is*
        node 0, so every worker dies at once and the node restarts after
        one shared reload (workers reload in parallel).  Fleet runs route
        ``NodeCrash`` through the cluster fault driver instead."""
        workers = self.setup.workers
        if not workers:
            return
        self._record(event, {"node": event.node,
                             "restart": event.restart})
        orphans = []
        for worker in workers:
            orphan = worker.crash()
            if orphan is not None:
                orphans.append((orphan, worker))
        for orphan, worker in orphans:
            self._retry(orphan, worker)
        if event.restart:
            reload_time = self.schedule.reload.reload_time(
                max(worker.kernel_count for worker in workers))
            for worker in workers:
                self.setup.sim.schedule_in(reload_time, worker.restart)

    def _retry(self, request: InferenceRequest, worker) -> None:
        guard = self.guard
        tracer = self.setup.sim.tracer
        if request.retries >= guard.max_retries:
            self.shed_retries += 1
            request.shed = True
            if tracer.enabled:
                tracer.request_shed(request, "retries")
            if self.metrics is not None:
                self.metrics.counter("requests_shed_total",
                                     "Requests dropped by guard rails",
                                     reason="retries").inc()
            # Tell the loop the slot is free, same contract as worker
            # shedding (the request carries ``shed``).
            if worker.on_complete is not None:
                worker.on_complete(request)
            return
        request.retries += 1
        self.retried += 1
        backoff = guard.retry_backoff * (2.0 ** (request.retries - 1))
        if tracer.enabled:
            tracer.request_requeued(request, worker.name)
        if self.metrics is not None:
            self.metrics.counter("requests_retried_total",
                                 "Requests re-queued after crashes").inc()
        # Bypass admission: the request was already admitted once.
        self.setup.sim.schedule_in(
            backoff, lambda: worker.queue.put(request))

    # -- straggler windows --------------------------------------------------
    def _straggle_start(self, event: KernelStraggler) -> None:
        self.setup.device.set_fault_latency_scale(event.multiplier,
                                                  tag=event.tag)
        self._record(event, {"multiplier": event.multiplier,
                             "tag": event.tag or "*",
                             "duration": event.duration})
        tracer = self.setup.sim.tracer
        if tracer.enabled:
            tracer.fault_window("kernel_straggler", event.start,
                                event.start + event.duration,
                                {"multiplier": event.multiplier})

    def _straggle_end(self, event: KernelStraggler) -> None:
        self.setup.device.set_fault_latency_scale(1.0, tag=event.tag)

    # -- bandwidth spikes ---------------------------------------------------
    def _spike_start(self, event: BandwidthSpike) -> None:
        self.setup.device.add_fault_bandwidth_demand(event.demand)
        self._record(event, {"demand": event.demand,
                             "duration": event.duration})
        tracer = self.setup.sim.tracer
        if tracer.enabled:
            tracer.fault_window("bandwidth_spike", event.start,
                                event.start + event.duration,
                                {"demand": event.demand})

    def _spike_end(self, event: BandwidthSpike) -> None:
        self.setup.device.add_fault_bandwidth_demand(-event.demand)

    # -- request storms -----------------------------------------------------
    def _arm_storm(self, event: RequestStorm) -> None:
        # Evenly spaced injection times (deterministic, no RNG state):
        # the storm's shape is data, its pressure is what matters.
        sim = self.setup.sim
        sim.schedule(event.start, lambda e=event: self._storm_started(e))
        for j in range(event.count):
            offset = event.duration * (j + 1) / (event.count + 1)
            sim.schedule(event.start + offset, self._storm_request)

    def _storm_started(self, event: RequestStorm) -> None:
        self._record(event, {"count": event.count,
                             "duration": event.duration})
        tracer = self.setup.sim.tracer
        if tracer.enabled:
            tracer.fault_window("request_storm", event.start,
                                event.start + event.duration,
                                {"count": event.count})

    def _storm_request(self) -> None:
        # One injected request per queue, through admission control —
        # storms are exactly the burst the admission guard exists for.
        setup = self.setup
        for queue in setup.queues:
            model_name, batch = setup.queue_models[id(queue)]
            request = InferenceRequest(
                model_name=model_name,
                batch_size=batch,
                arrival_time=setup.sim.now,
                injected=True,
            )
            tracer = setup.sim.tracer
            if tracer.enabled:
                tracer.request_arrival(request)
            queue.offer(request)

    # -- perf-DB dropout ----------------------------------------------------
    def _dropout(self, event: PerfDbDropout) -> None:
        dropped = 0
        taken = []
        seen: set[int] = set()
        for stream in self.setup.streams:
            sizer = getattr(stream, "rightsizer", None) \
                or getattr(stream, "sizer", None)
            database = getattr(sizer, "database", None)
            if database is None or id(database) in seen:
                continue
            seen.add(id(database))
            entries = database.take_fraction(event.fraction,
                                             seed=self.schedule.seed)
            dropped += len(entries)
            if entries:
                taken.append((database, entries))
        # A bounded outage restores the taken entries when the window
        # closes (silent end, like straggler/spike windows — only the
        # start counts as an injection).
        if event.duration > 0.0 and taken:
            self.setup.sim.schedule(
                event.time + event.duration,
                lambda entries=taken: self._dropout_end(entries))
        self._record(event, {"fraction": event.fraction,
                             "entries_dropped": dropped})

    def _dropout_end(self, taken) -> None:
        for database, entries in taken:
            database.restore(entries)
