"""Fault schedules: typed, frozen, seed-deterministic fault timelines.

A :class:`FaultSchedule` is an ordered tuple of frozen fault events with
absolute simulated times.  Schedules are *data*: they hash, they pickle
across the sweep process pool, and they serialise to JSON-native dicts
(:meth:`FaultSchedule.to_dict`) so the content-addressed result cache can
fold them into its key — a fault-injected cell is exactly as cacheable as
a fault-free one.

Event kinds:

* :class:`WorkerCrash` — a worker dies at ``time``; its in-flight request
  is re-queued (bounded retry, see :mod:`repro.server.slo`) and the
  worker restarts after the :class:`ReloadCostModel` reload cost unless
  ``restart=False``.
* :class:`KernelStraggler` — kernels run ``multiplier`` times slower in
  ``[start, start + duration)``; ``tag`` limits the slowdown to one
  worker's stream.
* :class:`BandwidthSpike` — an external agent (another tenant, a
  migration) consumes ``demand`` budget-units of memory bandwidth for
  ``duration`` seconds, throttling resident memory-bound kernels.
* :class:`RequestStorm` — ``count`` one-shot requests per queue injected
  uniformly over ``[start, start + duration)``, on top of the configured
  load (the burst the admission controller exists for).
* :class:`PerfDbDropout` — at ``time``, a deterministic ``fraction`` of
  every serving perf-DB's entries vanish (chosen by the schedule's
  ``seed``), forcing the right-sizer onto its degraded fallback path.

:meth:`FaultSchedule.generate` samples a randomized-but-deterministic
schedule from a seed; hand-built schedules compose the event dataclasses
directly.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Optional, Union

import numpy as np

__all__ = [
    "BandwidthSpike",
    "FaultEvent",
    "FaultSchedule",
    "KernelStraggler",
    "NodeCrash",
    "PerfDbDropout",
    "ReloadCostModel",
    "RequestStorm",
    "WorkerCrash",
]


@dataclass(frozen=True)
class ReloadCostModel:
    """Restart cost of a crashed worker.

    A restarted worker must re-initialise its framework context and
    reload model state before serving again — the (scaled-down) analogue
    of the multi-second reloads of Table II.  The cost grows with model
    size via the kernel count.
    """

    base: float = 20e-3
    per_kernel: float = 100e-6

    def __post_init__(self) -> None:
        if self.base < 0 or self.per_kernel < 0:
            raise ValueError("reload costs must be >= 0")

    def reload_time(self, kernel_count: int) -> float:
        """Seconds between crash and the worker serving again."""
        return self.base + self.per_kernel * kernel_count


@dataclass(frozen=True)
class WorkerCrash:
    """Worker ``worker`` crashes at ``time`` (restarts unless told not to)."""

    time: float
    worker: int
    restart: bool = True

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be >= 0")
        if self.worker < 0:
            raise ValueError("worker index must be >= 0")


@dataclass(frozen=True)
class KernelStraggler:
    """Kernels run ``multiplier``x slower during the window.

    ``tag=None`` slows the whole device; a worker name limits the
    straggling to that worker's kernels.
    """

    start: float
    duration: float
    multiplier: float = 4.0
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("need start >= 0 and duration > 0")
        if self.multiplier <= 1.0:
            raise ValueError("straggler multiplier must be > 1")


@dataclass(frozen=True)
class BandwidthSpike:
    """External memory-bandwidth pressure of ``demand`` budget units."""

    start: float
    duration: float
    demand: float = 1.0

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("need start >= 0 and duration > 0")
        if self.demand <= 0:
            raise ValueError("spike demand must be > 0")


@dataclass(frozen=True)
class RequestStorm:
    """``count`` extra one-shot requests per queue over the window."""

    start: float
    duration: float
    count: int = 32

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("need start >= 0 and duration > 0")
        if self.count < 1:
            raise ValueError("storm count must be >= 1")


@dataclass(frozen=True)
class PerfDbDropout:
    """A ``fraction`` of perf-DB entries vanish at ``time``.

    ``duration > 0`` bounds the outage: the dropped entries are restored
    ``duration`` seconds later (the transient-corruption / failed-reload
    case), and the right-sizer recovers its database answers.  The
    default ``duration=0`` keeps the historical permanent dropout.
    """

    time: float
    fraction: float = 0.25
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("dropout time must be >= 0")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.duration < 0:
            raise ValueError("dropout duration must be >= 0")


@dataclass(frozen=True)
class NodeCrash:
    """Fleet node ``node`` crashes whole at ``time``.

    The node-level generalisation of :class:`WorkerCrash`: every worker
    on the device dies at once, pending queue entries are re-routed
    (cluster runs route them to surviving nodes through the router;
    single-device runs bounded-retry them locally), and the node — all
    its workers — restarts after one :class:`ReloadCostModel` reload
    unless ``restart=False``.
    """

    time: float
    node: int = 0
    restart: bool = True

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be >= 0")
        if self.node < 0:
            raise ValueError("node index must be >= 0")


FaultEvent = Union[
    WorkerCrash, KernelStraggler, BandwidthSpike, RequestStorm,
    PerfDbDropout, NodeCrash,
]

#: Stable kind tags for (de)serialisation, in a fixed registry order.
_EVENT_KINDS: dict[str, type] = {
    "worker_crash": WorkerCrash,
    "kernel_straggler": KernelStraggler,
    "bandwidth_spike": BandwidthSpike,
    "request_storm": RequestStorm,
    "perfdb_dropout": PerfDbDropout,
    "node_crash": NodeCrash,
}
_KIND_OF = {cls: kind for kind, cls in _EVENT_KINDS.items()}


def event_kind(event: FaultEvent) -> str:
    """Stable kind tag of one event (``worker_crash``, ...)."""
    return _KIND_OF[type(event)]


def event_time(event: FaultEvent) -> float:
    """Injection time of one event on the sim clock."""
    return event.start if hasattr(event, "start") else event.time


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, hashable timeline of fault events.

    ``seed`` drives every stochastic choice *inside* injection (which
    perf-DB entries drop); the event times themselves are plain data.
    ``reload`` prices worker restarts.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0
    reload: ReloadCostModel = ReloadCostModel()

    def __post_init__(self) -> None:
        for event in self.events:
            if type(event) not in _KIND_OF:
                raise TypeError(f"unknown fault event {event!r}")

    def __len__(self) -> int:
        return len(self.events)

    def sorted_events(self) -> tuple[FaultEvent, ...]:
        """Events ordered by injection time (stable on ties)."""
        return tuple(sorted(self.events, key=event_time))

    # -- serialisation (cache keys, cross-process transport) ---------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-native form; stable enough to fold into cache keys."""
        events = []
        for e in self.events:
            entry = {"kind": event_kind(e), **dataclasses.asdict(e)}
            # A permanent dropout serialises exactly as it did before
            # the ``duration`` field existed, keeping every legacy
            # cache key byte-identical.
            if isinstance(e, PerfDbDropout) and e.duration == 0.0:
                del entry["duration"]
            events.append(entry)
        return {
            "seed": self.seed,
            "reload": dataclasses.asdict(self.reload),
            "events": events,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultSchedule":
        """Inverse of :meth:`to_dict`."""
        events = []
        for entry in payload.get("events", ()):
            entry = dict(entry)
            kind = entry.pop("kind")
            try:
                event_cls = _EVENT_KINDS[kind]
            except KeyError:
                raise ValueError(f"unknown fault event kind {kind!r}") \
                    from None
            events.append(event_cls(**entry))
        reload_payload = payload.get("reload")
        reload = ReloadCostModel(**reload_payload) if reload_payload \
            else ReloadCostModel()
        return cls(events=tuple(events), seed=int(payload.get("seed", 0)),
                   reload=reload)

    # -- generation --------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        start: float,
        end: float,
        workers: int = 1,
        crashes: int = 1,
        stragglers: int = 1,
        spikes: int = 1,
        storms: int = 0,
        dropout_fraction: float = 0.0,
        reload: Optional[ReloadCostModel] = None,
    ) -> "FaultSchedule":
        """Sample a randomized schedule inside ``[start, end)``.

        Deterministic: the same arguments always produce the same
        schedule (the RNG seed is a SHA-256 of ``seed``, never Python's
        process-randomised ``hash``).
        """
        if end <= start:
            raise ValueError("need end > start")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        digest = hashlib.sha256(f"faults:{seed}".encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        span = end - start
        events: list[FaultEvent] = []
        for _ in range(crashes):
            events.append(WorkerCrash(
                time=start + float(rng.uniform(0.1, 0.6)) * span,
                worker=int(rng.integers(0, workers)),
            ))
        for _ in range(stragglers):
            events.append(KernelStraggler(
                start=start + float(rng.uniform(0.0, 0.5)) * span,
                duration=float(rng.uniform(0.1, 0.3)) * span,
                multiplier=float(rng.uniform(2.0, 6.0)),
            ))
        for _ in range(spikes):
            events.append(BandwidthSpike(
                start=start + float(rng.uniform(0.0, 0.7)) * span,
                duration=float(rng.uniform(0.1, 0.3)) * span,
                demand=float(rng.uniform(0.5, 2.0)),
            ))
        for _ in range(storms):
            events.append(RequestStorm(
                start=start + float(rng.uniform(0.0, 0.6)) * span,
                duration=float(rng.uniform(0.05, 0.2)) * span,
                count=int(rng.integers(16, 64)),
            ))
        if dropout_fraction > 0.0:
            events.append(PerfDbDropout(
                time=start + float(rng.uniform(0.0, 0.4)) * span,
                fraction=dropout_fraction,
            ))
        return cls(events=tuple(events), seed=seed,
                   reload=reload or ReloadCostModel())
