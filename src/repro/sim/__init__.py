"""Discrete-event simulation engine.

This package provides the substrate on which the GPU device, runtime, and
inference server are simulated.  It is a small but complete discrete-event
kernel: a priority-queue event loop (:class:`~repro.sim.engine.Simulator`),
timed callbacks, wakeable processes, and named deterministic RNG streams
(:class:`~repro.sim.rng.RngRegistry`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import Process, Signal
from repro.sim.rng import RngRegistry

__all__ = ["Event", "Simulator", "Process", "Signal", "RngRegistry"]
