"""Named deterministic RNG streams.

Every stochastic component draws from its own named stream derived from a
single experiment seed, so (a) runs are bit-for-bit reproducible and (b)
adding a new consumer of randomness does not perturb existing streams —
the classic trap with one shared generator.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent, named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream seed is a stable hash of ``(registry seed, name)`` so the
        mapping never depends on creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            substream_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(substream_seed)
        return self._streams[name]

    def fork(self, label: str) -> "RngRegistry":
        """Derive an independent registry (e.g. one per experiment cell)."""
        digest = hashlib.sha256(f"{self.seed}/{label}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "little"))
