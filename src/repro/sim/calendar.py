"""Calendar-queue event storage for the simulator.

A calendar queue (Brown, CACM 1988) hashes events into time buckets the
way a desk calendar hashes appointments into days: bucket ``int(t /
width) mod nbuckets``.  Pops walk the calendar forward from the last
popped "day"; when the bucket-per-day mapping fits the event-time
distribution, both push and pop are amortised O(1), versus the binary
heap's O(log n) sift whose depth grows with the lazy-cancel garbage the
device's reschedule churn leaves behind.

This implementation keeps each bucket as a small ``heapq`` heap of the
same ``(time, priority, seq, event)`` tuples the main heap uses, so the
pop order realises the *identical* total order — equal-time entries land
in the same bucket (same ``int(t/width)``) and the in-bucket heap breaks
the tie by ``(priority, seq)`` exactly as the flat heap would.  Bucket
membership is always computed as ``int(t / width)`` (never accumulated
incrementally), so push and pop agree bit-for-bit on which virtual day
an entry belongs to; if a full cycle finds no entry on its own day
(possible after an ``until``-bounded run followed by a backward
re-schedule window), a direct min-scan over all buckets recovers the
exact minimum.

Cancelled entries use the same lazy-deletion contract as the heap: they
stay queued, ``cancelled`` counts them, and :meth:`compact` drops them
wholesale when the engine decides they dominate.
"""

from __future__ import annotations

import heapq

__all__ = ["CalendarQueue"]


class CalendarQueue:
    """Priority queue of ``(time, priority, seq, event)`` entries."""

    MIN_BUCKETS = 16
    MAX_BUCKETS = 1 << 15

    def __init__(self, entries=None):
        self._width = 1e-6
        self._nbuckets = self.MIN_BUCKETS
        self._buckets: list[list] = [[] for _ in range(self._nbuckets)]
        # Virtual day the pop cursor is on (un-wrapped bucket number:
        # real bucket = _vday & (_nbuckets - 1)).
        self._vday = 0
        self._size = 0
        #: Cancelled entries still stored (lazy deletion).
        self.cancelled = 0
        if entries:
            self._rebuild(sorted(entries))

    def __len__(self) -> int:
        return self._size

    # -- internals ----------------------------------------------------------
    def _rebuild(self, live_sorted) -> None:
        """Re-bucket ``live_sorted`` (ascending) under fresh geometry."""
        n = self._nbuckets
        while n < self.MAX_BUCKETS and len(live_sorted) > 2 * n:
            n *= 2
        while n > self.MIN_BUCKETS and len(live_sorted) < n // 2:
            n //= 2
        self._nbuckets = n
        self._width = self._pick_width(live_sorted)
        self._buckets = [[] for _ in range(n)]
        w = self._width
        mask = n - 1
        buckets = self._buckets
        # Entries arrive sorted, so per-bucket lists are built already in
        # heap order (appending ascending keys keeps the heap invariant).
        for entry in live_sorted:
            buckets[int(entry[0] / w) & mask].append(entry)
        self._size = len(live_sorted)
        self.cancelled = 0
        if live_sorted:
            self._vday = int(live_sorted[0][0] / w)

    def _pick_width(self, live_sorted) -> float:
        """Day width from the average adjacent gap of a sample of times.

        A day should hold O(1) events: width ≈ 2× the mean inter-event
        gap (sampled over up to 256 queued entries).  Degenerate samples
        (all equal times, or fewer than two entries) keep the old width.
        """
        if len(live_sorted) < 2:
            return self._width
        sample = live_sorted[:256]
        gaps = [
            b[0] - a[0]
            for a, b in zip(sample, sample[1:])
            if b[0] > a[0]
        ]
        if not gaps:
            return self._width
        width = 2.0 * (sum(gaps) / len(gaps))
        return width if width > 0.0 else self._width

    def _live_entries_sorted(self):
        live = [
            entry
            for bucket in self._buckets
            for entry in bucket
            if not entry[3].cancelled
        ]
        live.sort()
        return live

    def _find(self):
        """Locate the live minimum: (bucket, entry), or None when empty.

        Pops cancelled entries encountered at bucket heads on the way.
        """
        if self._size - self.cancelled <= 0:
            return None
        n = self._nbuckets
        mask = n - 1
        w = self._width
        vday = self._vday
        buckets = self._buckets
        for k in range(n):
            bucket = buckets[(vday + k) & mask]
            while bucket:
                head = bucket[0]
                if head[3].cancelled:
                    heapq.heappop(bucket)
                    self._size -= 1
                    self.cancelled -= 1
                else:
                    break
            if bucket:
                head = bucket[0]
                if int(head[0] / w) == vday + k:
                    # First in-window head on the walk is the global min:
                    # any smaller live entry would belong to an earlier
                    # day, and would have been that day's bucket head.
                    self._vday = vday + k
                    return bucket, head
        # No entry on its own day within one full cycle (e.g. the cursor
        # raced ahead past a sparse region): exact fallback min-scan.
        best = best_bucket = None
        for bucket in buckets:
            while bucket and bucket[0][3].cancelled:
                heapq.heappop(bucket)
                self._size -= 1
                self.cancelled -= 1
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
                best_bucket = bucket
        if best is None:
            return None
        self._vday = int(best[0] / w)
        return best_bucket, best

    # -- queue interface ----------------------------------------------------
    def push(self, entry) -> None:
        w = self._width
        day = int(entry[0] / w)
        if day < self._vday:
            # Re-scheduling behind the cursor (only possible between
            # runs, after an ``until`` bound): pull the cursor back so
            # the forward walk cannot skip the new entry.
            self._vday = day
        heapq.heappush(self._buckets[day & (self._nbuckets - 1)], entry)
        self._size += 1
        if (self._size - self.cancelled > 2 * self._nbuckets
                and self._nbuckets < self.MAX_BUCKETS):
            self._rebuild(self._live_entries_sorted())

    def peek(self):
        """Live minimum entry without removing it, or None."""
        found = self._find()
        return found[1] if found is not None else None

    def pop(self):
        """Remove and return the live minimum entry (must exist)."""
        bucket, entry = self._find()
        heapq.heappop(bucket)
        self._size -= 1
        live = self._size - self.cancelled
        if live < self._nbuckets // 2 and self._nbuckets > self.MIN_BUCKETS:
            self._rebuild(self._live_entries_sorted())
        return entry

    def compact(self) -> None:
        """Drop all cancelled entries (the engine's garbage trigger)."""
        self._rebuild(self._live_entries_sorted())

    def live_scan(self) -> int:
        """O(n) live-entry count (debug cross-check for the counters)."""
        return sum(
            1
            for bucket in self._buckets
            for entry in bucket
            if not entry[3].cancelled
        )
