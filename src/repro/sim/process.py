"""Generator-based processes and signals on top of the event engine.

A :class:`Process` wraps a Python generator that ``yield``s either a float
(sleep for that many simulated seconds) or a :class:`Signal` (block until
the signal fires).  This gives sequential-looking code (workers, clients)
without inverting everything into callbacks.

:class:`Signal` mirrors HSA completion signals: one-shot by default, with
``wait()`` used from inside a process and ``on_fire`` callbacks for
callback-style consumers.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Union

from repro.sim.engine import Simulator

__all__ = ["Process", "Signal"]

Yieldable = Union[float, int, "Signal"]


class Signal:
    """A one-shot event other components can wait on.

    Mirrors an HSA signal: it starts unfired, ``fire(value)`` wakes every
    waiter exactly once, and late waiters resume immediately.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking all current waiters this instant."""
        if self.fired:
            return
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            # Waiters run as fresh events so firing inside an event handler
            # does not grow the Python stack unboundedly.
            self._sim.schedule(self._sim.now, lambda w=waiter: w(value))

    def on_fire(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when (or if already) fired."""
        if self.fired:
            self._sim.schedule(self._sim.now, lambda: callback(self.value))
        else:
            self._waiters.append(callback)


class Process:
    """Drives a generator as a cooperative simulated process.

    The generator may yield:

    * a non-negative number — sleep that many simulated seconds;
    * a :class:`Signal` — block until it fires; ``signal.value`` is sent
      back into the generator as the result of the ``yield``.

    ``done`` is itself a :class:`Signal`, fired with the generator's return
    value, so processes compose (a process can wait on another's ``done``).
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Yieldable, Any, Any],
        name: str = "",
    ) -> None:
        self._sim = sim
        self._gen = generator
        self.name = name
        self.done = Signal(sim, name=f"{name}.done")
        sim.schedule(sim.now, lambda: self._advance(None))

    def _advance(self, send_value: Any) -> None:
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.done.fire(stop.value)
            return
        if isinstance(yielded, Signal):
            yielded.on_fire(self._advance)
        elif isinstance(yielded, (int, float)):
            self._sim.schedule_in(float(yielded), lambda: self._advance(None))
        else:
            raise TypeError(
                f"process {self.name!r} yielded {yielded!r}; expected a "
                "delay in seconds or a Signal"
            )
