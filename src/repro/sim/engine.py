"""Event loop for the discrete-event simulator.

The engine is deliberately minimal: events are ``(time, priority, seq)``
ordered callbacks in a priority queue.  Components schedule callbacks with
:meth:`Simulator.schedule` (absolute time) or :meth:`Simulator.schedule_in`
(relative delay) and may cancel them.  Simulated time is a float in
*seconds*; helpers for milliseconds and microseconds keep call sites
readable.

Determinism: ties in time are broken first by an explicit integer
``priority`` (lower runs first) and then by insertion order, so a run is a
pure function of its inputs and seeds.

Two queue implementations sit behind the same scheduling interface: the
default binary heap and a calendar queue
(:class:`repro.sim.calendar.CalendarQueue`) whose amortised O(1)
push/pop wins once the pending set grows deep.  ``Simulator(queue=...)``
selects ``"heap"``, ``"calendar"``, or ``"auto"`` (start on the heap,
upgrade once the pending-event count shows calendar-grade density); the
``REPRO_SIM_QUEUE`` environment variable overrides the default.  Both
queues realise the identical ``(time, priority, seq)`` total order, so
the choice is observationally invisible.

Cancelled events are lazily deleted (they stay in the queue until
popped), which is O(1) per cancel but lets a cancel-heavy workload — the
device reschedules every affected kernel completion on every rate change
— bloat the queue with dead entries.  The engine therefore keeps an exact
count of live entries (making :meth:`Simulator.pending` O(1)) and
compacts the heap whenever cancelled entries outnumber live ones.
Compaction only rebuilds the queue layout; pop order is the total order
``(time, priority, seq)``, so it is observationally invisible.

Equal-timestamp batching: :meth:`Simulator.run` executes events one
instant at a time — all events sharing the current timestamp are drained
(in priority/seq order, exactly the order the unbatched loop used)
before any *flush hook* runs.  A component that accumulates same-instant
state changes (the device's deferred rate recompute) registers a hook
with :meth:`Simulator.add_flush_hook`; the engine calls every hook when
the batch at the current instant is exhausted, re-draining if a hook
scheduled more work at the same instant, and always flushes before
:meth:`run` returns.  ``batches_drained`` counts the instants visited —
alongside ``events_executed`` it keeps throughput reporting honest when
many events share a timestamp.
"""

from __future__ import annotations

import gc
import heapq
import itertools
import os
from typing import Callable, Optional

from repro.obs.tracer import NULL_TRACER

__all__ = ["Event", "Simulator", "SimulationError"]

#: Multipliers for readable time literals.
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6

_QUEUE_MODES = ("auto", "heap", "calendar")


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` so the queue pops them in
    deterministic order.  ``cancelled`` events stay queued but are
    skipped when popped (lazy deletion).

    A hand-written ``__slots__`` class rather than a dataclass: the
    constructor runs once per scheduled event — the simulator's single
    hottest allocation — and folding the owning-simulator / in-queue
    bookkeeping into ``__init__`` saves two attribute stores per event
    over the dataclass-plus-assignments shape.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled",
                 "_sim", "_in_heap")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[[], None],
                 sim: Optional["Simulator"] = None) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        # Owning simulator and queue-membership flag, so a cancel can
        # keep the engine's live-event count exact without a queue scan.
        self._sim = sim
        self._in_heap = sim is not None

    def __repr__(self) -> str:
        return (f"Event(time={self.time!r}, priority={self.priority!r}, "
                f"seq={self.seq!r}, cancelled={self.cancelled!r})")

    def _order(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._order() < other._order()

    def __le__(self, other: "Event") -> bool:
        return self._order() <= other._order()

    def __gt__(self, other: "Event") -> bool:
        return self._order() > other._order()

    def __ge__(self, other: "Event") -> bool:
        return self._order() >= other._order()

    def __eq__(self, other) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._order() == other._order()

    def __hash__(self) -> int:
        return hash((self.time, self.priority, self.seq))

    def cancel(self) -> None:
        """Mark the event so the engine skips it."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if self._in_heap and sim is not None:
            calendar = sim._calendar
            if calendar is not None:
                calendar.cancelled += 1
            else:
                sim._cancelled_in_heap += 1


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Typical use::

        sim = Simulator()
        sim.schedule_in(1e-3, lambda: print("1 ms later"))
        sim.run()
    """

    #: Heaps smaller than this are never compacted: below it the extra
    #: sift depth from dead entries costs less than the O(heap) rebuild,
    #: and the reschedule-churn workload would otherwise re-trigger a
    #: rebuild every few dozen cancels.
    COMPACT_MIN = 1024

    #: ``queue="auto"`` upgrades from the heap to the calendar queue the
    #: first time this many events are pending at once: below it the
    #: C-implemented heap's constant factor wins, above it the heap's
    #: O(log n) sift depth starts to show.
    CALENDAR_AUTO_PENDING = 4096

    def __init__(self, tracer=None, queue: Optional[str] = None) -> None:
        # Heap entries are (time, priority, seq, event) tuples: heapq then
        # orders them with C-level tuple comparison (seq is unique, so the
        # Event element is never compared) instead of a Python __lt__ call
        # per sift step — the engine's hottest constant factor.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._calendar = None
        if queue is None:
            queue = os.environ.get("REPRO_SIM_QUEUE", "") or "auto"
        if queue not in _QUEUE_MODES:
            raise ValueError(
                f"unknown queue mode {queue!r}; expected one of "
                f"{_QUEUE_MODES}")
        self.queue_mode = queue
        if queue == "calendar":
            from repro.sim.calendar import CalendarQueue
            self._calendar = CalendarQueue()
        self._now = 0.0
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._cancelled_in_heap = 0
        self.events_executed = 0
        #: Number of distinct timestamps visited by :meth:`run` — the
        #: denominator that keeps events/s honest under equal-timestamp
        #: batching (many events can share one instant).
        self.batches_drained = 0
        #: Flush hooks run whenever the batch at the current instant is
        #: exhausted (and unconditionally before run() returns); see the
        #: module docstring.
        self._flush_hooks: list[Callable[[], None]] = []
        #: The observability sink instrumented components report into
        #: (``sim.tracer``).  Defaults to the no-op null tracer, so an
        #: untraced run pays one attribute read per hook site.
        self.tracer = NULL_TRACER
        if tracer is not None:
            self.attach_tracer(tracer)

    def attach_tracer(self, tracer):
        """Bind ``tracer`` to this simulator's clock and install it.

        Every instrumented component reached from this simulator
        (device, command processor, workers, queues) reports into
        ``sim.tracer``; the tracer timestamps records with ``sim.now``.
        Returns the tracer for chaining.
        """
        tracer.bind_clock(lambda: self._now)
        self.tracer = tracer
        return tracer

    def add_flush_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook`` to run at every instant boundary in run().

        Hooks may schedule new events (including at the current instant —
        the engine re-drains).  They must be idempotent at a quiescent
        point: the engine also flushes before run() returns.
        """
        self._flush_hooks.append(hook)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = next(self._seq)
        event = Event(time, priority, seq, callback, self)
        calendar = self._calendar
        if calendar is not None:
            calendar.push((time, priority, seq, event))
            if (calendar.cancelled * 2 > len(calendar)
                    and len(calendar) >= self.COMPACT_MIN):
                calendar.compact()
            return event
        heap = self._heap
        heapq.heappush(heap, (time, priority, seq, event))
        # Compaction is amortised over schedule() calls: the workload
        # that bloats the heap (cancel + reschedule churn) always pairs a
        # cancel with a new schedule, and checking here keeps cancel()
        # itself a pair of attribute writes.
        if (self._cancelled_in_heap * 2 > len(heap)
                and len(heap) >= self.COMPACT_MIN):
            self._compact()
        elif (self.queue_mode == "auto"
                and len(heap) - self._cancelled_in_heap
                >= self.CALENDAR_AUTO_PENDING):
            self._upgrade_to_calendar()
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` after a relative non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, priority)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def _upgrade_to_calendar(self) -> None:
        """Move the live pending set into a calendar queue (auto mode).

        Both queues realise the same ``(time, priority, seq)`` total
        order, so the switch is observationally invisible; it happens at
        most once per simulator.
        """
        from repro.sim.calendar import CalendarQueue
        live = [entry for entry in self._heap if not entry[3].cancelled]
        self._calendar = CalendarQueue(live)
        for entry in self._heap:
            if entry[3].cancelled:
                entry[3]._in_heap = False
        self._heap = []
        self._cancelled_in_heap = 0

    # -- queue-generic helpers ----------------------------------------------
    def _peek_entry(self):
        """Live (time, priority, seq, event) at the queue head, or None.

        Pops cancelled entries on the way, keeping accounting exact.
        """
        calendar = self._calendar
        if calendar is not None:
            return calendar.peek()
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heapq.heappop(heap)
                entry[3]._in_heap = False
                self._cancelled_in_heap -= 1
            else:
                return entry
        return None

    def _pop_entry(self):
        """Pop and return the live queue head entry (must exist)."""
        calendar = self._calendar
        if calendar is not None:
            entry = calendar.pop()
        else:
            entry = heapq.heappop(self._heap)
        entry[3]._in_heap = False
        return entry

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle."""
        entry = self._peek_entry()
        return entry[0] if entry is not None else None

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when none remain.

        Single-stepping runs outside the batching loop: components that
        defer work to flush hooks commit eagerly when the engine is not
        inside :meth:`run`, so state is consistent after every step.
        """
        entry = self._peek_entry()
        if entry is None:
            return False
        self._pop_entry()
        event = entry[3]
        self._now = event.time
        self.events_executed += 1
        event.callback()
        return True

    def _pop(self) -> Event:
        """Pop the heap top, keeping the live/cancelled accounting exact.

        (Heap-mode internal, kept for the engine test suite.)
        """
        event = heapq.heappop(self._heap)[3]
        event._in_heap = False
        if event.cancelled:
            self._cancelled_in_heap -= 1
        return event

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap layout."""
        live = []
        for entry in self._heap:
            if entry[3].cancelled:
                entry[3]._in_heap = False
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap = live
        self._cancelled_in_heap = 0

    def _flush(self) -> None:
        """Run every flush hook (instant-boundary commit point)."""
        for hook in self._flush_hooks:
            hook()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the event queue drains, ``until`` passes, or ``stop()``.

        Returns the simulated time at exit.  When ``until`` is given the
        clock is advanced to ``until`` even if the queue drained earlier,
        which keeps time integration (e.g. energy) well defined.  Flush
        hooks have run by the time run() returns, whatever the exit path.

        The loop suspends the cyclic garbage collector while it runs (the
        event/callback object churn otherwise triggers thousands of
        gen-0 collections); reference counting still reclaims the
        transient objects, and the collector is restored on exit.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            from repro.profiling import simprofile
            profiler = simprofile._ACTIVE
            if profiler is not None or self._calendar is not None:
                self._run_generic(until, max_events, profiler)
            else:
                self._run_heap(until, max_events)
        finally:
            try:
                self._flush()
            finally:
                self._running = False
                if gc_was_enabled:
                    # Re-enable without an eager full collect: a full
                    # pass over the millions of objects a long run
                    # leaves live costs seconds, and the collector will
                    # catch any surviving cycles on its own schedule.
                    gc.enable()
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def _run_heap(self, until: Optional[float],
                  max_events: Optional[int]) -> None:
        """The hot loop: heap-only, batching by equal timestamp.

        Equivalent to ``while step(): ...`` plus flush hooks at instant
        boundaries — events still execute strictly in ``(time, priority,
        seq)`` order; only the flush points are new.
        """
        heap = self._heap
        pop = heapq.heappop
        hooks = self._flush_hooks
        executed = 0
        batches = 0
        try:
            while not self._stopped:
                # Find the live queue head.
                while heap:
                    entry = heap[0]
                    if entry[3].cancelled:
                        pop(heap)
                        entry[3]._in_heap = False
                        self._cancelled_in_heap -= 1
                    else:
                        break
                else:
                    break
                t = entry[0]
                if until is not None and t > until:
                    break
                self._now = t
                batches += 1
                # Drain every live event at t; flush hooks between waves.
                while True:
                    pop(heap)
                    event = entry[3]
                    event._in_heap = False
                    executed += 1
                    event.callback()
                    if self._stopped or (max_events is not None
                                         and executed >= max_events):
                        return
                    if self._calendar is not None:
                        # A schedule() inside the callback upgraded the
                        # queue (auto mode); hand the rest of the run —
                        # including the remainder of this batch — to the
                        # queue-agnostic loop.
                        remaining = (None if max_events is None
                                     else max_events - executed)
                        self._run_generic(until, remaining, None, batch_t=t)
                        return
                    while heap:
                        entry = heap[0]
                        if entry[3].cancelled:
                            pop(heap)
                            entry[3]._in_heap = False
                            self._cancelled_in_heap -= 1
                        else:
                            break
                    else:
                        entry = None
                    if entry is not None and entry[0] == t:
                        continue
                    # Instant exhausted: flush; hooks may schedule at t.
                    if hooks:
                        for hook in hooks:
                            hook()
                        while heap:
                            entry = heap[0]
                            if entry[3].cancelled:
                                pop(heap)
                                entry[3]._in_heap = False
                                self._cancelled_in_heap -= 1
                            else:
                                break
                        else:
                            entry = None
                        if entry is not None and entry[0] == t:
                            continue
                    break
        finally:
            # Buffered locally during the loop (nothing reads the
            # counters mid-run); the generic loop a delegation may have
            # entered increments them directly, so add, don't assign.
            self.events_executed += executed
            self.batches_drained += batches

    def _run_generic(self, until: Optional[float],
                     max_events: Optional[int], profiler,
                     batch_t: Optional[float] = None) -> None:
        """Queue-agnostic batching loop (calendar / profiled / handoff).

        Same semantics as :meth:`_run_heap`; pays one indirection per
        event, plus two clock reads when a profiler is active.  When
        ``batch_t`` is given the loop resumes *inside* an already-counted
        batch at that instant (the heap loop hands off here when auto
        mode upgrades the queue mid-run).
        """
        executed = 0
        clock = None
        if max_events is not None and max_events <= 0:
            return
        if profiler is not None:
            from time import perf_counter as clock
        while not self._stopped:
            t0 = clock() if clock is not None else 0.0
            entry = self._peek_entry()
            if entry is None:
                break
            t = entry[0]
            if batch_t is not None:
                resume_t, batch_t = batch_t, None
                if t != resume_t:
                    # The handed-off batch was already exhausted: flush
                    # it (hooks may schedule more work at resume_t), then
                    # either resume it or fall through to a new batch.
                    if self._flush_hooks:
                        self._flush()
                        entry = self._peek_entry()
                        if entry is None:
                            break
                        t = entry[0]
                    if t != resume_t:
                        if until is not None and t > until:
                            break
                        self._now = t
                        self.batches_drained += 1
            elif until is not None and t > until:
                break
            else:
                self._now = t
                self.batches_drained += 1
            while True:
                self._pop_entry()
                event = entry[3]
                self.events_executed += 1
                executed += 1
                if clock is not None:
                    t1 = clock()
                    profiler.add("event_pop", t1 - t0)
                    event.callback()
                    t0 = clock()
                    profiler.add("callback", t0 - t1)
                    profiler.events += 1
                else:
                    event.callback()
                if self._stopped or (max_events is not None
                                     and executed >= max_events):
                    return
                entry = self._peek_entry()
                if entry is not None and entry[0] == t:
                    continue
                if self._flush_hooks:
                    self._flush()
                    entry = self._peek_entry()
                    if entry is not None and entry[0] == t:
                        continue
                break

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        if self._calendar is not None:
            return len(self._calendar) - self._calendar.cancelled
        return len(self._heap) - self._cancelled_in_heap

    def _pending_scan(self) -> int:
        """O(queue) reference count of live events (debug cross-check for
        the O(1) counter; tests assert both agree)."""
        if self._calendar is not None:
            return self._calendar.live_scan()
        return sum(1 for entry in self._heap if not entry[3].cancelled)
