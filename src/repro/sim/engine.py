"""Event loop for the discrete-event simulator.

The engine is deliberately minimal: events are ``(time, priority, seq)``
ordered callbacks in a binary heap.  Components schedule callbacks with
:meth:`Simulator.schedule` (absolute time) or :meth:`Simulator.schedule_in`
(relative delay) and may cancel them.  Simulated time is a float in
*seconds*; helpers for milliseconds and microseconds keep call sites
readable.

Determinism: ties in time are broken first by an explicit integer
``priority`` (lower runs first) and then by insertion order, so a run is a
pure function of its inputs and seeds.

Cancelled events are lazily deleted (they stay in the heap until popped),
which is O(1) per cancel but lets a cancel-heavy workload — the device
reschedules every affected kernel completion on every rate change — bloat
the heap with dead entries.  The engine therefore keeps an exact count of
live entries (making :meth:`Simulator.pending` O(1)) and compacts the heap
whenever cancelled entries outnumber live ones.  Compaction only rebuilds
the binary-heap layout; pop order is the total order ``(time, priority,
seq)``, so it is observationally invisible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.tracer import NULL_TRACER

__all__ = ["Event", "Simulator", "SimulationError"]

#: Multipliers for readable time literals.
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` so the heap pops them in
    deterministic order.  ``cancelled`` events stay in the heap but are
    skipped when popped (lazy deletion).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Owning simulator and heap-membership flag, so a cancel can keep the
    # engine's live-event count exact without a heap scan.
    _sim: Optional["Simulator"] = field(
        default=None, compare=False, repr=False)
    _in_heap: bool = field(default=False, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if self._in_heap and sim is not None:
            sim._cancelled_in_heap += 1


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Typical use::

        sim = Simulator()
        sim.schedule_in(1e-3, lambda: print("1 ms later"))
        sim.run()
    """

    #: Heaps smaller than this are never compacted: below it the extra
    #: sift depth from dead entries costs less than the O(heap) rebuild,
    #: and the reschedule-churn workload would otherwise re-trigger a
    #: rebuild every few dozen cancels.
    COMPACT_MIN = 1024

    def __init__(self, tracer=None) -> None:
        # Heap entries are (time, priority, seq, event) tuples: heapq then
        # orders them with C-level tuple comparison (seq is unique, so the
        # Event element is never compared) instead of a Python __lt__ call
        # per sift step — the engine's hottest constant factor.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._now = 0.0
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._cancelled_in_heap = 0
        self.events_executed = 0
        #: The observability sink instrumented components report into
        #: (``sim.tracer``).  Defaults to the no-op null tracer, so an
        #: untraced run pays one attribute read per hook site.
        self.tracer = NULL_TRACER
        if tracer is not None:
            self.attach_tracer(tracer)

    def attach_tracer(self, tracer):
        """Bind ``tracer`` to this simulator's clock and install it.

        Every instrumented component reached from this simulator
        (device, command processor, workers, queues) reports into
        ``sim.tracer``; the tracer timestamps records with ``sim.now``.
        Returns the tracer for chaining.
        """
        tracer.bind_clock(lambda: self._now)
        self.tracer = tracer
        return tracer

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, priority, next(self._seq), callback)
        event._sim = self
        event._in_heap = True
        heap = self._heap
        heapq.heappush(heap, (time, priority, event.seq, event))
        # Compaction is amortised over schedule() calls: the workload
        # that bloats the heap (cancel + reschedule churn) always pairs a
        # cancel with a new schedule, and checking here keeps cancel()
        # itself a pair of attribute writes.
        if (self._cancelled_in_heap * 2 > len(heap)
                and len(heap) >= self.COMPACT_MIN):
            self._compact()
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` after a relative non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, priority)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle."""
        while self._heap and self._heap[0][3].cancelled:
            self._pop()
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when none remain."""
        while self._heap:
            event = self._pop()
            if event.cancelled:
                continue
            self._now = event.time
            self.events_executed += 1
            event.callback()
            return True
        return False

    def _pop(self) -> Event:
        """Pop the heap top, keeping the live/cancelled accounting exact."""
        event = heapq.heappop(self._heap)[3]
        event._in_heap = False
        if event.cancelled:
            self._cancelled_in_heap -= 1
        return event

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap layout."""
        live = []
        for entry in self._heap:
            if entry[3].cancelled:
                entry[3]._in_heap = False
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap = live
        self._cancelled_in_heap = 0

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event heap drains, ``until`` passes, or ``stop()``.

        Returns the simulated time at exit.  When ``until`` is given the
        clock is advanced to ``until`` even if the heap drained earlier,
        which keeps time integration (e.g. energy) well defined.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while not self._stopped:
                nxt = self.peek()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                self.step()
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return len(self._heap) - self._cancelled_in_heap

    def _pending_scan(self) -> int:
        """O(heap) reference count of live events (debug cross-check for
        the O(1) counter; tests assert both agree)."""
        return sum(1 for entry in self._heap if not entry[3].cancelled)
