"""Event loop for the discrete-event simulator.

The engine is deliberately minimal: events are ``(time, priority, seq)``
ordered callbacks in a binary heap.  Components schedule callbacks with
:meth:`Simulator.schedule` (absolute time) or :meth:`Simulator.schedule_in`
(relative delay) and may cancel them.  Simulated time is a float in
*seconds*; helpers for milliseconds and microseconds keep call sites
readable.

Determinism: ties in time are broken first by an explicit integer
``priority`` (lower runs first) and then by insertion order, so a run is a
pure function of its inputs and seeds.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.tracer import NULL_TRACER

__all__ = ["Event", "Simulator", "SimulationError"]

#: Multipliers for readable time literals.
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` so the heap pops them in
    deterministic order.  ``cancelled`` events stay in the heap but are
    skipped when popped (lazy deletion).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it."""
        self.cancelled = True


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Typical use::

        sim = Simulator()
        sim.schedule_in(1e-3, lambda: print("1 ms later"))
        sim.run()
    """

    def __init__(self, tracer=None) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_executed = 0
        #: The observability sink instrumented components report into
        #: (``sim.tracer``).  Defaults to the no-op null tracer, so an
        #: untraced run pays one attribute read per hook site.
        self.tracer = NULL_TRACER
        if tracer is not None:
            self.attach_tracer(tracer)

    def attach_tracer(self, tracer):
        """Bind ``tracer`` to this simulator's clock and install it.

        Every instrumented component reached from this simulator
        (device, command processor, workers, queues) reports into
        ``sim.tracer``; the tracer timestamps records with ``sim.now``.
        Returns the tracer for chaining.
        """
        tracer.bind_clock(lambda: self._now)
        self.tracer = tracer
        return tracer

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, priority, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` after a relative non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, priority)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_executed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event heap drains, ``until`` passes, or ``stop()``.

        Returns the simulated time at exit.  When ``until`` is given the
        clock is advanced to ``until`` even if the heap drained earlier,
        which keeps time integration (e.g. energy) well defined.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while not self._stopped:
                nxt = self.peek()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                self.step()
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
