"""Per-kernel minimum-CU profiling.

The paper defines a kernel's right-size as "the least number of CUs that
have the same latency as the kernel utilizing the full GPU" (Section
IV-B).  The profiler sweeps allocation sizes — laid out by the same
*Conserved* mask generator the hardware will use — measuring each
isolated latency against the dispatcher timing model, and records the
smallest size within tolerance of the full-GPU latency.

Profiling is offline and contention-free (exactly like the paper's
install-time library profiling), so the analytic isolated-latency formula
is the measurement; the simulator produces identical numbers for an idle
device, which the test suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.allocation import DistributionPolicy, ResourceMaskGenerator
from repro.core.perfdb import PerfDatabase
from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.exec_model import ExecutionModelConfig, isolated_latency
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology

__all__ = ["KernelProfile", "KernelProfiler", "build_database"]


@dataclass(frozen=True)
class KernelProfile:
    """Result of profiling one kernel."""

    descriptor: KernelDescriptor
    min_cus: int
    full_latency: float
    total_cus: int
    latencies: dict[int, float] = field(default_factory=dict)

    @property
    def restriction_tolerance(self) -> float:
        """Fraction of the device the kernel can give up for free."""
        return 1.0 - self.min_cus / self.total_cus


class KernelProfiler:
    """Sweeps CU counts to find each kernel's minimum requirement."""

    def __init__(
        self,
        topology: Optional[GpuTopology] = None,
        exec_config: Optional[ExecutionModelConfig] = None,
        tolerance: float = 0.05,
        policy: DistributionPolicy = DistributionPolicy.CONSERVED,
    ) -> None:
        """``tolerance`` is the allowed relative slowdown versus the
        full-GPU latency when calling an allocation "the same latency"."""
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        self.topology = topology or GpuTopology.mi50()
        self.exec_config = exec_config or ExecutionModelConfig()
        self.tolerance = tolerance
        self._generator = ResourceMaskGenerator(self.topology, policy=policy)

    def mask_for(self, num_cus: int) -> CUMask:
        """Idle-device allocation of ``num_cus`` CUs under the policy."""
        return self._generator.generate(num_cus,
                                        CUKernelCounters(self.topology))

    def latency_at(self, desc: KernelDescriptor, num_cus: int) -> float:
        """Isolated latency under an allocation of ``num_cus`` CUs."""
        return isolated_latency(desc, self.mask_for(num_cus),
                                self.exec_config)

    def latency_curve(
        self, desc: KernelDescriptor,
        cu_counts: Optional[Sequence[int]] = None,
    ) -> dict[int, float]:
        """Latency for each allocation size in ``cu_counts`` (default:
        every size from 1 to the whole device)."""
        if cu_counts is None:
            cu_counts = range(1, self.topology.total_cus + 1)
        return {n: self.latency_at(desc, n) for n in cu_counts}

    def min_cus(self, desc: KernelDescriptor) -> int:
        """Smallest CU count within tolerance of the full-GPU latency."""
        total = self.topology.total_cus
        full = self.latency_at(desc, total)
        budget = full * (1.0 + self.tolerance)
        best = total
        # Scan downward; latency is not monotone in general (SE-count
        # boundaries), so track the smallest n that stays within budget
        # for *all* allocations >= n -- a kernel right-sized to n must
        # never regress if the allocator can only give it more.
        for n in range(total, 0, -1):
            if self.latency_at(desc, n) <= budget:
                best = n
            else:
                break
        return best

    def profile(self, desc: KernelDescriptor,
                with_curve: bool = False) -> KernelProfile:
        """Full profile of one kernel."""
        curve = self.latency_curve(desc) if with_curve else {}
        return KernelProfile(
            descriptor=desc,
            min_cus=self.min_cus(desc),
            full_latency=self.latency_at(desc, self.topology.total_cus),
            total_cus=self.topology.total_cus,
            latencies=curve,
        )


def build_database(
    kernels: Iterable[KernelDescriptor],
    profiler: Optional[KernelProfiler] = None,
) -> PerfDatabase:
    """Profile every distinct kernel and assemble the performance database.

    Kernels sharing a database key (name + kernel size + input size) are
    profiled once, mirroring the paper's install-time amortisation.
    """
    profiler = profiler or KernelProfiler()
    database = PerfDatabase()
    for desc in kernels:
        if desc in database:
            continue
        database.record(desc, profiler.min_cus(desc))
    return database
