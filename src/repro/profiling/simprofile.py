"""Per-phase wall-time profiler for the simulator hot loop.

``krisp-repro bench --profile`` activates a :class:`SimProfiler`; while
one is active, the engine switches to an instrumented run loop that
brackets every event pop and callback with ``perf_counter`` reads, and
the device / allocator / observability sampler report their own phase
times into the same profiler.  The result is a wall-time breakdown of
where a simulation run actually goes:

- ``event_pop``        — queue head search + pop (engine)
- ``callback``         — total time inside event callbacks (engine);
  the phases below are sub-intervals of it
- ``rate_recompute``   — effective-latency recompute + completion
  rescheduling (device)
- ``progress_advance`` — per-record progress integration (device)
- ``allocator``        — CU mask generation + right-sizing (allocator)
- ``observability``    — metrics sampling callbacks (sampler)

Activation is process-global (module state, not thread-safe — the
simulator itself is single-threaded) and adds ~2 clock reads per event
plus 2 per instrumented sub-phase, so profiled throughput numbers are
*not* comparable with unprofiled runs; use ``--profile`` for the shape
of the breakdown, the plain bench for absolute events/s.

The engine and device import this module lazily (inside ``run()`` /
hook sites) because ``repro.profiling``'s package init pulls in the
model profiler, which itself imports the engine.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["SimProfiler", "activate", "deactivate", "current"]

#: Phase keys in reporting order.  ``callback`` is the umbrella for the
#: component phases after it; anything un-instrumented shows as "other".
PHASES = (
    "event_pop",
    "callback",
    "rate_recompute",
    "progress_advance",
    "allocator",
    "observability",
)

#: Sub-phases of ``callback`` (used to derive the "other" bucket).
_CALLBACK_PHASES = (
    "rate_recompute",
    "progress_advance",
    "allocator",
    "observability",
)

_ACTIVE: Optional["SimProfiler"] = None


class SimProfiler:
    """Accumulates wall seconds per hot-loop phase."""

    def __init__(self) -> None:
        self.seconds = {phase: 0.0 for phase in PHASES}
        self.events = 0

    def add(self, phase: str, dt: float) -> None:
        self.seconds[phase] += dt

    def breakdown(self) -> dict:
        """Phase → seconds, with ``callback`` split into its sub-phases
        plus a derived ``other`` remainder (uninstrumented callback
        work: queue/stream bookkeeping, process resumption, tracing).
        """
        seconds = self.seconds
        instrumented = sum(seconds[phase] for phase in _CALLBACK_PHASES)
        out = {
            "events": self.events,
            "total_s": seconds["event_pop"] + seconds["callback"],
            "event_pop_s": seconds["event_pop"],
        }
        for phase in _CALLBACK_PHASES:
            out[f"{phase}_s"] = seconds[phase]
        out["other_s"] = max(0.0, seconds["callback"] - instrumented)
        return out

    def format(self) -> str:
        """Human-readable table of the breakdown."""
        info = self.breakdown()
        total = info["total_s"] or 1.0
        rows = [("event pop", info["event_pop_s"])]
        rows += [
            (phase.replace("_", " "), info[f"{phase}_s"])
            for phase in _CALLBACK_PHASES
        ]
        rows.append(("other (callback)", info["other_s"]))
        lines = [
            f"profile: {info['events']} events, {info['total_s']:.3f}s in loop"
        ]
        for name, seconds in rows:
            lines.append(
                f"  {name:<18} {seconds:>9.3f}s  {100.0 * seconds / total:5.1f}%"
            )
        return "\n".join(lines)


def activate() -> SimProfiler:
    """Install a fresh profiler as the process-global active one."""
    global _ACTIVE
    _ACTIVE = SimProfiler()
    return _ACTIVE


def deactivate() -> Optional[SimProfiler]:
    """Clear the active profiler, returning it (with its totals)."""
    global _ACTIVE
    profiler, _ACTIVE = _ACTIVE, None
    return profiler


def current() -> Optional[SimProfiler]:
    return _ACTIVE
