"""Offline profilers (the paper's right-sizing inputs).

* :mod:`~repro.profiling.kernel_profiler` — sweeps CU allocations for a
  single kernel and finds its *minimum required CUs* (the fewest CUs with
  the same latency as the full GPU, Section IV-B); builds the performance
  database the runtime right-sizer consults.
* :mod:`~repro.profiling.model_profiler` — runs whole inference passes on
  the simulator under restricted stream masks to obtain the
  latency/throughput-vs-CUs curves of Fig. 3 and the model-wise
  right-size ("kneepoint") used by prior work.
"""

from repro.profiling.kernel_profiler import KernelProfiler, build_database
from repro.profiling.model_profiler import (
    ModelSensitivity,
    kernel_mincu_trace,
    profile_model,
    run_inference_once,
)

__all__ = [
    "KernelProfiler",
    "build_database",
    "ModelSensitivity",
    "kernel_mincu_trace",
    "profile_model",
    "run_inference_once",
]
