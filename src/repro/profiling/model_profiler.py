"""Model-level sensitivity profiling (paper Fig. 3 and Table III).

Runs complete inference passes on the simulated stack — HSA queue,
command processor, device — under stream-scoped CU masks of decreasing
size, yielding the latency/throughput-vs-active-CUs curves prior work
uses for *model-wise* right-sizing, and the resulting kneepoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.allocation import DistributionPolicy, ResourceMaskGenerator
from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology
from repro.models.zoo import ModelSpec
from repro.profiling.kernel_profiler import KernelProfiler
from repro.runtime.hsa import HsaRuntime
from repro.runtime.stream import Stream
from repro.sim.engine import Simulator

__all__ = [
    "ModelSensitivity",
    "run_inference_once",
    "profile_model",
    "kernel_mincu_trace",
]


@dataclass(frozen=True)
class ModelSensitivity:
    """Latency/throughput of one model versus active-CU restriction."""

    model_name: str
    batch_size: int
    cu_counts: tuple[int, ...]
    latencies: tuple[float, ...]
    right_size: int
    full_latency: float

    def throughputs(self) -> tuple[float, ...]:
        """Requests per second at each CU count (batch / latency)."""
        return tuple(self.batch_size / lat for lat in self.latencies)

    def latency_at(self, cus: int) -> float:
        """Profiled latency at a swept CU count."""
        return self.latencies[self.cu_counts.index(cus)]


def run_inference_once(
    trace: Sequence[KernelDescriptor],
    mask: CUMask,
    exec_config: Optional[ExecutionModelConfig] = None,
) -> float:
    """Execute one inference pass alone on a fresh device; returns its
    end-to-end latency in seconds."""
    sim = Simulator()
    device = GpuDevice(sim, mask.topology, exec_config=exec_config)
    runtime = HsaRuntime(sim, device)
    stream = Stream(runtime, name="profile")
    stream.queue.set_cu_mask(mask)
    for desc in trace:
        stream.launch_kernel(desc)
    sim.run()
    if device.busy():
        raise RuntimeError("inference did not drain; simulator deadlock")
    return sim.now


def profile_model(
    model: ModelSpec,
    batch_size: int = 32,
    cu_counts: Optional[Sequence[int]] = None,
    tolerance: float = 0.05,
    topology: Optional[GpuTopology] = None,
    exec_config: Optional[ExecutionModelConfig] = None,
    policy: DistributionPolicy = DistributionPolicy.CONSERVED,
) -> ModelSensitivity:
    """Sweep active CUs for a whole model (the Fig. 3 experiment).

    The model's right-size (kneepoint) is the smallest swept CU count
    whose latency stays within ``tolerance`` of the full-GPU latency for
    every larger swept count — the same diminishing-returns criterion
    prior work profiles.
    """
    topology = topology or GpuTopology.mi50()
    if cu_counts is None:
        cu_counts = tuple(range(2, topology.total_cus + 1, 2))
    cu_counts = tuple(sorted(set(cu_counts)))
    if not cu_counts:
        raise ValueError("cu_counts must be non-empty")
    generator = ResourceMaskGenerator(topology, policy=policy)
    trace = model.trace(batch_size, topology)
    # Non-hidden host time is CU-independent; it adds a constant to every
    # point of the sweep (and flattens the relative curve, exactly as on
    # real hardware).
    host_time = model.host_gap_total(batch_size)
    latencies = []
    for n in cu_counts:
        mask = generator.generate(n, CUKernelCounters(topology))
        latencies.append(run_inference_once(trace, mask, exec_config) + host_time)
    full_mask = CUMask.all_cus(topology)
    full_latency = run_inference_once(trace, full_mask, exec_config) + host_time
    budget = full_latency * (1.0 + tolerance)
    right_size = topology.total_cus
    for n, latency in sorted(zip(cu_counts, latencies), reverse=True):
        if latency <= budget:
            right_size = n
        else:
            break
    return ModelSensitivity(
        model_name=model.name,
        batch_size=batch_size,
        cu_counts=cu_counts,
        latencies=tuple(latencies),
        right_size=right_size,
        full_latency=full_latency,
    )


def kernel_mincu_trace(
    model: ModelSpec,
    batch_size: int = 32,
    profiler: Optional[KernelProfiler] = None,
) -> list[int]:
    """Per-kernel minimum-CU sequence over one inference pass (Fig. 4)."""
    profiler = profiler or KernelProfiler()
    cache: dict = {}
    result = []
    for desc in model.trace(batch_size, profiler.topology):
        key = (desc.name, desc.kernel_size, desc.bytes_in)
        if key not in cache:
            cache[key] = profiler.min_cus(desc)
        result.append(cache[key])
    return result
