"""Pinned benchmark scenarios for the simulator core.

Each scenario is a fixed, fully deterministic workload whose result can
be content-hashed, so a bench row proves two things at once: how fast
the simulator ran *and* that the optimisation being measured did not
change a single float.  The roster covers the three hot paths the
incremental-recompute work targets:

``colo4``
    The classic 4-worker co-location cell (a fig13a-shaped workload) at
    reduced scale — small enough for CI smoke runs.
``dense``
    A 48-worker KRISP-I cell at batch 1: ~45 resident kernels sharing
    60 CUs, the regime where the full O(all-residents) rate sweep is
    maximally wasteful.  This is the scenario the incremental path's
    speedup target is measured on.
``chaos``
    A guarded cell under the mixed fault schedule (crash + straggler +
    bandwidth spike + storm + perf-DB dropout), exercising the fault
    scale / bandwidth-regime dirty paths.
``maskgen``
    Pure Algorithm-1 stress: mask generation against churning per-CU
    counters, no DES at all.  Isolates the allocator.
``maskgen-pooled``
    The identical request stream served from the ECLIP-style mask pools
    (:mod:`repro.core.pools`) — profiled side by side with ``maskgen``,
    the allocator-phase delta is the pooled policy's overhead win.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.core.allocation import ResourceMaskGenerator
from repro.exp.cache import result_hash
from repro.exp.chaos import build_scenario
from repro.gpu.counters import CUKernelCounters
from repro.gpu.topology import GpuTopology
from repro.server.experiment import ExperimentConfig, run_experiment
from repro.server.options import RunOptions
from repro.server.slo import SloGuard
from repro.sim.rng import RngRegistry

__all__ = ["Scenario", "ScenarioRun", "SCENARIOS",
           "COLO4_CONFIG", "DENSE_CONFIG", "CHAOS_CONFIG", "CHAOS_GUARD",
           "chaos_faults"]

#: The pinned experiment cells, exposed as module constants so the audit
#: subsystem (:mod:`repro.check`) can replay exactly the benched cells
#: through other execution paths (pooled sweeps, the result cache, audit
#: hooks) without re-deriving them.  ``execute`` keeps using these same
#: objects, so the bench rows and the audit replays are one workload.
COLO4_CONFIG = ExperimentConfig(
    ("squeezenet",) * 4, policy="krisp-i", batch_size=8,
    seed=0, requests_scale=0.25)
DENSE_CONFIG = ExperimentConfig(
    ("squeezenet",) * 48, policy="krisp-i", batch_size=1,
    seed=0, requests_scale=0.015625)
CHAOS_CONFIG = COLO4_CONFIG
#: Fixed-deadline guard (rather than the SLO-derived default) so the
#: scenario's behaviour is pinned by this module alone.
CHAOS_GUARD = SloGuard(admission_depth=8, deadline=0.25,
                       max_retries=2, retry_backoff=1e-3)


def chaos_faults(config: ExperimentConfig = CHAOS_CONFIG):
    """The chaos scenario's fault schedule (deterministic in ``config``)."""
    return build_scenario("mixed", config)


@dataclass(frozen=True)
class ScenarioRun:
    """Outcome of one scenario execution (timing is the runner's job).

    ``batches`` is the number of distinct timestamps the engine visited
    (``Simulator.batches_drained``) — under equal-timestamp batching many
    events can share one instant, so honest throughput reporting needs
    both counts.  Non-DES scenarios (maskgen) report ``batches ==
    events``: every iteration is its own "instant".
    """

    result_hash: str
    events: int
    sim_time: float = 0.0
    batches: int = 0


@dataclass(frozen=True)
class Scenario:
    """A named, pinned benchmark workload.

    ``config`` (plus ``guard``/``faults_for`` when set) describes the
    experiment cell a DES-backed scenario runs, so differential checkers
    can replay the same cell through other execution paths; ``None`` for
    non-DES scenarios (maskgen).
    """

    name: str
    description: str
    execute: Callable[[], ScenarioRun]
    config: ExperimentConfig | None = None
    guard: SloGuard | None = None
    faults_for: Callable[[ExperimentConfig], object] | None = None


def _cell(config: ExperimentConfig, faults=None, guard=None) -> ScenarioRun:
    stats: dict = {}
    result = run_experiment(
        config, RunOptions(faults=faults, guard=guard), stats_out=stats)
    return ScenarioRun(
        result_hash=result_hash(result),
        events=stats["events_executed"],
        sim_time=stats["sim_time"],
        batches=stats.get("batches_drained", 0),
    )


def _run_colo4() -> ScenarioRun:
    return _cell(COLO4_CONFIG)


def _run_dense() -> ScenarioRun:
    return _cell(DENSE_CONFIG)


def _run_chaos() -> ScenarioRun:
    return _cell(CHAOS_CONFIG, faults=chaos_faults(CHAOS_CONFIG),
                 guard=CHAOS_GUARD)


def _churn_masks(allocator, iterations: int = 60_000) -> ScenarioRun:
    """Mask-churn core shared by ``maskgen`` and ``maskgen-pooled``.

    ``allocator`` is anything with ``generate(num_cus, counters)`` over
    the mi50 topology.  Both scenarios draw the identical request stream
    (same RNG label), so ``bench --profile maskgen maskgen-pooled``
    compares allocator-phase time on the same workload.  The per-mask
    work is timed into the profiler's ``allocator`` phase; with the
    profiler inactive the loop body is the historical one (the pinned
    maskgen hash is unchanged).
    """
    from repro.profiling import simprofile

    topology = allocator.topology
    counters = CUKernelCounters(topology)
    rng = RngRegistry(seed=0).stream("bench/maskgen")
    live: deque = deque()
    digest = hashlib.sha256()
    profiler = simprofile._ACTIVE
    if profiler is not None:
        from time import perf_counter
    for _ in range(iterations):
        num_cus = int(rng.integers(1, topology.total_cus + 1))
        if profiler is not None:
            t0 = perf_counter()
        mask = allocator.generate(num_cus, counters)
        if profiler is not None:
            profiler.add("allocator", perf_counter() - t0)
        counters.assign(mask)
        live.append(mask)
        digest.update(mask.bits.to_bytes(16, "little"))
        # Keep ~24 kernels resident so the allocator sees a loaded device.
        while len(live) > 24:
            counters.release(live.popleft())
    while live:
        counters.release(live.popleft())
    return ScenarioRun(result_hash=digest.hexdigest(), events=iterations,
                       batches=iterations)


def _run_maskgen() -> ScenarioRun:
    """Algorithm-1 churn: generate/retire masks against live counters."""
    topology = GpuTopology.mi50()
    return _churn_masks(ResourceMaskGenerator(topology, reshape=True))


def _run_maskgen_pooled() -> ScenarioRun:
    """The same churn served from ECLIP-style mask pools."""
    from repro.core.pools import PooledMaskAllocator

    topology = GpuTopology.mi50()
    allocator = PooledMaskAllocator(
        ResourceMaskGenerator(topology, reshape=True))
    return _churn_masks(allocator)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "colo4",
            "4-worker squeezenet co-location cell (CI smoke size)",
            _run_colo4,
            config=COLO4_CONFIG,
        ),
        Scenario(
            "dense",
            "48-worker batch-1 KRISP-I cell (incremental-recompute target)",
            _run_dense,
            config=DENSE_CONFIG,
        ),
        Scenario(
            "chaos",
            "guarded 4-worker cell under the mixed fault schedule",
            _run_chaos,
            config=CHAOS_CONFIG,
            guard=CHAOS_GUARD,
            faults_for=chaos_faults,
        ),
        Scenario(
            "maskgen",
            "Algorithm-1 mask generation against churning counters",
            _run_maskgen,
        ),
        Scenario(
            "maskgen-pooled",
            "pooled (ECLIP-style) mask selection on the maskgen stream",
            _run_maskgen_pooled,
        ),
    )
}
