"""Pinned benchmark scenarios for the simulator core.

Each scenario is a fixed, fully deterministic workload whose result can
be content-hashed, so a bench row proves two things at once: how fast
the simulator ran *and* that the optimisation being measured did not
change a single float.  The roster covers the three hot paths the
incremental-recompute work targets:

``colo4``
    The classic 4-worker co-location cell (a fig13a-shaped workload) at
    reduced scale — small enough for CI smoke runs.
``dense``
    A 48-worker KRISP-I cell at batch 1: ~45 resident kernels sharing
    60 CUs, the regime where the full O(all-residents) rate sweep is
    maximally wasteful.  This is the scenario the incremental path's
    speedup target is measured on.
``chaos``
    A guarded cell under the mixed fault schedule (crash + straggler +
    bandwidth spike + storm + perf-DB dropout), exercising the fault
    scale / bandwidth-regime dirty paths.
``maskgen``
    Pure Algorithm-1 stress: mask generation against churning per-CU
    counters, no DES at all.  Isolates the allocator.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.core.allocation import ResourceMaskGenerator
from repro.exp.cache import result_hash
from repro.exp.chaos import build_scenario
from repro.gpu.counters import CUKernelCounters
from repro.gpu.topology import GpuTopology
from repro.server.experiment import ExperimentConfig, run_experiment
from repro.server.slo import SloGuard
from repro.sim.rng import RngRegistry

__all__ = ["Scenario", "ScenarioRun", "SCENARIOS"]


@dataclass(frozen=True)
class ScenarioRun:
    """Outcome of one scenario execution (timing is the runner's job)."""

    result_hash: str
    events: int
    sim_time: float = 0.0


@dataclass(frozen=True)
class Scenario:
    """A named, pinned benchmark workload."""

    name: str
    description: str
    execute: Callable[[], ScenarioRun]


def _cell(config: ExperimentConfig, faults=None, guard=None) -> ScenarioRun:
    stats: dict = {}
    result = run_experiment(
        config, faults=faults, guard=guard, stats_out=stats)
    return ScenarioRun(
        result_hash=result_hash(result),
        events=stats["events_executed"],
        sim_time=stats["sim_time"],
    )


def _run_colo4() -> ScenarioRun:
    return _cell(ExperimentConfig(
        ("squeezenet",) * 4, policy="krisp-i", batch_size=8,
        seed=0, requests_scale=0.25))


def _run_dense() -> ScenarioRun:
    return _cell(ExperimentConfig(
        ("squeezenet",) * 48, policy="krisp-i", batch_size=1,
        seed=0, requests_scale=0.015625))


def _run_chaos() -> ScenarioRun:
    config = ExperimentConfig(
        ("squeezenet",) * 4, policy="krisp-i", batch_size=8,
        seed=0, requests_scale=0.25)
    # Fixed-deadline guard (rather than the SLO-derived default) so the
    # scenario's behaviour is pinned by this module alone.
    guard = SloGuard(admission_depth=8, deadline=0.25,
                     max_retries=2, retry_backoff=1e-3)
    return _cell(config, faults=build_scenario("mixed", config), guard=guard)


def _run_maskgen() -> ScenarioRun:
    """Algorithm-1 churn: generate/retire masks against live counters."""
    topology = GpuTopology.mi50()
    generator = ResourceMaskGenerator(topology, reshape=True)
    counters = CUKernelCounters(topology)
    rng = RngRegistry(seed=0).stream("bench/maskgen")
    live: deque = deque()
    digest = hashlib.sha256()
    iterations = 60_000
    for _ in range(iterations):
        num_cus = int(rng.integers(1, topology.total_cus + 1))
        mask = generator.generate(num_cus, counters)
        counters.assign(mask)
        live.append(mask)
        digest.update(mask.bits.to_bytes(16, "little"))
        # Keep ~24 kernels resident so Algorithm 1 sees a loaded device.
        while len(live) > 24:
            counters.release(live.popleft())
    while live:
        counters.release(live.popleft())
    return ScenarioRun(result_hash=digest.hexdigest(), events=iterations)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "colo4",
            "4-worker squeezenet co-location cell (CI smoke size)",
            _run_colo4,
        ),
        Scenario(
            "dense",
            "48-worker batch-1 KRISP-I cell (incremental-recompute target)",
            _run_dense,
        ),
        Scenario(
            "chaos",
            "guarded 4-worker cell under the mixed fault schedule",
            _run_chaos,
        ),
        Scenario(
            "maskgen",
            "Algorithm-1 mask generation against churning counters",
            _run_maskgen,
        ),
    )
}
