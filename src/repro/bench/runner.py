"""Benchmark runner: times pinned scenarios, emits ``BENCH_<rev>.json``.

A *row* is one (scenario, recompute-mode) measurement: best-of-N wall
time, engine events/second, and the run's result hash.  Because every
scenario is deterministic, the hash doubles as a correctness check — in
``compare`` mode the runner asserts the incremental and full-recompute
paths hashed identically before reporting a speedup.

Reports are plain JSON (:data:`BENCH_SCHEMA`) so future PRs can diff
them; :func:`check_report` implements the CI regression gate against a
committed baseline.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Sequence

import repro
from repro.bench.scenarios import SCENARIOS, ScenarioRun

__all__ = [
    "BENCH_SCHEMA",
    "BenchError",
    "BenchRow",
    "check_report",
    "run_bench",
    "run_scenario",
    "write_report",
]

BENCH_SCHEMA = 1

#: Modes map to the REPRO_FULL_RECOMPUTE device flag.
_MODES = {"incremental": "0", "full": "1"}


class BenchError(RuntimeError):
    """A bench invariant failed (hash mismatch, regression, bad input)."""


@dataclass(frozen=True)
class BenchRow:
    """One timed (scenario, mode) measurement."""

    scenario: str
    mode: str
    wall_s: float
    events: int
    events_per_s: float
    result_hash: str
    repeats: int


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def run_scenario(name: str, mode: str = "incremental",
                 repeats: int = 1) -> BenchRow:
    """Time one scenario ``repeats`` times and keep the best wall time.

    All repeats must produce the same result hash (the scenarios are
    deterministic); a mismatch raises :class:`BenchError`.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise BenchError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}")
    if mode not in _MODES:
        raise BenchError(f"unknown mode {mode!r}; available: {sorted(_MODES)}")
    if repeats < 1:
        raise BenchError("repeats must be >= 1")

    saved = os.environ.get("REPRO_FULL_RECOMPUTE")
    os.environ["REPRO_FULL_RECOMPUTE"] = _MODES[mode]
    try:
        best: Optional[float] = None
        run: Optional[ScenarioRun] = None
        for _ in range(repeats):
            start = time.perf_counter()
            this_run = scenario.execute()
            wall = time.perf_counter() - start
            if run is not None and this_run.result_hash != run.result_hash:
                raise BenchError(
                    f"{name}: non-deterministic result across repeats "
                    f"({run.result_hash[:16]} != {this_run.result_hash[:16]})")
            run = this_run
            if best is None or wall < best:
                best = wall
    finally:
        if saved is None:
            os.environ.pop("REPRO_FULL_RECOMPUTE", None)
        else:
            os.environ["REPRO_FULL_RECOMPUTE"] = saved

    assert run is not None and best is not None
    return BenchRow(
        scenario=name,
        mode=mode,
        wall_s=round(best, 4),
        events=run.events,
        events_per_s=round(run.events / best, 1) if best > 0 else 0.0,
        result_hash=run.result_hash,
        repeats=repeats,
    )


def run_bench(names: Optional[Sequence[str]] = None, *,
              compare: bool = False, repeats: int = 1) -> dict:
    """Run scenarios and return a schema-:data:`BENCH_SCHEMA` report.

    With ``compare=True`` each scenario is run in both recompute modes
    (incremental first, so the full mode inherits any warm in-process
    caches — biasing *against* the incremental path's speedup), the
    result hashes are asserted identical, and per-scenario speedups are
    reported.
    """
    names = list(names) if names else sorted(SCENARIOS)
    rows: list[BenchRow] = []
    speedups: dict[str, float] = {}
    for name in names:
        incremental = run_scenario(name, "incremental", repeats)
        rows.append(incremental)
        if compare:
            full = run_scenario(name, "full", repeats)
            rows.append(full)
            if full.result_hash != incremental.result_hash:
                raise BenchError(
                    f"{name}: incremental/full result hashes diverge "
                    f"({incremental.result_hash[:16]} != "
                    f"{full.result_hash[:16]}) — the incremental "
                    "recompute path broke bit-identity")
            if incremental.wall_s > 0:
                speedups[name] = round(full.wall_s / incremental.wall_s, 2)
    report = {
        "schema": BENCH_SCHEMA,
        "rev": _git_rev(),
        "version": repro.__version__,
        "python": sys.version.split()[0],
        "rows": [asdict(row) for row in rows],
    }
    if compare:
        report["speedups"] = speedups
    return report


def write_report(report: dict, path: str | Path) -> Path:
    """Write ``report`` as stable, diff-friendly JSON.  Returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def check_report(report: dict, baseline: dict, *,
                 max_regression: float = 0.30) -> list[str]:
    """Compare ``report`` rows against ``baseline`` rows.

    Returns a list of human-readable failures: any (scenario, mode) row
    whose wall time regressed more than ``max_regression`` (fractional)
    over the baseline row, plus schema problems.  An empty list means
    the gate passes.  Rows present on only one side are ignored (new
    scenarios must be benchable before they are gateable).
    """
    failures: list[str] = []
    if baseline.get("schema") != report.get("schema"):
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs report {report.get('schema')}")
        return failures
    base_rows = {(r["scenario"], r["mode"]): r
                 for r in baseline.get("rows", [])}
    for row in report.get("rows", []):
        base = base_rows.get((row["scenario"], row["mode"]))
        if base is None:
            continue
        limit = base["wall_s"] * (1.0 + max_regression)
        if row["wall_s"] > limit:
            failures.append(
                f"{row['scenario']}/{row['mode']}: wall {row['wall_s']:.3f}s "
                f"exceeds baseline {base['wall_s']:.3f}s "
                f"+{max_regression:.0%} (limit {limit:.3f}s)")
    return failures
