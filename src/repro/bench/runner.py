"""Benchmark runner: times pinned scenarios, emits ``BENCH_<rev>.json``.

A *row* is one (scenario, recompute-mode, queue) measurement: best-of-N
wall time, engine events/second, batches (distinct instants)/second, and
the run's result hash.  Because every scenario is deterministic, the
hash doubles as a correctness check — in ``compare`` mode the runner
asserts the incremental and full-recompute paths hashed identically
before reporting a speedup.

Throughput honesty: under equal-timestamp batching many events share one
instant, so ``events_per_s`` alone could silently flatter a change that
merely merges instants.  Every row therefore reports both ``events``
(callbacks executed) and ``batches`` (instants visited), with their
respective rates.

Reports are plain JSON (:data:`BENCH_SCHEMA`) so future PRs can diff
them; :func:`check_report` implements the CI regression gate against a
committed baseline, and :func:`default_baseline_path` locates the newest
committed ``BENCH_*.json`` at the repo root so ``bench --compare`` can
print deltas without an explicit path.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Sequence

import repro
from repro.bench.scenarios import SCENARIOS, ScenarioRun

__all__ = [
    "BENCH_SCHEMA",
    "BenchError",
    "BenchRow",
    "baseline_deltas",
    "check_report",
    "default_baseline_path",
    "profile_scenario",
    "run_bench",
    "run_scenario",
    "write_report",
]

#: Schema 2 adds ``batches`` / ``batches_per_s`` / ``queue`` to every row
#: (equal-timestamp batching honesty) and the ``recommended_modes``
#: per-scenario crossover verdict to compare reports.
BENCH_SCHEMA = 2

#: Recompute modes map to the device's ``REPRO_RECOMPUTE`` knob:
#: ``auto`` (incremental with the measured dirty-fraction crossover to
#: the full sweep), ``incremental`` (forced), ``full`` (forced sweep,
#: the bit-identity oracle).
_MODES = ("auto", "incremental", "full")

_QUEUES = ("auto", "heap", "calendar")


class BenchError(RuntimeError):
    """A bench invariant failed (hash mismatch, regression, bad input)."""


@dataclass(frozen=True)
class BenchRow:
    """One timed (scenario, mode, queue) measurement."""

    scenario: str
    mode: str
    queue: str
    wall_s: float
    events: int
    batches: int
    events_per_s: float
    batches_per_s: float
    result_hash: str
    repeats: int


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


class _env:
    """Temporarily set environment variables (None = leave unset)."""

    def __init__(self, **values: Optional[str]) -> None:
        self._values = {k: v for k, v in values.items() if v is not None}
        self._saved: dict[str, Optional[str]] = {}

    def __enter__(self) -> "_env":
        for key, value in self._values.items():
            self._saved[key] = os.environ.get(key)
            os.environ[key] = value
        return self

    def __exit__(self, *exc) -> None:
        for key, saved in self._saved.items():
            if saved is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = saved


def run_scenario(name: str, mode: str = "auto",
                 repeats: int = 1, queue: str = "auto") -> BenchRow:
    """Time one scenario ``repeats`` times and keep the best wall time.

    All repeats must produce the same result hash (the scenarios are
    deterministic); a mismatch raises :class:`BenchError`.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise BenchError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}")
    if mode not in _MODES:
        raise BenchError(f"unknown mode {mode!r}; available: {list(_MODES)}")
    if queue not in _QUEUES:
        raise BenchError(
            f"unknown queue {queue!r}; available: {list(_QUEUES)}")
    if repeats < 1:
        raise BenchError("repeats must be >= 1")

    best: Optional[float] = None
    run: Optional[ScenarioRun] = None
    with _env(REPRO_RECOMPUTE=mode, REPRO_SIM_QUEUE=queue):
        for _ in range(repeats):
            start = time.perf_counter()
            this_run = scenario.execute()
            wall = time.perf_counter() - start
            if run is not None and this_run.result_hash != run.result_hash:
                raise BenchError(
                    f"{name}: non-deterministic result across repeats "
                    f"({run.result_hash[:16]} != {this_run.result_hash[:16]})")
            run = this_run
            if best is None or wall < best:
                best = wall

    assert run is not None and best is not None
    return BenchRow(
        scenario=name,
        mode=mode,
        queue=queue,
        wall_s=round(best, 4),
        events=run.events,
        batches=run.batches,
        events_per_s=round(run.events / best, 1) if best > 0 else 0.0,
        batches_per_s=round(run.batches / best, 1) if best > 0 else 0.0,
        result_hash=run.result_hash,
        repeats=repeats,
    )


def profile_scenario(name: str, mode: str = "auto",
                     queue: str = "auto") -> dict:
    """Run ``name`` once under the per-phase profiler; return the breakdown.

    Profiled runs pay ~2 clock reads per event plus 2 per instrumented
    sub-phase, so the timings here show the *shape* of a run, not
    comparable absolute throughput — the plain rows stay unprofiled.
    """
    from repro.profiling import simprofile

    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise BenchError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}")
    simprofile.activate()
    try:
        with _env(REPRO_RECOMPUTE=mode, REPRO_SIM_QUEUE=queue):
            scenario.execute()
    finally:
        profiler = simprofile.deactivate()
    assert profiler is not None
    breakdown = profiler.breakdown()
    breakdown["scenario"] = name
    breakdown["mode"] = mode
    breakdown["queue"] = queue
    breakdown["formatted"] = profiler.format()
    return breakdown


def run_bench(names: Optional[Sequence[str]] = None, *,
              compare: bool = False, repeats: int = 1,
              queue: str = "auto") -> dict:
    """Run scenarios and return a schema-:data:`BENCH_SCHEMA` report.

    With ``compare=True`` each scenario is run in both forced recompute
    modes (incremental first, so the full mode inherits any warm
    in-process caches — biasing *against* the incremental path's
    speedup), the result hashes are asserted identical, per-scenario
    speedups are reported, and ``recommended_modes`` records which mode
    the measurement favours (the measured crossover behind the device's
    ``auto`` default).
    """
    names = list(names) if names else sorted(SCENARIOS)
    rows: list[BenchRow] = []
    speedups: dict[str, float] = {}
    recommended: dict[str, str] = {}
    for name in names:
        incremental = run_scenario(name, "incremental", repeats, queue)
        rows.append(incremental)
        if compare:
            full = run_scenario(name, "full", repeats, queue)
            rows.append(full)
            if full.result_hash != incremental.result_hash:
                raise BenchError(
                    f"{name}: incremental/full result hashes diverge "
                    f"({incremental.result_hash[:16]} != "
                    f"{full.result_hash[:16]}) — the incremental "
                    "recompute path broke bit-identity")
            if incremental.wall_s > 0:
                speedup = round(full.wall_s / incremental.wall_s, 2)
                speedups[name] = speedup
                recommended[name] = (
                    "incremental" if speedup >= 1.0 else "full")
    report = {
        "schema": BENCH_SCHEMA,
        "rev": _git_rev(),
        "version": repro.__version__,
        "python": sys.version.split()[0],
        "queue": queue,
        "rows": [asdict(row) for row in rows],
    }
    if compare:
        report["speedups"] = speedups
        report["recommended_modes"] = recommended
    return report


def write_report(report: dict, path: str | Path) -> Path:
    """Write ``report`` as stable, diff-friendly JSON.  Returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def _history_positions(root: Path) -> dict[str, int]:
    """Commit SHAs of ``root``'s first-parent history, oldest first."""
    try:
        out = subprocess.run(
            ["git", "rev-list", "--first-parent", "--reverse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=str(root),
        )
    except OSError:
        return {}
    if out.returncode != 0:
        return {}
    return {sha: index for index, sha in enumerate(out.stdout.split())}


def default_baseline_path(root: Optional[Path] = None) -> Optional[Path]:
    """Newest committed ``BENCH_*.json`` at the repo root, or ``None``.

    "Newest" is decided by content, never by directory order or mtime
    (fresh clones and CI checkouts materialise arbitrary mtimes): each
    candidate's embedded ``rev`` is ranked by its position in the repo's
    first-parent history, falling back to ``(schema, filename)`` for
    revs outside the history (or without git), so the same working tree
    always picks the same baseline.  Unreadable candidates rank last.
    An explicit ``--check`` path always overrides this discovery.
    """
    if root is None:
        candidate = Path(__file__).resolve().parents[3]
        if not (candidate / "pyproject.toml").exists():
            return None
        root = candidate
    benches = sorted(root.glob("BENCH_*.json"))
    if not benches:
        return None
    history = _history_positions(root)

    def rank(path: Path) -> tuple:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return (-1, -1, -1, path.name)
        rev = str(payload.get("rev", ""))
        position = -1
        if rev and rev != "unknown":
            for sha, index in history.items():
                if sha.startswith(rev):
                    position = index
                    break
        schema = payload.get("schema")
        if not isinstance(schema, int):
            schema = 0
        return (0 if position < 0 else 1, position, schema, path.name)

    return max(benches, key=rank)


def baseline_deltas(report: dict, baseline: dict) -> dict[str, float]:
    """Per-(scenario, mode) events/s ratio of ``report`` over ``baseline``.

    Keys are ``"scenario/mode"``; values > 1.0 mean the report is
    faster.  Works across schema versions (every schema's rows carry
    ``events_per_s``); rows present on only one side are skipped.
    """
    # ``.get`` throughout: a legacy schema-1 baseline predates several
    # row keys (``batches``, ``queue``), and a hand-edited one may lack
    # anything — comparison degrades to the rows both sides share.
    base_rows = {(r.get("scenario"), r.get("mode")): r
                 for r in baseline.get("rows", []) if isinstance(r, dict)}
    deltas: dict[str, float] = {}
    for row in report.get("rows", []):
        base = base_rows.get((row.get("scenario"), row.get("mode")))
        if base and base.get("events_per_s") and row.get("events_per_s"):
            deltas[f"{row['scenario']}/{row['mode']}"] = round(
                row["events_per_s"] / base["events_per_s"], 2)
    return deltas


def check_report(report: dict, baseline: dict, *,
                 max_regression: float = 0.30) -> list[str]:
    """Compare ``report`` rows against ``baseline`` rows.

    Returns a list of human-readable failures: any (scenario, mode) row
    whose wall time regressed more than ``max_regression`` (fractional)
    over the baseline row, plus schema problems.  An empty list means
    the gate passes.  Rows present on only one side are ignored (new
    scenarios must be benchable before they are gateable).
    """
    failures: list[str] = []
    if baseline.get("schema") != report.get("schema"):
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs report {report.get('schema')}")
        return failures
    base_rows = {(r.get("scenario"), r.get("mode")): r
                 for r in baseline.get("rows", []) if isinstance(r, dict)}
    for row in report.get("rows", []):
        base = base_rows.get((row.get("scenario"), row.get("mode")))
        if base is None or base.get("wall_s") is None:
            continue
        limit = base["wall_s"] * (1.0 + max_regression)
        if row["wall_s"] > limit:
            failures.append(
                f"{row['scenario']}/{row['mode']}: wall {row['wall_s']:.3f}s "
                f"exceeds baseline {base['wall_s']:.3f}s "
                f"+{max_regression:.0%} (limit {limit:.3f}s)")
    return failures
