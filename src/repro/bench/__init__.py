"""Microbenchmark harness for the simulator core (``krisp-repro bench``).

Pinned, deterministic scenarios (:mod:`repro.bench.scenarios`) timed by
:mod:`repro.bench.runner`, reporting wall time, events/second, and each
run's result hash so performance claims are always paired with a
bit-identity proof.
"""

from repro.bench.runner import (
    BENCH_SCHEMA,
    BenchError,
    BenchRow,
    baseline_deltas,
    check_report,
    default_baseline_path,
    profile_scenario,
    run_bench,
    run_scenario,
    write_report,
)
from repro.bench.scenarios import SCENARIOS, Scenario, ScenarioRun

__all__ = [
    "BENCH_SCHEMA",
    "BenchError",
    "BenchRow",
    "SCENARIOS",
    "Scenario",
    "ScenarioRun",
    "baseline_deltas",
    "check_report",
    "default_baseline_path",
    "profile_scenario",
    "run_bench",
    "run_scenario",
    "write_report",
]
