"""Kernel template builders with target minimum-CU requirements.

Each builder solves the dispatcher timing model *backwards*: given a
desired minimum-CU requirement and full-GPU duration, it picks a grid
shape (workgroups, occupancy, wave time) and a *flat share* — the
CU-count-independent bandwidth/serial portion — whose *profiled* minCU
lands on the target.  The flat share controls how steeply the kernel
degrades below its kneepoint: real GPU kernels lose only the compute
fraction when squeezed, which is why the paper's workloads survive
static 15-CU partitions (Table IV) despite much larger kneepoints.

Three behaviour classes cover the kernels of real inference models:

* :func:`compute_kernel` — single/multi-wave GEMM-like grid: latency is
  flat down to ``min_cus`` CUs, then the wave count steps up.
* :func:`full_gpu_kernel` — a grid sized to an exact multiple of the
  device's wave capacity (large direct convolutions): any restriction
  adds waves, so minCU is the whole device (the paper's
  ``gfx9_f3x2_fp32_stride1_group`` class), but a high flat share keeps
  the degradation shallow.
* :func:`streaming_kernel` — bandwidth-dominated kernels whose grid far
  exceeds the GPU's resident-thread limit yet tolerate severe CU
  restriction (the paper's ``MIOpenConvFFT_fwd_in`` class, Fig. 6a).
"""

from __future__ import annotations

from dataclasses import replace

from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology

__all__ = [
    "compute_kernel",
    "full_gpu_kernel",
    "streaming_kernel",
    "giant_streaming_kernel",
    "stretch_waves",
]

_MI50 = GpuTopology.mi50()


def _check_args(min_cus: int, duration: float, flat_frac: float,
                topology: GpuTopology) -> None:
    if not 1 <= min_cus <= topology.total_cus:
        raise ValueError(
            f"min_cus={min_cus} out of range [1, {topology.total_cus}]"
        )
    if duration <= 0:
        raise ValueError("duration must be > 0")
    if not 0.0 <= flat_frac < 1.0:
        raise ValueError("flat_frac must be in [0, 1)")


def compute_kernel(
    name: str,
    min_cus: int,
    duration: float,
    flat_frac: float = 0.3,
    occupancy: int = 2,
    threads_per_wg: int = 256,
    mem_intensity: float = 0.2,
    bytes_in: int = 0,
    topology: GpuTopology = _MI50,
) -> KernelDescriptor:
    """Single-wave compute kernel with the given target minCU.

    The grid holds exactly one wave on ``min_cus`` CUs
    (``workgroups = min_cus * occupancy``); latency is flat from
    ``min_cus`` upward and rises by the compute share
    (``1 - flat_frac``) per extra wave below it.
    """
    _check_args(min_cus, duration, flat_frac, topology)
    return KernelDescriptor(
        name=name,
        workgroups=min_cus * occupancy,
        threads_per_wg=threads_per_wg,
        wg_duration=duration * (1.0 - flat_frac),
        occupancy=occupancy,
        mem_intensity=mem_intensity,
        flat_time=duration * flat_frac,
        bytes_in=bytes_in,
    )


def full_gpu_kernel(
    name: str,
    duration: float,
    waves: int = 1,
    flat_frac: float = 0.65,
    occupancy: int = 4,
    threads_per_wg: int = 256,
    mem_intensity: float = 0.35,
    bytes_in: int = 0,
    topology: GpuTopology = _MI50,
) -> KernelDescriptor:
    """Kernel whose profiled minCU is the whole device.

    The grid is an exact multiple of the device's per-wave capacity, so
    removing any CU adds a wave regardless of allocation shape; the flat
    share bounds how bad severe restriction gets (at a quarter of the
    device: ``flat_frac + 4 * (1 - flat_frac)`` of the full latency).
    """
    if waves < 1:
        raise ValueError("waves must be >= 1")
    _check_args(topology.total_cus, duration, flat_frac, topology)
    return KernelDescriptor(
        name=name,
        workgroups=topology.total_cus * occupancy * waves,
        threads_per_wg=threads_per_wg,
        wg_duration=duration * (1.0 - flat_frac) / waves,
        occupancy=occupancy,
        mem_intensity=mem_intensity,
        flat_time=duration * flat_frac,
        bytes_in=bytes_in,
    )


def streaming_kernel(
    name: str,
    min_cus: int,
    duration: float,
    flat_frac: float = 0.7,
    occupancy: int = 8,
    threads_per_wg: int = 256,
    mem_intensity: float = 0.9,
    bytes_in: int = 0,
    topology: GpuTopology = _MI50,
) -> KernelDescriptor:
    """Bandwidth-dominated kernel tolerant of CU restriction.

    One wave on ``min_cus`` CUs at high occupancy: the thread count is
    far above the device's resident-thread limit for realistic shapes
    (``min_cus * occupancy * threads_per_wg``), yet only the small
    compute share grows when CUs are taken away — the Fig. 6a kernels
    that exceed the thread limit but need few CUs.
    """
    _check_args(min_cus, duration, flat_frac, topology)
    return KernelDescriptor(
        name=name,
        workgroups=min_cus * occupancy,
        threads_per_wg=threads_per_wg,
        wg_duration=duration * (1.0 - flat_frac),
        occupancy=occupancy,
        mem_intensity=mem_intensity,
        flat_time=duration * flat_frac,
        bytes_in=bytes_in,
    )


def giant_streaming_kernel(
    name: str,
    min_cus: int,
    duration: float,
    waves: int = 4,
    design_tolerance: float = 0.05,
    occupancy: int = 10,
    threads_per_wg: int = 256,
    mem_intensity: float = 0.95,
    bytes_in: int = 0,
    topology: GpuTopology = _MI50,
) -> KernelDescriptor:
    """Flat-dominated multi-wave grid far above the GPU thread limit.

    This is the ``MIOpenConvFFT_fwd_in`` class of paper Fig. 6a: the grid
    covers the device ``waves`` times over (hundreds of thousands of
    threads) yet the kernel is almost entirely bandwidth-bound, so its
    profiled minCU is tiny.  The wave share is solved so the latency
    crosses the profiler's tolerance right at ``min_cus``:
    ``wave_frac = design_tolerance / (total/min_cus - 1)``.
    """
    _check_args(min_cus, duration, 0.0, topology)
    if min_cus >= topology.total_cus:
        raise ValueError("giant streaming kernels need min_cus < total_cus")
    if waves < 1:
        raise ValueError("waves must be >= 1")
    wave_frac = design_tolerance / (topology.total_cus / min_cus - 1.0)
    if wave_frac >= 1.0:
        raise ValueError("min_cus too close to the device size")
    return KernelDescriptor(
        name=name,
        workgroups=topology.total_cus * occupancy * waves,
        threads_per_wg=threads_per_wg,
        wg_duration=duration * wave_frac / waves,
        occupancy=occupancy,
        mem_intensity=mem_intensity,
        flat_time=duration * (1.0 - wave_frac),
        bytes_in=bytes_in,
    )


def stretch_waves(desc: KernelDescriptor, waves: int) -> KernelDescriptor:
    """Stretch a single-wave compute grid to ``waves`` waves, preserving
    its total full-GPU duration.

    Only well-formed when the grid stays the bottleneck on the whole
    device, i.e. ``min_cus * waves > total_cus * (waves - 1)``; callers
    (the model zoo) enforce that.
    """
    if waves < 1:
        raise ValueError("waves must be >= 1")
    if waves == 1:
        return desc
    return replace(
        desc,
        workgroups=desc.workgroups * waves,
        wg_duration=desc.wg_duration / waves,
    )
