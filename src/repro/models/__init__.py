"""Synthetic inference-model substrate.

The paper evaluates eight PyTorch models (Table III) whose behaviour, for
KRISP's purposes, is fully characterised by their *kernel traces*: the
sequence of kernel launches per inference pass, each kernel's grid shape,
duration, occupancy, and memory-boundedness.  This package synthesises
those traces:

* :mod:`~repro.models.kernels` — template builders that construct kernel
  descriptors with a *target* minimum-CU requirement (compute-bound
  single-wave grids, full-GPU multi-wave grids, bandwidth-bound streaming
  kernels);
* :mod:`~repro.models.zoo` — the model zoo: per-model layer structures
  producing the exact Table III kernel counts, phase-structured minCU
  traces (Fig. 4), and batch-size scaling.

The traces are *calibrated* so that the profiled model right-sizes and
isolated latencies land near Table III — but minCU itself is always
measured by the profiler against the simulator, never hardcoded.
"""

from repro.models.zoo import (
    ALL_MODEL_NAMES,
    LLM_MODEL_NAMES,
    MODEL_NAMES,
    TABLE_III,
    LlmModelSpec,
    ModelSpec,
    get_model,
    llm_segments,
    vector_mul_kernel,
)

__all__ = [
    "ALL_MODEL_NAMES",
    "LLM_MODEL_NAMES",
    "MODEL_NAMES",
    "TABLE_III",
    "LlmModelSpec",
    "ModelSpec",
    "get_model",
    "llm_segments",
    "vector_mul_kernel",
]
