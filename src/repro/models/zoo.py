"""The inference model zoo (paper Table III workloads).

Each model is a :class:`ModelSpec`: an ordered tuple of
:class:`KernelSpec` templates that lower to concrete
:class:`~repro.gpu.kernel.KernelDescriptor` traces for a given batch size.
The structures mirror the real networks (transformer layers for albert,
bottleneck blocks for resnet152, fire modules for squeezenet, ...) and are
calibrated so that, at batch 32:

* the kernel count per inference pass matches Table III **exactly**;
* the profiled model-wise right-size lands near Table III;
* the isolated tail latency lands near Table III.

Durations, flat shares, and minimum-CU targets per kernel are the
calibration inputs; the minCU a kernel *actually* exhibits is always
measured by the profiler against the simulator.

Some models (alexnet prominently) spend a large fraction of their
inference wall clock in non-hidden host work between kernel bursts —
that is what lets them co-locate far beyond their CU kneepoint in the
paper's Table IV.  ``sync_gap`` on a template marks such a
stream-synchronising host pause, and :meth:`ModelSpec.segments` exposes
the resulting (kernel burst, host gap) structure to the server's workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology
from repro.models.kernels import (
    compute_kernel,
    full_gpu_kernel,
    giant_streaming_kernel,
    streaming_kernel,
    stretch_waves,
)

__all__ = [
    "KernelSpec",
    "ModelSpec",
    "LlmModelSpec",
    "MODEL_NAMES",
    "ALL_MODEL_NAMES",
    "LLM_MODEL_NAMES",
    "TABLE_III",
    "get_model",
    "llm_segments",
    "vector_mul_kernel",
]

_MI50 = GpuTopology.mi50()
_MB = 1 << 20

#: Paper Table III: (kernel calls, model right-size CUs, isolated p95 ms).
TABLE_III: dict[str, tuple[int, int, float]] = {
    "albert": (304, 12, 27.0),
    "alexnet": (34, 45, 91.0),
    "densenet201": (711, 32, 72.0),
    "resnet152": (517, 26, 11.0),
    "resnext101": (347, 55, 154.0),
    "shufflenet": (211, 21, 8.0),
    "squeezenet": (90, 21, 8.0),
    "vgg19": (62, 60, 81.0),
}

#: The eight Table III evaluation models, in the paper's order.
MODEL_NAMES: tuple[str, ...] = tuple(TABLE_III)

#: Evaluation models plus the ninth Fig. 3 sensitivity model.
ALL_MODEL_NAMES: tuple[str, ...] = MODEL_NAMES + ("mobilenet",)


#: Canonical instance per distinct descriptor value (see
#: :meth:`KernelSpec.build`).  Bounded by the number of distinct
#: (spec, scale, topology) combinations a process touches.
_DESC_INTERN: dict = {}


@dataclass(frozen=True)
class KernelSpec:
    """One kernel template inside a model trace.

    ``style`` selects the builder: ``compute`` (single/multi-wave
    GEMM-like grid with a target minCU), ``full`` (needs the whole
    device), ``stream`` (bandwidth-bound, restriction-tolerant), or
    ``giant`` (flat-dominated grid far above the thread limit).
    ``duration`` is the full-GPU latency at batch 32; ``flat`` is the
    CU-count-independent share; ``waves`` applies to compute/full styles.
    """

    style: str
    name: str
    duration: float
    min_cus: int = 60
    waves: int = 1
    flat: float = 0.3
    mem: float = 0.3
    bytes_in: int = 0
    #: Host-side time after this kernel *completes*: the worker
    #: synchronises the stream and does CPU work / memcpys before
    #: launching further kernels.
    sync_gap: float = 0.0

    def build(self, scale: float,
              topology: GpuTopology = _MI50) -> KernelDescriptor:
        """Lower to a concrete descriptor at batch scale ``scale``.

        The result is *interned*: equal descriptors built by different
        workers (each worker lowers its own trace) collapse onto one
        canonical instance, so the device/right-sizer/allocator memo
        dicts resolve keys by identity instead of 8-field dataclass
        equality on every serving-loop lookup.
        """
        desc = self._build_raw(scale, topology)
        return _DESC_INTERN.setdefault(desc, desc)

    def _build_raw(self, scale: float,
                   topology: GpuTopology = _MI50) -> KernelDescriptor:
        bytes_in = max(0, round(self.bytes_in * scale))
        if self.style == "compute":
            min_cus = max(1, min(topology.total_cus,
                                 round(self.min_cus * scale)))
            waves = self.waves
            # Multi-wave compute grids are only well formed when
            # min_cus * waves > total * (waves - 1); shed waves as the
            # batch shrinks the grid.
            while waves > 1 and min_cus * waves <= topology.total_cus * (waves - 1):
                waves -= 1
            base = compute_kernel(
                self.name, min_cus, self.duration, flat_frac=self.flat,
                mem_intensity=self.mem, bytes_in=bytes_in,
                topology=topology,
            )
            return stretch_waves(base, waves)
        if self.style == "full":
            scaled_waves = self.waves * scale
            if scaled_waves >= 0.75:
                waves = max(1, round(scaled_waves))
                return full_gpu_kernel(
                    self.name, self.duration * waves / self.waves,
                    waves=waves, flat_frac=self.flat,
                    mem_intensity=self.mem, bytes_in=bytes_in,
                    topology=topology,
                )
            # Less than one full wave of work: degrade to a partial grid.
            min_cus = max(1, round(topology.total_cus * scaled_waves))
            return compute_kernel(
                self.name, min_cus, self.duration / self.waves,
                flat_frac=self.flat, mem_intensity=self.mem,
                bytes_in=bytes_in, topology=topology,
            )
        if self.style == "stream":
            return streaming_kernel(
                self.name, self.min_cus, self.duration * scale,
                flat_frac=self.flat, mem_intensity=self.mem,
                bytes_in=bytes_in, topology=topology,
            )
        if self.style == "giant":
            return giant_streaming_kernel(
                self.name, self.min_cus, self.duration * scale,
                mem_intensity=self.mem, bytes_in=bytes_in,
                topology=topology,
            )
        raise ValueError(f"unknown kernel style {self.style!r}")


# -- per-model structure builders ------------------------------------------
# Shorthand constructors keep the layer definitions close to the real
# network structures.

def C(name: str, min_cus: int, duration: float, waves: int = 1,
      flat: float = 0.3, mem: float = 0.2, mb: float = 4.0,
      gap: float = 0.0) -> KernelSpec:
    """Compute-bound kernel (GEMM / Winograd conv)."""
    return KernelSpec("compute", name, duration, min_cus=min_cus,
                      waves=waves, flat=flat, mem=mem,
                      bytes_in=round(mb * _MB), sync_gap=gap)


def F(name: str, duration: float, waves: int = 1, flat: float = 0.65,
      mem: float = 0.35, mb: float = 8.0, gap: float = 0.0) -> KernelSpec:
    """Full-GPU kernel (large direct/grouped convolution)."""
    return KernelSpec("full", name, duration, waves=waves, flat=flat,
                      mem=mem, bytes_in=round(mb * _MB), sync_gap=gap)


def S(name: str, min_cus: int, duration: float, flat: float = 0.7,
      mem: float = 0.9, mb: float = 16.0, gap: float = 0.0) -> KernelSpec:
    """Streaming kernel (elementwise / norm / pooling / data movement)."""
    return KernelSpec("stream", name, duration, min_cus=min_cus, flat=flat,
                      mem=mem, bytes_in=round(mb * _MB), sync_gap=gap)


def G(name: str, min_cus: int, duration: float, mem: float = 0.95,
      mb: float = 32.0, gap: float = 0.0) -> KernelSpec:
    """Giant bandwidth-dominated kernel (im2col / FFT transforms):
    hundreds of thousands of threads, tiny minimum-CU requirement."""
    return KernelSpec("giant", name, duration, min_cus=min_cus, mem=mem,
                      bytes_in=round(mb * _MB), sync_gap=gap)


def _albert() -> list[KernelSpec]:
    """ALBERT: 4 embedding kernels + 12 transformer layers x 25 = 304."""
    us = 1e-6
    embed = [
        S("gatherKernel", 6, 30 * us, mb=12),
        S("gatherKernel", 6, 30 * us, mb=12),
        S("MIOpenLayerNormFwd", 6, 20 * us, mb=8),
        S("addTensorKernel", 4, 20 * us, mb=8),
    ]
    layer: list[KernelSpec] = []
    for proj in ("q", "k", "v"):
        layer.append(C(f"Cijk_Ailk_Bljk_SB_MT64x64_{proj}proj", 12,
                       200 * us, mb=9))
    layer += [
        F("batched_gemm_attn_scores", 18 * us, flat=0.5, mb=6),
        S("softmaxForward", 8, 50 * us, mb=6),
        F("batched_gemm_attn_context", 18 * us, flat=0.5, mb=6),
        C("Cijk_Ailk_Bljk_SB_MT64x64_attnout", 12, 200 * us, mb=9),
        S("addTensorKernel", 4, 33 * us, mb=8),
        S("MIOpenLayerNormFwd", 6, 40 * us, mb=8),
        C("Cijk_Ailk_Bljk_SB_MT128x64_ffn1", 12, 350 * us, mb=36),
        S("geluKernel", 4, 33 * us, mb=32),
        C("Cijk_Ailk_Bljk_SB_MT128x64_ffn2", 12, 350 * us, mb=36),
        S("addTensorKernel", 4, 33 * us, mb=8),
        S("MIOpenLayerNormFwd", 6, 40 * us, mb=8),
    ]
    layer += [S("elementWiseKernel", 4, 33 * us, mb=8) for _ in range(11)]
    assert len(layer) == 25
    return embed + layer * 12


def _alexnet() -> list[KernelSpec]:
    """AlexNet: 5 conv stages + 3 FC layers = 34 kernels.

    Roughly half of alexnet's inference wall clock is non-hidden host
    time (LRN-era network with synchronising ops and large activations to
    shuttle), encoded as sync gaps — this is what lets every policy
    co-locate 4 alexnet workers in the paper's Table IV.
    """
    ms = 1e-3
    conv_cfg = [  # (duration_ms, im2col_mb, gap_after_stage_ms)
        (9.0, 40, 6.0), (8.0, 28, 6.0), (6.0, 18, 6.0),
        (4.0, 12, 5.0), (3.0, 10, 5.0),
    ]
    trace: list[KernelSpec] = []
    for i, (dur, mb, gap) in enumerate(conv_cfg):
        trace.append(G("im2col_gpu_kernel", 10, 0.4 * ms, mb=mb))
        trace.append(C(f"Cijk_Ailk_Bljk_SB_MT128x128_conv{i}", 45, dur * ms,
                       waves=2, flat=0.4, mb=mb))
        trace.append(S("reluKernel", 6, 0.25 * ms, mb=mb, gap=gap * ms))
    trace.insert(3, S("LRNForward", 8, 0.8 * ms, mb=20))
    trace.insert(7, S("LRNForward", 8, 0.8 * ms, mb=14))
    for pos, mb in ((8, 20), (13, 12), (18, 8)):
        trace.insert(pos, S("MaxPoolForward", 8, 0.3 * ms, mb=mb))
    trace += [
        S("AvgPoolForward", 6, 0.15 * ms, mb=6),
        S("flattenKernel", 4, 0.1 * ms, mb=6),
        S("dropoutKernel", 4, 0.1 * ms, mb=6),
        C("Cijk_Ailk_Bljk_SB_MT64x64_fc6", 40, 2.6 * ms, flat=0.5, mb=36,
          gap=6.0 * ms),
        S("addBiasRelu", 4, 0.1 * ms, mb=2),
        S("dropoutKernel", 4, 0.1 * ms, mb=2),
        C("Cijk_Ailk_Bljk_SB_MT64x64_fc7", 40, 2.6 * ms, flat=0.5, mb=16,
          gap=6.0 * ms),
        S("addBiasRelu", 4, 0.1 * ms, mb=2),
        C("Cijk_Ailk_Bljk_SB_MT64x64_fc8", 30, 1.5 * ms, flat=0.5, mb=4),
        S("addBiasRelu", 4, 0.05 * ms, mb=1),
        S("softmaxForward", 4, 0.05 * ms, mb=0.2),
        S("copyBufferKernel", 4, 0.05 * ms, mb=1),
        S("copyBufferKernel", 4, 0.05 * ms, mb=1),
        S("elementWiseKernel", 4, 0.05 * ms, mb=1, gap=5.0 * ms),
    ]
    assert len(trace) == 34, len(trace)
    return trace


def _densenet201() -> list[KernelSpec]:
    """DenseNet-201: stem 4 + 98 dense layers x 7 + 3 transitions x 6 +
    head 3 = 711 kernels."""
    us = 1e-6
    stem = [
        F("miopenSp3AsmConv_v21_1_2_stem", 900 * us, waves=2, mb=38),
        S("MIOpenBatchNormFwdInference", 8, 40 * us, mb=38),
        S("reluKernel", 4, 25 * us, mb=38),
        S("MaxPoolForward", 8, 60 * us, mb=20),
    ]
    def dense_layer(block: int) -> list[KernelSpec]:
        return [
            S("MIOpenBatchNormFwdInference", 8, 25 * us, mb=12),
            S("reluKernel", 4, 15 * us, mb=12),
            C(f"Cijk_Ailk_Bljk_SB_MT64x64_dense{block}_1x1", 32,
              250 * us, flat=0.35, mb=10),
            S("MIOpenBatchNormFwdInference", 8, 20 * us, mb=6),
            S("reluKernel", 4, 12 * us, mb=6),
            C(f"miopenSp3AsmConv_dense{block}_3x3", 32, 350 * us,
              flat=0.35, mb=8),
            S("concatKernel", 6, 22 * us, mb=14),
        ]
    def transition() -> list[KernelSpec]:
        return [
            S("MIOpenBatchNormFwdInference", 8, 30 * us, mb=16),
            S("reluKernel", 4, 18 * us, mb=16),
            C("Cijk_Ailk_Bljk_SB_MT64x64_trans_1x1", 32, 300 * us,
              flat=0.35, mb=14),
            S("AvgPoolForward", 8, 40 * us, mb=10),
            S("MIOpenBatchNormFwdInference", 8, 25 * us, mb=8),
            S("reluKernel", 4, 15 * us, mb=8),
        ]
    trace = list(stem)
    for block, layers in enumerate((6, 12, 48, 32)):
        for _ in range(layers):
            trace += dense_layer(block)
        if block < 3:
            trace += transition()
    trace += [
        S("AvgPoolForward", 6, 40 * us, mb=4),
        C("Cijk_Ailk_Bljk_SB_MT64x64_classifier", 20, 150 * us, mb=6),
        S("softmaxForward", 4, 15 * us, mb=0.2),
    ]
    assert len(trace) == 711, len(trace)
    return trace


def _resnet152() -> list[KernelSpec]:
    """ResNet-152: stem 4 + 50 bottlenecks x 10 + 8 downsample + head 3 +
    2 data kernels = 517."""
    us = 1e-6
    stem = [
        F("miopenSp3AsmConv_v21_1_2_stem", 300 * us, mb=38),
        S("MIOpenBatchNormFwdInference", 8, 12 * us, mb=38),
        S("reluKernel", 4, 8 * us, mb=38),
        S("MaxPoolForward", 8, 15 * us, mb=20),
    ]
    def bottleneck(stage: int) -> list[KernelSpec]:
        return [
            C(f"Cijk_Ailk_Bljk_SB_MT64x64_res{stage}_1x1a", 26, 29 * us,
              flat=0.45, mb=6),
            S("MIOpenBatchNormFwdInference", 8, 6 * us, mb=6),
            S("reluKernel", 4, 4 * us, mb=6),
            C(f"miopenSp3AsmConv_res{stage}_3x3", 26, 52 * us,
              flat=0.45, mb=8),
            S("MIOpenBatchNormFwdInference", 8, 6 * us, mb=6),
            S("reluKernel", 4, 4 * us, mb=6),
            C(f"Cijk_Ailk_Bljk_SB_MT64x64_res{stage}_1x1b", 26, 29 * us,
              flat=0.45, mb=6),
            S("MIOpenBatchNormFwdInference", 8, 6 * us, mb=6),
            S("addTensorKernel", 4, 5 * us, mb=6),
            S("reluKernel", 4, 4 * us, mb=6),
        ]
    trace = list(stem)
    for stage, blocks in enumerate((3, 8, 36, 3)):
        for _ in range(blocks):
            trace += bottleneck(stage)
        trace += [
            C(f"Cijk_Ailk_Bljk_SB_MT64x64_down{stage}", 26, 38 * us,
              flat=0.45, mb=8),
            S("MIOpenBatchNormFwdInference", 8, 6 * us, mb=8),
        ]
    trace += [
        S("AvgPoolForward", 6, 10 * us, mb=2),
        C("Cijk_Ailk_Bljk_SB_MT64x64_classifier", 20, 40 * us, mb=8),
        S("softmaxForward", 4, 5 * us, mb=0.2),
        S("copyBufferKernel", 4, 6 * us, mb=4),
        S("copyBufferKernel", 4, 6 * us, mb=4),
    ]
    assert len(trace) == 517, len(trace)
    return trace


def _resnext101() -> list[KernelSpec]:
    """ResNeXt-101 (32x8d): stem 4 + 33 blocks x 10 + 8 downsample +
    head 3 + 2 = 347."""
    us = 1e-6
    ms = 1e-3
    stem = [
        F("miopenSp3AsmConv_v21_1_2_stem", 1.6 * ms, waves=2, mb=38),
        S("MIOpenBatchNormFwdInference", 8, 40 * us, mb=38),
        S("reluKernel", 4, 25 * us, mb=38),
        S("MaxPoolForward", 8, 50 * us, mb=20),
    ]
    def block(stage: int) -> list[KernelSpec]:
        return [
            C(f"Cijk_Ailk_Bljk_SB_MT64x64_next{stage}_1x1a", 30,
              150 * us, flat=0.45, mb=10),
            S("MIOpenBatchNormFwdInference", 8, 20 * us, mb=10),
            S("reluKernel", 4, 12 * us, mb=10),
            C(f"gfx9_f3x2_fp32_stride1_group{stage}", 55, 4.1 * ms,
              waves=3, flat=0.68, mem=0.35, mb=14),
            S("MIOpenBatchNormFwdInference", 8, 20 * us, mb=10),
            S("reluKernel", 4, 12 * us, mb=10),
            C(f"Cijk_Ailk_Bljk_SB_MT64x64_next{stage}_1x1b", 30,
              150 * us, flat=0.45, mb=10),
            S("MIOpenBatchNormFwdInference", 8, 20 * us, mb=10),
            S("addTensorKernel", 4, 15 * us, mb=10),
            S("reluKernel", 4, 12 * us, mb=10),
        ]
    trace = list(stem)
    for stage, blocks in enumerate((3, 4, 23, 3)):
        for _ in range(blocks):
            trace += block(stage)
        trace += [
            C(f"Cijk_Ailk_Bljk_SB_MT64x64_nextdown{stage}", 30,
              200 * us, flat=0.45, mb=12),
            S("MIOpenBatchNormFwdInference", 8, 20 * us, mb=12),
        ]
    trace += [
        S("AvgPoolForward", 6, 30 * us, mb=3),
        C("Cijk_Ailk_Bljk_SB_MT64x64_classifier", 20, 100 * us, mb=8),
        S("softmaxForward", 4, 10 * us, mb=0.2),
        S("copyBufferKernel", 4, 12 * us, mb=6),
        S("copyBufferKernel", 4, 12 * us, mb=6),
    ]
    assert len(trace) == 347, len(trace)
    return trace


def _shufflenet() -> list[KernelSpec]:
    """ShuffleNet-v2: stem 5 + 16 blocks x 12 + head 14 = 211."""
    us = 1e-6
    stem = [
        C("miopenSp3AsmConv_stem", 24, 120 * us, flat=0.4, mb=20),
        S("MIOpenBatchNormFwdInference", 8, 10 * us, mb=20),
        S("reluKernel", 4, 6 * us, mb=20),
        S("MaxPoolForward", 8, 12 * us, mb=10),
        S("channelSplitKernel", 4, 8 * us, mb=10),
    ]
    def block(stage: int) -> list[KernelSpec]:
        return [
            C(f"Cijk_Ailk_Bljk_SB_MT32x32_shuffle{stage}a", 21, 130 * us,
              flat=0.4, mb=5),
            S("MIOpenBatchNormFwdInference", 8, 8 * us, mb=5),
            S("reluKernel", 4, 5 * us, mb=5),
            S("depthwiseConvKernel", 12, 45 * us, mb=5),
            S("MIOpenBatchNormFwdInference", 8, 8 * us, mb=5),
            C(f"Cijk_Ailk_Bljk_SB_MT32x32_shuffle{stage}b", 21, 130 * us,
              flat=0.4, mb=5),
            S("MIOpenBatchNormFwdInference", 8, 8 * us, mb=5),
            S("reluKernel", 4, 5 * us, mb=5),
            S("channelSplitKernel", 4, 6 * us, mb=5),
            S("concatKernel", 6, 8 * us, mb=5),
            S("channelShuffleKernel", 6, 10 * us, mb=5),
            S("copyBufferKernel", 4, 5 * us, mb=5),
        ]
    trace = list(stem)
    for stage, blocks in enumerate((4, 8, 4)):
        for _ in range(blocks):
            trace += block(stage)
    trace += [
        C("Cijk_Ailk_Bljk_SB_MT32x32_convlast", 21, 120 * us, flat=0.4, mb=6),
        S("MIOpenBatchNormFwdInference", 8, 10 * us, mb=6),
        S("reluKernel", 4, 6 * us, mb=6),
        S("AvgPoolForward", 6, 10 * us, mb=2),
        C("Cijk_Ailk_Bljk_SB_MT32x32_classifier", 15, 50 * us, flat=0.4, mb=4),
        S("softmaxForward", 4, 5 * us, mb=0.2),
    ] + [S("elementWiseKernel", 4, 6 * us, mb=2) for _ in range(8)]
    assert len(trace) == 211, len(trace)
    return trace


def _squeezenet() -> list[KernelSpec]:
    """SqueezeNet 1.1: stem 3 + 8 fire modules x 10 + head 7 = 90."""
    us = 1e-6
    stem = [
        C("miopenSp3AsmConv_stem", 30, 500 * us, flat=0.4, mb=30),
        S("reluKernel", 4, 20 * us, mb=30),
        S("MaxPoolForward", 8, 40 * us, mb=15),
    ]
    def fire(index: int) -> list[KernelSpec]:
        return [
            C(f"Cijk_Ailk_Bljk_SB_MT32x32_fire{index}_squeeze", 21,
              180 * us, flat=0.4, mb=6),
            S("reluKernel", 4, 12 * us, mb=6),
            C(f"Cijk_Ailk_Bljk_SB_MT32x32_fire{index}_expand1", 21,
              200 * us, flat=0.4, mb=8),
            S("reluKernel", 4, 12 * us, mb=8),
            C(f"miopenSp3AsmConv_fire{index}_expand3", 21, 280 * us,
              flat=0.4, mb=10),
            S("reluKernel", 4, 12 * us, mb=10),
            S("concatKernel", 6, 15 * us, mb=12),
            S("elementWiseKernel", 4, 8 * us, mb=4),
            S("copyBufferKernel", 4, 8 * us, mb=4),
            S("elementWiseKernel", 4, 8 * us, mb=4),
        ]
    trace = list(stem)
    for index in range(8):
        trace += fire(index)
    trace += [
        S("dropoutKernel", 4, 10 * us, mb=4),
        C("Cijk_Ailk_Bljk_SB_MT32x32_conv10", 21, 400 * us, flat=0.4, mb=8),
        S("reluKernel", 4, 12 * us, mb=8),
        S("AvgPoolForward", 6, 15 * us, mb=2),
        S("flattenKernel", 4, 5 * us, mb=1),
        S("softmaxForward", 4, 5 * us, mb=0.2),
        S("copyBufferKernel", 4, 6 * us, mb=1),
    ]
    assert len(trace) == 90, len(trace)
    return trace


def _vgg19() -> list[KernelSpec]:
    """VGG-19: 16 conv stages x 3 + 5 pools + 3 FC x 2 + head 3 = 62."""
    ms = 1e-3
    # Conv full-GPU durations roughly track VGG's per-layer FLOPs profile.
    conv_durations = [2.2, 5.0, 4.2, 6.5, 5.5, 5.5, 5.5, 5.0,
                      4.8, 4.8, 4.8, 4.0, 2.2, 2.2, 2.2, 2.0]
    trace: list[KernelSpec] = []
    pool_after = {1, 3, 7, 11, 15}
    for i, dur in enumerate(conv_durations):
        waves = 3 if dur > 4.5 else 2
        trace += [
            G("im2col_gpu_kernel", 10, 0.5 * ms, mb=60),
            F(f"MIOpenConvFFT_fwd_in_vgg{i}", dur * ms, waves=waves, flat=0.72, mb=60),
            S("reluKernel", 6, 0.1 * ms, mb=40),
        ]
        if i in pool_after:
            trace.append(S("MaxPoolForward", 8, 0.2 * ms, mb=30))
    trace += [
        C("Cijk_Ailk_Bljk_SB_MT128x128_fc6", 40, 0.9 * ms, flat=0.5, mb=100),
        S("addBiasRelu", 4, 0.05 * ms, mb=2),
        C("Cijk_Ailk_Bljk_SB_MT128x128_fc7", 40, 0.7 * ms, flat=0.5, mb=70),
        S("addBiasRelu", 4, 0.05 * ms, mb=2),
        C("Cijk_Ailk_Bljk_SB_MT64x64_fc8", 30, 0.4 * ms, flat=0.5, mb=18),
        S("addBiasRelu", 4, 0.05 * ms, mb=1),
        S("flattenKernel", 4, 0.05 * ms, mb=3),
        S("softmaxForward", 4, 0.05 * ms, mb=0.2),
        S("copyBufferKernel", 4, 0.05 * ms, mb=1),
    ]
    assert len(trace) == 62, len(trace)
    return trace


def _mobilenet() -> list[KernelSpec]:
    """MobileNet-v2-like ninth model for the Fig. 3 sensitivity sweep."""
    us = 1e-6
    stem = [
        C("miopenSp3AsmConv_stem", 16, 80 * us, flat=0.4, mb=16),
        S("MIOpenBatchNormFwdInference", 8, 8 * us, mb=16),
        S("relu6Kernel", 4, 5 * us, mb=16),
    ]
    def inverted_residual(stage: int) -> list[KernelSpec]:
        return [
            C(f"Cijk_Ailk_Bljk_SB_MT32x32_mb{stage}_expand", 10, 40 * us,
              flat=0.4, mb=4),
            S("MIOpenBatchNormFwdInference", 8, 6 * us, mb=4),
            S("relu6Kernel", 4, 4 * us, mb=4),
            S("depthwiseConvKernel", 8, 30 * us, mb=4),
            S("MIOpenBatchNormFwdInference", 8, 6 * us, mb=4),
            S("relu6Kernel", 4, 4 * us, mb=4),
            C(f"Cijk_Ailk_Bljk_SB_MT32x32_mb{stage}_project", 10, 40 * us,
              flat=0.4, mb=4),
            S("MIOpenBatchNormFwdInference", 8, 6 * us, mb=4),
            S("addTensorKernel", 4, 5 * us, mb=4),
        ]
    trace = list(stem)
    for stage in range(16):
        trace += inverted_residual(stage % 4)
    trace += [
        C("Cijk_Ailk_Bljk_SB_MT32x32_convlast", 12, 60 * us, flat=0.4, mb=5),
        S("AvgPoolForward", 6, 8 * us, mb=1),
        C("Cijk_Ailk_Bljk_SB_MT32x32_classifier", 10, 30 * us, flat=0.4, mb=3),
        S("softmaxForward", 4, 4 * us, mb=0.2),
        S("copyBufferKernel", 4, 5 * us, mb=1),
    ]
    return trace


# -- LLM-phase models (KernelSight-LM shape) --------------------------------
# Generative LLM serving has two kernel-level phases: *prefill* processes
# the whole prompt in compute-bound GEMMs (high minCU — right-sizing
# should give these most of the GPU), while *decode* emits one token per
# pass through bandwidth-bound GEMV/attention-read kernels (low minCU —
# they tolerate tight partitions).  Per-phase minCU right-sizing falls
# out of the existing kernel profiler; the decode block repeats once per
# output token, with a sync gap after the sampling kernel (the host
# samples the next token between passes).  Decode kernel names are
# stable across tokens, so one perf DB covers every output length.

def _llm_tiny() -> tuple[list[KernelSpec], list[KernelSpec], int]:
    """A CI-sized chat model: 6 prefill + 4 decode kernels/token."""
    us = 1e-6
    prefill = [
        S("embedLookupKernel", 6, 20 * us, mb=8),
        C("Cijk_Ailk_Bljk_SB_MT128x128_qkv_prefill", 52, 250 * us,
          flat=0.35, mem=0.25, mb=24),
        F("flashAttentionFwd_prefill", 120 * us, flat=0.5, mb=16),
        C("Cijk_Ailk_Bljk_SB_MT128x128_attnout_prefill", 48, 180 * us,
          flat=0.35, mb=16),
        C("Cijk_Ailk_Bljk_SB_MT128x128_ffn1_prefill", 52, 350 * us,
          flat=0.35, mb=48),
        C("Cijk_Ailk_Bljk_SB_MT128x128_ffn2_prefill", 52, 350 * us,
          flat=0.35, mb=48, gap=40 * us),
    ]
    decode = [
        S("gemvKernel_qkv_decode", 6, 40 * us, mb=24),
        G("pagedAttentionKernel_decode", 8, 50 * us, mb=32),
        S("gemvKernel_ffn_decode", 6, 60 * us, mb=48),
        S("sampleTokenKernel", 4, 10 * us, mb=1, gap=20 * us),
    ]
    return prefill, decode, 4


def _llm_8b() -> tuple[list[KernelSpec], list[KernelSpec], int]:
    """An 8B-class model: 4 transformer layers of prefill GEMMs + a
    6-kernel decode pass per output token."""
    us = 1e-6
    prefill: list[KernelSpec] = [S("embedLookupKernel", 6, 30 * us, mb=16)]
    for layer in range(4):
        prefill += [
            C(f"Cijk_Ailk_Bljk_SB_MT128x128_l{layer}_qkv_prefill", 54,
              400 * us, flat=0.35, mem=0.25, mb=36),
            F(f"flashAttentionFwd_l{layer}_prefill", 200 * us,
              flat=0.5, mb=24),
            C(f"Cijk_Ailk_Bljk_SB_MT128x128_l{layer}_attnout_prefill", 48,
              300 * us, flat=0.35, mb=24),
            C(f"Cijk_Ailk_Bljk_SB_MT128x128_l{layer}_ffn1_prefill", 54,
              600 * us, flat=0.35, mb=64),
            C(f"Cijk_Ailk_Bljk_SB_MT128x128_l{layer}_ffn2_prefill", 54,
              600 * us, flat=0.35, mb=64),
            S("MIOpenLayerNormFwd", 6, 30 * us, mb=12),
        ]
    prefill += [
        S("MIOpenLayerNormFwd", 6, 30 * us, mb=12),
        C("Cijk_Ailk_Bljk_SB_MT128x128_lmhead_prefill", 50, 500 * us,
          flat=0.35, mb=52, gap=50 * us),
    ]
    decode = [
        S("gemvKernel_qkv_decode", 6, 50 * us, mb=36),
        G("pagedAttentionKernel_decode", 8, 80 * us, mb=48),
        S("gemvKernel_attnout_decode", 6, 40 * us, mb=24),
        S("gemvKernel_ffn1_decode", 6, 80 * us, mb=64),
        S("gemvKernel_ffn2_decode", 6, 80 * us, mb=64),
        S("sampleTokenKernel", 4, 12 * us, mb=1, gap=25 * us),
    ]
    return prefill, decode, 16


#: LLM-phase models, in a registry separate from the Table III zoo so
#: the paper benchmarks (which iterate MODEL_NAMES / ALL_MODEL_NAMES)
#: never pick them up.
LLM_MODEL_NAMES: tuple[str, ...] = ("llm-tiny", "llm-8b")

_LLM_BUILDERS = {
    "llm-tiny": _llm_tiny,
    "llm-8b": _llm_8b,
}


_BUILDERS = {
    "albert": _albert,
    "alexnet": _alexnet,
    "densenet201": _densenet201,
    "resnet152": _resnet152,
    "resnext101": _resnext101,
    "shufflenet": _shufflenet,
    "squeezenet": _squeezenet,
    "vgg19": _vgg19,
    "mobilenet": _mobilenet,
}


@dataclass(frozen=True)
class ModelSpec:
    """A model: named, ordered kernel templates plus paper metadata."""

    name: str
    specs: tuple[KernelSpec, ...]
    paper_kernels: int = 0
    paper_right_size: int = 0
    paper_p95_ms: float = 0.0

    def trace(self, batch_size: int = 32,
              topology: GpuTopology = _MI50) -> list[KernelDescriptor]:
        """Concrete kernel trace for one inference pass at ``batch_size``."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        scale = batch_size / 32.0
        return [spec.build(scale, topology) for spec in self.specs]

    def segments(
        self, batch_size: int = 32, topology: GpuTopology = _MI50
    ) -> list[tuple[list[KernelDescriptor], float]]:
        """(kernel burst, host gap) structure for one inference pass.

        The worker launches each burst asynchronously, synchronises the
        stream, and spends the gap in host-side work before the next
        burst.  Gaps scale with batch size (they are dominated by
        activation transfers).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        scale = batch_size / 32.0
        segments: list[tuple[list[KernelDescriptor], float]] = []
        burst: list[KernelDescriptor] = []
        for spec in self.specs:
            burst.append(spec.build(scale, topology))
            if spec.sync_gap > 0:
                segments.append((burst, spec.sync_gap * scale))
                burst = []
        if burst:
            segments.append((burst, 0.0))
        return segments

    def host_gap_total(self, batch_size: int = 32) -> float:
        """Total non-hidden host time per inference pass, in seconds."""
        return sum(spec.sync_gap for spec in self.specs) * (batch_size / 32.0)

    @property
    def kernel_count(self) -> int:
        """Kernel launches per inference pass (batch-size independent)."""
        return len(self.specs)


@dataclass(frozen=True)
class LlmModelSpec(ModelSpec):
    """An LLM-serving model: a prefill phase plus a per-token decode
    phase (KernelSight-LM's two-phase kernel shape).

    ``specs`` holds the default-length pass (``prefill + decode *
    default_output_tokens``) so every :class:`ModelSpec` consumer —
    tracing, profiling, the serving perf DB — works unchanged;
    :meth:`segments_for_output` rebuilds the pass for a per-request
    output length.  Decode kernel names repeat across tokens, so a perf
    DB built from the default trace covers every output length.
    """

    prefill: tuple[KernelSpec, ...] = ()
    decode: tuple[KernelSpec, ...] = ()
    default_output_tokens: int = 1

    def specs_for_output(
            self, output_tokens: int | None = None) -> tuple[KernelSpec, ...]:
        """Kernel templates of one pass emitting ``output_tokens``."""
        tokens = self.default_output_tokens if output_tokens is None \
            else output_tokens
        if tokens < 1:
            raise ValueError("output_tokens must be >= 1")
        return self.prefill + self.decode * tokens

    def segments_for_output(
        self, batch_size: int = 32, output_tokens: int | None = None,
        topology: GpuTopology = _MI50,
    ) -> list[tuple[list[KernelDescriptor], float]]:
        """(burst, gap) segments of a pass emitting ``output_tokens``.

        The decode block's trailing sync gap (host-side token sampling)
        splits the pass into one segment per token after the prefill
        burst, so workers interleave naturally at token granularity.
        """
        pass_spec = ModelSpec(name=self.name,
                              specs=self.specs_for_output(output_tokens))
        return pass_spec.segments(batch_size, topology)


@lru_cache(maxsize=4096)
def llm_segments(name: str, batch_size: int,
                 output_tokens: int | None = None):
    """Cached, immutable segments for one (model, batch, output length).

    The serving path calls this once per request; the cache makes
    variable-output-length serving as cheap as the static-segment path.
    """
    model = get_model(name)
    if not isinstance(model, LlmModelSpec):
        raise TypeError(f"{name!r} is not an LLM-phase model")
    segments = model.segments_for_output(batch_size, output_tokens)
    return tuple((tuple(burst), gap) for burst, gap in segments)


@lru_cache(maxsize=None)
def get_model(name: str) -> ModelSpec:
    """Look up a model by its paper name (or LLM registry name)."""
    if name in _LLM_BUILDERS:
        prefill, decode, tokens = _LLM_BUILDERS[name]()
        prefill, decode = tuple(prefill), tuple(decode)
        return LlmModelSpec(
            name=name,
            specs=prefill + decode * tokens,
            prefill=prefill,
            decode=decode,
            default_output_tokens=tokens,
        )
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; available: "
            f"{sorted(_BUILDERS) + sorted(_LLM_BUILDERS)}"
        )
    paper = TABLE_III.get(name, (0, 0, 0.0))
    return ModelSpec(
        name=name,
        specs=tuple(_BUILDERS[name]()),
        paper_kernels=paper[0],
        paper_right_size=paper[1],
        paper_p95_ms=paper[2],
    )


def vector_mul_kernel(workgroups: int = 240, wg_duration: float = 20e-6,
                      occupancy: int = 1) -> KernelDescriptor:
    """The Fig. 8 characterisation microbenchmark: a vector-multiply grid
    whose latency exposes the distribution-policy effects."""
    return KernelDescriptor(
        name="vectorMulKernel",
        workgroups=workgroups,
        threads_per_wg=256,
        wg_duration=wg_duration,
        occupancy=occupancy,
        mem_intensity=0.5,
        bytes_in=workgroups * 256 * 8,
    )
