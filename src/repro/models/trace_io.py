"""Model-spec serialisation: save/load kernel-template models as JSON.

Lets users describe their own inference models outside Python (or export
a zoo model, tweak it, and reload), completing the tooling loop with
:mod:`repro.analysis.trace_export`: traces go out as chrome-trace JSON,
model definitions come in as template JSON.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

from repro.models.zoo import KernelSpec, ModelSpec

__all__ = ["model_to_json", "model_from_json", "save_model", "load_model"]

_REQUIRED = {"style", "name", "duration"}
_OPTIONAL = {"min_cus", "waves", "flat", "mem", "bytes_in", "sync_gap"}


def model_to_json(model: ModelSpec) -> str:
    """Serialise a model spec (templates + metadata) to JSON."""
    payload = {
        "name": model.name,
        "paper_kernels": model.paper_kernels,
        "paper_right_size": model.paper_right_size,
        "paper_p95_ms": model.paper_p95_ms,
        "kernels": [asdict(spec) for spec in model.specs],
    }
    return json.dumps(payload, indent=1)


def model_from_json(text: str) -> ModelSpec:
    """Inverse of :func:`model_to_json`, with field validation."""
    payload = json.loads(text)
    if "name" not in payload or "kernels" not in payload:
        raise ValueError("model JSON needs 'name' and 'kernels'")
    specs = []
    for index, entry in enumerate(payload["kernels"]):
        missing = _REQUIRED - entry.keys()
        if missing:
            raise ValueError(f"kernel #{index}: missing fields {missing}")
        unknown = entry.keys() - _REQUIRED - _OPTIONAL
        if unknown:
            raise ValueError(f"kernel #{index}: unknown fields {unknown}")
        specs.append(KernelSpec(**entry))
    if not specs:
        raise ValueError("model has no kernels")
    return ModelSpec(
        name=str(payload["name"]),
        specs=tuple(specs),
        paper_kernels=int(payload.get("paper_kernels", 0)),
        paper_right_size=int(payload.get("paper_right_size", 0)),
        paper_p95_ms=float(payload.get("paper_p95_ms", 0.0)),
    )


def save_model(model: ModelSpec, path: Union[str, Path]) -> None:
    """Write a model spec to a JSON file."""
    Path(path).write_text(model_to_json(model))


def load_model(path: Union[str, Path]) -> ModelSpec:
    """Read a model spec written by :func:`save_model` (or hand-authored)."""
    return model_from_json(Path(path).read_text())
