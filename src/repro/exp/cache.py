"""Content-addressed on-disk cache for experiment results.

Every :class:`~repro.server.experiment.ExperimentConfig` is a frozen,
seed-deterministic description of one evaluation cell, so its result is a
pure function of (config, timing-model constants, repro version).  The
cache keys on a stable SHA-256 digest of exactly that triple: change any
config field, any :class:`~repro.gpu.exec_model.ExecutionModelConfig`
default, the device topology, or the package version, and the key — and
therefore the cache entry — changes with it.  Stale results can never be
served across a model change.

Corrupt or truncated cache files are *misses*, never crashes: they are
counted in :class:`CacheStats` and logged, then recomputed.  All writes
are best-effort (a read-only cache directory degrades to no caching)
and *atomic* — published via a same-directory temp file and
``os.replace`` — so concurrent sweep workers racing on one key can
never leave an interleaved or half-written file behind.

Entries live in 256 two-hex-prefix shard subdirectories (keys are
uniform SHA-256 hex) so big sweeps never degrade into one flat directory
of tens of thousands of files; flat entries written by pre-sharding
versions are found and migrated into their shard on first read, keys
unchanged (see :func:`locate_entry`).

Set ``REPRO_CACHE_DIR`` to relocate the store (shared with the profiling
cache in :mod:`repro.server.profiles`); delete the directory to clear it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import repro
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.topology import GpuTopology
from repro.server.experiment import (
    SLO_FACTOR,
    ExperimentConfig,
    ExperimentResult,
    WorkerResult,
    run_experiment,
)
from repro.server.metrics import LatencyStats
from repro.server.options import RunOptions
from repro.server.slo import ResilienceStats, SloGuard

__all__ = [
    "CacheStats",
    "JsonStore",
    "RateResultCache",
    "ResultCache",
    "cache_key",
    "cached_run_experiment",
    "cached_run_rate_experiment",
    "default_cache",
    "default_rate_cache",
    "fingerprint",
    "locate_entry",
    "rate_cache_key",
    "rate_result_from_dict",
    "rate_result_hash",
    "rate_result_to_dict",
    "result_hash",
    "sharded_entry_path",
]

logger = logging.getLogger(__name__)

#: Bump when the serialized payload layout changes (invalidates entries).
#: Schema 2: adds ``LatencyStats.p999`` and ``peak_cu_occupancy``.
CACHE_SCHEMA = 2


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp file +
    ``os.replace``).

    Concurrent writers — two pooled sweep workers storing the same key —
    each publish a complete file; readers see either the old entry or a
    new one, never an interleaved or truncated mix, and a writer dying
    mid-write can no longer clobber a previously good entry.  Raises
    ``OSError`` like a plain write would (callers keep their best-effort
    handling); the temp file is cleaned up on failure.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def cache_root() -> Path:
    """Root of the on-disk cache (``REPRO_CACHE_DIR`` or the default)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    return Path(root) if root else Path.home() / ".cache" / "repro-krisp"


def sharded_entry_path(directory: Path, key: str) -> Path:
    """Canonical location of ``key``'s entry: a two-hex-prefix shard.

    Large sweeps accumulate tens of thousands of entries; a flat
    directory makes every miss (and every ``ls``) scan all of them.
    Keys are uniform SHA-256 hex, so the first two characters split the
    store into 256 evenly loaded subdirectories.
    """
    return directory / key[:2] / f"{key}.json"


def locate_entry(directory: Path, key: str) -> Path:
    """Where to *read* ``key``'s entry, migrating flat legacy files.

    Pre-sharding stores kept every entry directly in ``directory``.
    Reads prefer the sharded location; a flat legacy file is moved into
    its shard on first touch (best-effort, atomic ``os.replace``).  The
    migration is idempotent under races: when two readers touch the same
    flat entry, the first ``os.replace`` wins and the loser — whose own
    rename fails because the source vanished — serves the winner's
    sharded file.  A rename that fails with the flat file still in place
    (cross-device store, read-only directory) falls back to an atomic
    copy, and to the flat path itself if even that fails — never a miss,
    never a vanished path.  A key present in neither place resolves to
    the sharded path, so miss handling targets the canonical location.
    """
    sharded = sharded_entry_path(directory, key)
    if sharded.exists():
        return sharded
    legacy = directory / f"{key}.json"
    if legacy.exists():
        try:
            sharded.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, sharded)
            return sharded
        except OSError:
            pass
        if sharded.exists():
            # Lost the migrate race: another reader already moved it.
            return sharded
        try:
            text = legacy.read_text()
        except OSError:
            # The flat file vanished between the rename attempt and the
            # read (racer finished mid-way), or is unreadable.
            return legacy if legacy.exists() else sharded
        # Flat file still present and readable, but not renamable
        # (EXDEV/EACCES): migrate by atomic copy, best-effort unlink.
        try:
            _atomic_write_text(sharded, text)
        except OSError:
            return legacy
        try:
            os.unlink(legacy)
        except OSError:
            pass
        return sharded
    return sharded


def fingerprint() -> dict[str, Any]:
    """The code-relevant constants folded into every cache key.

    A result is only reusable while the experiment cell *and* the model
    that produced it are unchanged, so the key covers the repro version,
    the payload schema, the evaluation topology, the timing-model
    defaults, and the SLO definition.
    """
    topo = GpuTopology.mi50()
    exec_defaults = ExecutionModelConfig()
    return {
        "version": repro.__version__,
        "schema": CACHE_SCHEMA,
        "topology": dataclasses.asdict(topo),
        "exec_model": dataclasses.asdict(exec_defaults),
        "slo_factor": SLO_FACTOR,
    }


def config_to_dict(config: ExperimentConfig) -> dict[str, Any]:
    """JSON-native form of one experiment cell (tuples become lists, so
    the dict compares equal to its own JSON round-trip)."""
    data = dataclasses.asdict(config)
    data["model_names"] = list(data["model_names"])
    # Only-when-non-default folding (same contract as the fault/guard
    # key fields): the allocation-policy knobs postdate most cached
    # results, and dropping them at their defaults keeps every
    # pre-existing cache key and result hash byte-identical.
    if data.get("allocation") == "krisp":
        del data["allocation"]
    if data.get("sizing") == "static":
        del data["sizing"]
    return data


def config_from_dict(payload: dict[str, Any]) -> ExperimentConfig:
    """Inverse of :func:`config_to_dict`."""
    data = dict(payload)
    data["model_names"] = tuple(data["model_names"])
    return ExperimentConfig(**data)


def cache_key(config: ExperimentConfig,
              constants: Optional[dict[str, Any]] = None,
              faults=None,
              guard: Optional[SloGuard] = None,
              cluster: Optional[dict[str, Any]] = None) -> str:
    """Stable content hash of (config, code constants, repro version).

    ``faults`` (a :class:`~repro.faults.FaultSchedule`), ``guard``
    (a :class:`~repro.server.slo.SloGuard`), and ``cluster`` (a
    JSON-native fleet-topology payload, see :func:`~repro.cluster
    .experiment.cluster_cache_key`) are folded in **only when given**,
    so every pre-existing single-device fault-free key — and every
    cached result under it — is untouched by the fault and fleet
    layers.
    """
    payload = {
        "config": config_to_dict(config),
        "constants": constants if constants is not None else fingerprint(),
    }
    if faults is not None:
        payload["faults"] = faults.to_dict()
    if guard is not None:
        payload["guard"] = guard.to_dict()
    if cluster is not None:
        payload["cluster"] = cluster
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


# -- result (de)serialisation ------------------------------------------------

def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """JSON-friendly form of one experiment result.

    Floats survive a JSON round-trip bit-exactly (``repr`` round-trip),
    so a cache hit reproduces the live result field-for-field.  The
    ``resilience`` block appears only on guarded/fault-injected results,
    keeping every fault-free payload byte-identical to schema 2.
    """
    payload = {
        "config": config_to_dict(result.config),
        "workers": [
            {
                "model_name": w.model_name,
                "requests_completed": w.requests_completed,
                "rps": w.rps,
                "latency": dataclasses.asdict(w.latency),
            }
            for w in result.workers
        ],
        "window": result.window,
        "total_rps": result.total_rps,
        "energy_joules": result.energy_joules,
        "energy_per_request": result.energy_per_request,
        "gpu_utilization": result.gpu_utilization,
        "peak_cu_occupancy": result.peak_cu_occupancy,
    }
    if result.resilience is not None:
        payload["resilience"] = result.resilience.to_dict()
    return payload


def result_hash(result: ExperimentResult) -> str:
    """Content hash of one result's canonical JSON payload.

    Every float in the payload survives JSON bit-exactly, so two runs
    hash equally iff they produced the identical float sequence — the
    identity the incremental rate-recompute path is held to (and what
    the bench harness compares across recompute modes).
    """
    canonical = json.dumps(
        result_to_dict(result), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def result_from_dict(payload: dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    return ExperimentResult(
        config=config_from_dict(payload["config"]),
        workers=tuple(
            WorkerResult(
                model_name=w["model_name"],
                requests_completed=w["requests_completed"],
                rps=w["rps"],
                latency=LatencyStats(**w["latency"]),
            )
            for w in payload["workers"]
        ),
        window=payload["window"],
        total_rps=payload["total_rps"],
        energy_joules=payload["energy_joules"],
        energy_per_request=payload["energy_per_request"],
        gpu_utilization=payload["gpu_utilization"],
        peak_cu_occupancy=payload.get("peak_cu_occupancy", 0),
        resilience=(ResilienceStats.from_dict(payload["resilience"])
                    if "resilience" in payload else None),
    )


# -- stores ------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss/store/invalidation accounting for one store."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Corrupt, truncated, or key-mismatched entries treated as misses.
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class JsonStore:
    """A dict-shaped key/value store persisted as one JSON file.

    Generalises the ad-hoc right-size cache of
    :mod:`repro.server.profiles`: corrupt files are counted misses, not
    crashes, and writes are best-effort.
    """

    path: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def load(self) -> dict[str, Any]:
        """The whole store; ``{}`` on absence or corruption."""
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return {}
        except OSError:
            self.stats.invalidations += 1
            return {}
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                raise ValueError("store root is not an object")
            return data
        except ValueError:
            self.stats.invalidations += 1
            logger.warning("discarding corrupt cache file %s", self.path)
            return {}

    def get(self, key: str, default: Any = None) -> Any:
        """Value for ``key`` or ``default``."""
        data = self.load()
        if key in data:
            self.stats.hits += 1
            return data[key]
        self.stats.misses += 1
        return default

    def put(self, key: str, value: Any) -> None:
        """Best-effort read-modify-write of one entry (atomic publish)."""
        data = self.load()
        data[key] = value
        try:
            _atomic_write_text(
                self.path, json.dumps(data, indent=2, sort_keys=True))
            self.stats.stores += 1
        except OSError:
            pass  # caching is best-effort; computation still works


class ResultCache:
    """Content-addressed store of experiment results, one file per cell."""

    def __init__(self, root: Optional[Path] = None) -> None:
        """``root=None`` re-reads ``REPRO_CACHE_DIR`` on every access, so
        one long-lived instance follows environment changes."""
        self._root = root
        self.stats = CacheStats()

    def root(self) -> Path:
        return self._root if self._root is not None else cache_root()

    def path_for(self, config: ExperimentConfig, faults=None,
                 guard: Optional[SloGuard] = None) -> Path:
        """Canonical (sharded) location of one cell's cached result."""
        key = cache_key(config, faults=faults, guard=guard)
        return sharded_entry_path(self.root() / "results", key)

    def get(self, config: ExperimentConfig, faults=None,
            guard: Optional[SloGuard] = None) -> Optional[ExperimentResult]:
        """Cached result for ``config``, or ``None`` on any kind of miss."""
        key = cache_key(config, faults=faults, guard=guard)
        path = locate_entry(self.root() / "results", key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            self.stats.invalidations += 1
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not an object")
            if payload.get("config") != config_to_dict(config):
                raise ValueError("cache entry config mismatch")
            result = result_from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            self.stats.invalidations += 1
            logger.warning("discarding corrupt result cache entry %s", path)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, config: ExperimentConfig, result: ExperimentResult,
            faults=None, guard: Optional[SloGuard] = None) -> None:
        """Best-effort store of one cell's result."""
        path = self.path_for(config, faults=faults, guard=guard)
        payload = {
            "constants": fingerprint(),
            "config": config_to_dict(config),
            "result": result_to_dict(result),
        }
        if faults is not None:
            payload["faults"] = faults.to_dict()
        if guard is not None:
            payload["guard"] = guard.to_dict()
        try:
            _atomic_write_text(
                path, json.dumps(payload, indent=2, sort_keys=True))
            self.stats.stores += 1
        except OSError:
            pass


# -- open-loop (rate/workload) results ---------------------------------------

def rate_cache_key(config: ExperimentConfig, offered_rps: float,
                   duration: float,
                   constants: Optional[dict[str, Any]] = None,
                   workload=None, faults=None,
                   guard: Optional[SloGuard] = None,
                   cluster: Optional[dict[str, Any]] = None) -> str:
    """Stable content hash of one open-loop run's inputs.

    ``workload`` (a :mod:`repro.workload` spec), ``faults``, ``guard``,
    and ``cluster`` (a JSON-native fleet-topology payload) are folded
    in **only when given** — the :func:`cache_key` convention — so
    plain Poisson keys are unaffected by the workload and fleet layers.
    ``duration`` must be the *actual* run length (resolve defaults via
    :func:`~repro.server.rate_experiment.default_rate_duration` before
    keying).
    """
    payload: dict[str, Any] = {
        "kind": "rate",
        "config": config_to_dict(config),
        "constants": constants if constants is not None else fingerprint(),
        "offered_rps": offered_rps,
        "duration": duration,
    }
    if workload is not None:
        payload["workload"] = workload.to_dict()
    if faults is not None:
        payload["faults"] = faults.to_dict()
    if guard is not None:
        payload["guard"] = guard.to_dict()
    if cluster is not None:
        payload["cluster"] = cluster
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def rate_result_to_dict(result) -> dict[str, Any]:
    """JSON-native form of one :class:`~repro.server.rate_experiment
    .RateResult` (floats survive bit-exactly; the ``resilience`` block
    appears only on guarded/fault-injected runs)."""
    payload: dict[str, Any] = {
        "offered_rps": result.offered_rps,
        "achieved_rps": result.achieved_rps,
        "latency": dataclasses.asdict(result.latency),
        "queue_residue": result.queue_residue,
    }
    if result.resilience is not None:
        payload["resilience"] = result.resilience.to_dict()
    return payload


def rate_result_from_dict(payload: dict[str, Any]):
    """Inverse of :func:`rate_result_to_dict`."""
    from repro.server.rate_experiment import RateResult
    return RateResult(
        offered_rps=payload["offered_rps"],
        achieved_rps=payload["achieved_rps"],
        latency=LatencyStats(**payload["latency"]),
        queue_residue=payload["queue_residue"],
        resilience=(ResilienceStats.from_dict(payload["resilience"])
                    if "resilience" in payload else None),
    )


def rate_result_hash(result) -> str:
    """Content hash of one rate result's canonical JSON payload."""
    canonical = json.dumps(
        rate_result_to_dict(result), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class RateResultCache:
    """Content-addressed store of open-loop results, one file per run,
    under ``<root>/rate/`` (disjoint from the closed-loop store)."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self._root = root
        self.stats = CacheStats()

    def root(self) -> Path:
        return self._root if self._root is not None else cache_root()

    def path_for(self, key: str) -> Path:
        return sharded_entry_path(self.root() / "rate", key)

    def get(self, key: str):
        """Cached result under ``key``, or ``None`` on any miss."""
        path = locate_entry(self.root() / "rate", key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            self.stats.invalidations += 1
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not an object")
            result = rate_result_from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            self.stats.invalidations += 1
            logger.warning("discarding corrupt rate cache entry %s", path)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result,
            context: Optional[dict[str, Any]] = None) -> None:
        """Best-effort store; ``context`` records the keyed inputs for
        humans inspecting the file (it is not re-validated on read —
        the key is already a content hash of those inputs)."""
        payload: dict[str, Any] = {
            "constants": fingerprint(),
            "result": rate_result_to_dict(result),
        }
        if context:
            payload.update(context)
        try:
            _atomic_write_text(
                self.path_for(key),
                json.dumps(payload, indent=2, sort_keys=True))
            self.stats.stores += 1
        except OSError:
            pass


_DEFAULT_RATE_CACHE = RateResultCache()


def default_rate_cache() -> RateResultCache:
    """The process-wide rate-result cache (follows ``REPRO_CACHE_DIR``)."""
    return _DEFAULT_RATE_CACHE


def cached_run_rate_experiment(
    config: ExperimentConfig,
    offered_rps: Optional[float] = None,
    duration: Optional[float] = None,
    *,
    workload=None,
    faults=None,
    guard: Optional[SloGuard] = None,
    cache: Optional[RateResultCache] = None,
):
    """:func:`~repro.server.rate_experiment.run_rate_experiment`
    through the rate-result cache.

    The key pins the resolved offered rate and duration plus — only
    when given — the workload spec, fault schedule, and guard, so two
    distinct specs can never alias one cache entry.
    """
    from repro.server.rate_experiment import (
        default_rate_duration, run_rate_experiment)

    if workload is not None and offered_rps is None:
        offered_rps = workload.offered_rps()
    if offered_rps is None or offered_rps <= 0:
        raise ValueError("offered_rps must be > 0")
    if duration is None:
        duration = default_rate_duration(config)
    store = cache if cache is not None else default_rate_cache()
    key = rate_cache_key(config, offered_rps, duration,
                         workload=workload, faults=faults, guard=guard)
    result = store.get(key)
    if result is None:
        result = run_rate_experiment(
            config, offered_rps, duration,
            RunOptions(workload=workload, faults=faults, guard=guard))
        context: dict[str, Any] = {
            "config": config_to_dict(config),
            "offered_rps": offered_rps,
            "duration": duration,
        }
        if workload is not None:
            context["workload"] = workload.to_dict()
        if faults is not None:
            context["faults"] = faults.to_dict()
        if guard is not None:
            context["guard"] = guard.to_dict()
        store.put(key, result, context=context)
    return result


_DEFAULT_CACHE = ResultCache()


def default_cache() -> ResultCache:
    """The process-wide result cache (root follows ``REPRO_CACHE_DIR``)."""
    return _DEFAULT_CACHE


def cached_run_experiment(
    config: ExperimentConfig,
    cache: Optional[ResultCache] = None,
    faults=None,
    guard: Optional[SloGuard] = None,
) -> ExperimentResult:
    """:func:`~repro.server.experiment.run_experiment` through the cache.

    ``faults``/``guard`` select the fault-injected variant of the cell;
    its key (and file) is disjoint from the fault-free one.
    """
    store = cache if cache is not None else default_cache()
    result = store.get(config, faults=faults, guard=guard)
    if result is None:
        result = run_experiment(
            config, RunOptions(faults=faults, guard=guard))
        store.put(config, result, faults=faults, guard=guard)
    return result
