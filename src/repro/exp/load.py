"""Latency-vs-offered-rate load curves over workload specs.

``run_load_curve`` sweeps one workload spec across a set of offered
rates (the spec rescaled via ``at_rate``), running each point through
:func:`~repro.server.rate_experiment.run_rate_experiment` with the
spec's arrival process and request mix.  Points are pure functions of
(config, spec, rate, duration, faults, guard), so they fan out over a
process pool exactly like sweep cells — serial and pooled execution are
bit-identical — and cache through the content-addressed rate store
(:mod:`repro.exp.cache`), with the spec folded into every key.

The curve's *knee* — the highest offered rate whose p95 stays within a
small factor of the lightest point's p95 — is the capacity number an
operator reads off the report.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.exp.cache import (
    RateResultCache,
    default_rate_cache,
    rate_cache_key,
)
from repro.server.experiment import ExperimentConfig
from repro.server.metrics import LatencyStats
from repro.server.options import (
    _UNSET,
    RunOptions,
    reject_unsupported,
    resolve_run_options,
)
from repro.server.rate_experiment import (
    RateResult,
    default_rate_duration,
    run_rate_experiment,
)
from repro.server.slo import SloGuard

__all__ = ["DEFAULT_SCALES", "LoadCurveReport", "LoadPoint",
           "run_load_curve"]

#: Default offered-rate multiples of the spec's native rate.
DEFAULT_SCALES: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5)


@dataclass(frozen=True)
class LoadPoint:
    """One point of a latency-vs-rate curve."""

    offered_rps: float
    achieved_rps: float
    goodput_rps: float
    shed: int
    queue_residue: int
    saturated: bool
    latency: LatencyStats
    #: Shed breakdown and retry churn (0 on unguarded, fault-free runs).
    shed_admission: int = 0
    shed_deadline: int = 0
    retried: int = 0
    #: Latency-attribution summary (:func:`repro.obs.attribution
    #: .summarize` payload) — only populated by ``attribute=True`` runs;
    #: never enters the rate cache, so cached payloads stay byte-stable.
    attribution: Optional[dict] = None


def _to_point(offered_rps: float, result: RateResult,
              attribution: Optional[dict] = None) -> LoadPoint:
    resilience = result.resilience
    return LoadPoint(
        offered_rps=offered_rps,
        achieved_rps=result.achieved_rps,
        goodput_rps=(resilience.goodput_rps if resilience is not None
                     else result.achieved_rps),
        shed=resilience.shed if resilience is not None else 0,
        queue_residue=result.queue_residue,
        saturated=result.saturated,
        latency=result.latency,
        shed_admission=(resilience.shed_admission
                        if resilience is not None else 0),
        shed_deadline=(resilience.shed_deadline
                       if resilience is not None else 0),
        retried=resilience.retried if resilience is not None else 0,
        attribution=attribution,
    )


@dataclass(frozen=True)
class LoadCurveReport:
    """A full load curve plus its provenance."""

    config: ExperimentConfig
    workload: Any
    duration: float
    points: tuple[LoadPoint, ...]
    cache_hits: int = 0

    def to_rows(self) -> list[dict[str, Any]]:
        """JSON-native rows, one per point, in offered-rate order.

        Rows always carry the shed breakdown and retry counts; the
        ``attribution``/``diagnosis`` keys appear only on curves run
        with ``attribute=True`` so plain-curve exports stay unchanged
        modulo the new integer columns.
        """
        rows = []
        for p in self.points:
            row = {
                "offered_rps": p.offered_rps,
                "achieved_rps": p.achieved_rps,
                "goodput_rps": p.goodput_rps,
                "shed": p.shed,
                "shed_admission": p.shed_admission,
                "shed_deadline": p.shed_deadline,
                "retried": p.retried,
                "queue_residue": p.queue_residue,
                "saturated": p.saturated,
                "p50_ms": p.latency.p50 * 1e3,
                "p95_ms": p.latency.p95 * 1e3,
                "p999_ms": p.latency.p999 * 1e3,
            }
            if p.attribution is not None:
                row["attribution"] = p.attribution
                row["diagnosis"] = p.attribution.get("diagnosis")
            rows.append(row)
        return rows

    def knee_rps(self, factor: float = 3.0) -> Optional[float]:
        """Highest offered rate whose p95 stays within ``factor`` of the
        lightest point's p95 (and that did not saturate); ``None`` when
        even the lightest point blows up."""
        if not self.points:
            return None
        base = self.points[0].latency.p95
        knee = None
        for point in self.points:
            if point.saturated or point.latency.p95 > factor * base:
                break
            knee = point.offered_rps
        return knee

    def knee_diagnosis(self, factor: float = 3.0) -> Optional[str]:
        """What the first post-knee point's tail latency is made of.

        Returns the :func:`~repro.obs.attribution.diagnose` label
        (``queueing-dominated`` / ``contention-dominated`` /
        ``service-dominated``) of the first point past the knee — the
        point whose blow-up defines the curve's capacity — falling back
        to the heaviest point when nothing blew up.  ``None`` unless
        the curve was run with ``attribute=True``.
        """
        knee = self.knee_rps(factor)
        past = [p for p in self.points
                if knee is None or p.offered_rps > knee]
        probe = past[0] if past else self.points[-1] if self.points else None
        if probe is None or probe.attribution is None:
            return None
        return probe.attribution.get("diagnosis")

    def to_text(self) -> str:
        from repro.analysis.tables import format_table
        rows = [
            [f"{p.offered_rps:.0f}", f"{p.achieved_rps:.0f}",
             f"{p.goodput_rps:.0f}", f"{p.latency.p50 * 1e3:.2f}",
             f"{p.latency.p95 * 1e3:.2f}", f"{p.latency.p999 * 1e3:.2f}",
             p.shed, "yes" if p.saturated else "no"]
            for p in self.points
        ]
        table = format_table(
            ["offered rps", "achieved", "goodput", "p50 (ms)", "p95 (ms)",
             "p999 (ms)", "shed", "saturated"],
            rows,
            title=f"load curve over {len(self.points)} rates "
                  f"({self.duration:.2f} s per point)")
        lines = [table]
        if any(p.attribution is not None for p in self.points):
            for p in self.points:
                if p.attribution is None:
                    continue
                lines.append(f"  {p.offered_rps:.0f} rps: "
                             f"{p.attribution.get('diagnosis')}")
            diagnosis = self.knee_diagnosis()
            if diagnosis is not None:
                lines.append(f"knee diagnosis: {diagnosis}")
        return "\n".join(lines)


def _run_point(config: ExperimentConfig, offered_rps: float,
               duration: float, workload, faults, guard):
    """One pooled load point; exceptions cross the pool as strings."""
    try:
        result = run_rate_experiment(
            config, offered_rps, duration,
            RunOptions(workload=workload, faults=faults, guard=guard))
        return offered_rps, result, None
    except Exception as exc:  # noqa: BLE001 - report, don't hang the pool
        import traceback
        return offered_rps, None, \
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"


def run_load_curve(
    config: ExperimentConfig,
    workload,
    *,
    rates: Optional[tuple[float, ...]] = None,
    scales: tuple[float, ...] = DEFAULT_SCALES,
    duration: Optional[float] = None,
    options: Optional[RunOptions] = None,
    guard=_UNSET,
    faults=_UNSET,
    jobs: int = 1,
    use_cache: bool = True,
    cache: Optional[RateResultCache] = None,
    progress: Optional[Callable[[int, int, str], None]] = None,
    attribute: bool = False,
) -> LoadCurveReport:
    """Sweep ``workload`` across offered rates into a load curve.

    ``rates`` gives absolute offered rates (requests/s); otherwise the
    spec's native ``offered_rps()`` is multiplied by each of
    ``scales``.  Each point rescales the spec with ``at_rate`` and runs
    for the same ``duration`` (default
    :func:`~repro.server.rate_experiment.default_rate_duration`), so
    points differ only in offered load.  ``jobs > 1`` fans cache misses
    out over a process pool; results are bit-identical to serial.

    ``attribute=True`` attaches a latency-attribution summary
    (:func:`repro.obs.attribution.summarize`) to every point, labelling
    each — and in particular the knee — queueing- vs contention-
    dominated.  Attribution needs live flights, so every point then runs
    locally with a :class:`~repro.obs.flight.FlightRecorder` (cache
    reads and the process pool are bypassed; results are still written
    back, and are bit-identical — recording is pure observation).

    Harness options arrive via ``options=``
    (:class:`~repro.server.options.RunOptions`); the ``guard``/``faults``
    keywords are deprecated shims mapping into it.  The workload is this
    function's positional argument, so ``options.workload`` — like the
    fields a pooled curve cannot honour (``tracer``, ``recorder``,
    ``metrics``, ``audit``) — is rejected.
    """
    opts = resolve_run_options("run_load_curve", options, guard=guard,
                               faults=faults)
    reject_unsupported("run_load_curve", opts, "tracer", "recorder",
                       "metrics", "audit", "workload")
    guard, faults = opts.guard, opts.faults
    if rates is None:
        base = workload.offered_rps()
        rates = tuple(base * scale for scale in scales)
    if not rates or any(r <= 0 for r in rates):
        raise ValueError("offered rates must be a non-empty set of > 0")
    rates = tuple(sorted(rates))
    if duration is None:
        duration = default_rate_duration(config)

    specs = {rate: workload.at_rate(rate) for rate in rates}
    store = cache if cache is not None else default_rate_cache()
    keys = {rate: rate_cache_key(config, rate, duration,
                                 workload=specs[rate], faults=faults,
                                 guard=guard)
            for rate in rates}

    results: dict[float, RateResult] = {}
    attributions: dict[float, dict] = {}
    cache_hits = 0
    if use_cache and not attribute:
        for rate in rates:
            hit = store.get(keys[rate])
            if hit is not None:
                results[rate] = hit
                cache_hits += 1

    todo = [rate for rate in rates if rate not in results]
    done = len(results)
    total = len(rates)
    if progress:
        progress(done, total, "cached" if done else "starting")

    failures: list[str] = []

    def record(rate: float, result: Optional[RateResult],
               error: Optional[str]) -> None:
        nonlocal done
        done += 1
        if error is not None:
            failures.append(f"rate {rate:.1f}: {error}")
            if progress:
                progress(done, total, f"{rate:.0f} rps FAILED")
            return
        results[rate] = result
        if use_cache:
            store.put(keys[rate], result,
                      context={"offered_rps": rate, "duration": duration,
                               "workload": specs[rate].to_dict()})
        if progress:
            progress(done, total, f"{rate:.0f} rps")

    if todo and attribute:
        from repro.obs.attribution import summarize
        from repro.obs.flight import FlightRecorder
        for rate in todo:
            recorder = FlightRecorder()
            try:
                result = run_rate_experiment(
                    config, rate, duration,
                    RunOptions(workload=specs[rate], faults=faults,
                               guard=guard, recorder=recorder))
            except Exception as exc:  # noqa: BLE001 - mirror _run_point
                import traceback
                record(rate, None,
                       f"{type(exc).__name__}: {exc}\n"
                       f"{traceback.format_exc()}")
                continue
            attributions[rate] = summarize(recorder.flights())
            record(rate, result, None)
    elif todo:
        if jobs > 1 and len(todo) > 1:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(todo))) as pool:
                futures = [
                    pool.submit(_run_point, config, rate, duration,
                                specs[rate], faults, guard)
                    for rate in todo
                ]
                for future in futures:
                    rate, result, error = future.result()
                    record(rate, result, error)
        else:
            for rate in todo:
                rate, result, error = _run_point(
                    config, rate, duration, specs[rate], faults, guard)
                record(rate, result, error)

    if failures:
        raise RuntimeError(
            "load-curve points failed:\n" + "\n".join(failures))

    points = tuple(_to_point(rate, results[rate], attributions.get(rate))
                   for rate in rates)
    return LoadCurveReport(config=config, workload=workload,
                           duration=duration, points=points,
                           cache_hits=cache_hits)
