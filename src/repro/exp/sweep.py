"""Parallel experiment-grid orchestration.

Every evaluation grid of the paper is a set of independent
:class:`~repro.server.experiment.ExperimentConfig` cells, so the sweep
layer is deliberately simple: :class:`Sweep` builds a deduplicated cell
list (cartesian grids, mixed-model pairs, or explicit cells) and
:func:`run_sweep` executes it —

* consulting the content-addressed :mod:`result cache <repro.exp.cache>`
  first (a warm re-run computes nothing);
* fanning the remaining cells out over a ``ProcessPoolExecutor`` sized
  by ``REPRO_JOBS`` (default ``os.cpu_count() - 1``), with a serial
  in-process fallback for ``jobs=1``;
* retrying failed cells and capturing their tracebacks, so one bad cell
  degrades the grid gracefully instead of killing it.

The returned :class:`SweepReport` carries every result keyed by its
config plus run/cached/failed accounting, wall time, and the aggregate
speedup over the serial cell time.

Determinism: cells are seed-deterministic and RNG streams are derived
via SHA-256 (never the process-randomised ``hash``), so the serial path,
the pool path, and a cache hit all yield bit-identical results —
``tests/test_exp_sweep.py`` pins this.
"""

from __future__ import annotations

import itertools
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from repro.exp.cache import ResultCache, default_cache
from repro.server.experiment import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.server.options import (
    _UNSET,
    RunOptions,
    reject_unsupported,
    resolve_run_options,
)

__all__ = [
    "CellFailure",
    "Sweep",
    "SweepReport",
    "default_jobs",
    "run_sweep",
]

ProgressFn = Callable[[int, int, str], None]


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` or ``os.cpu_count() - 1`` (min 1)."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_JOBS={env!r} is not an integer") from None
    return max(1, (os.cpu_count() or 2) - 1)


def _cell_label(config: ExperimentConfig) -> str:
    """Short human-readable tag for progress lines."""
    models = "+".join(config.model_names)
    return f"{models}/{config.policy}/b{config.batch_size}"


class Sweep:
    """An ordered, deduplicated collection of experiment cells."""

    def __init__(self, cells: Iterable[ExperimentConfig] = ()) -> None:
        self._cells: dict[ExperimentConfig, None] = {}
        for cell in cells:
            self.add(cell)

    def add(self, config: ExperimentConfig) -> "Sweep":
        """Add one cell (duplicates collapse); returns self for chaining."""
        self._cells[config] = None
        return self

    def add_grid(
        self,
        models: Sequence[str],
        policies: Sequence[str],
        worker_counts: Sequence[int] = (1,),
        **config_kwargs,
    ) -> "Sweep":
        """Cartesian self-co-location grid: each model replicated
        ``workers`` times under each policy (the Fig. 13/14 shape)."""
        for model, policy, workers in itertools.product(
                models, policies, worker_counts):
            self.add(ExperimentConfig(
                model_names=(model,) * workers, policy=policy,
                **config_kwargs))
        return self

    def add_pairs(
        self,
        models: Sequence[str],
        policies: Sequence[str],
        **config_kwargs,
    ) -> "Sweep":
        """Every unordered pair of distinct models under each policy
        (the Fig. 15 shape)."""
        for (a, b), policy in itertools.product(
                itertools.combinations(models, 2), policies):
            self.add(ExperimentConfig(
                model_names=(a, b), policy=policy, **config_kwargs))
        return self

    @property
    def cells(self) -> tuple[ExperimentConfig, ...]:
        return tuple(self._cells)

    def __iter__(self) -> Iterator[ExperimentConfig]:
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)


@dataclass(frozen=True)
class CellFailure:
    """One cell that kept failing after every retry."""

    config: ExperimentConfig
    error: str
    traceback: str
    attempts: int


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one :func:`run_sweep` call."""

    cells: tuple[ExperimentConfig, ...]
    results: dict[ExperimentConfig, ExperimentResult]
    failed: tuple[CellFailure, ...]
    #: Cells actually executed this run (misses) vs. served from cache.
    ran: int
    cached: int
    jobs: int
    wall_time: float
    #: Sum of per-cell execution times (the serial-equivalent cost).
    cell_time: float

    @property
    def ok(self) -> bool:
        """True when every cell produced a result."""
        return not self.failed

    @property
    def speedup(self) -> float:
        """Serial-equivalent cell time over wall time (>=1 when the pool
        or the cache paid off; 0.0 for an all-cached instant run)."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.cell_time / self.wall_time

    def result(self, config: ExperimentConfig) -> ExperimentResult:
        """Result for one cell; raises with the failure detail if it died."""
        try:
            return self.results[config]
        except KeyError:
            for failure in self.failed:
                if failure.config == config:
                    raise RuntimeError(
                        f"cell {_cell_label(config)} failed after "
                        f"{failure.attempts} attempts:\n{failure.traceback}"
                    ) from None
            raise KeyError(f"{config} was not part of this sweep") from None

    def raise_failures(self) -> None:
        """Raise a summary ``RuntimeError`` if any cell failed."""
        if not self.failed:
            return
        detail = "\n".join(
            f"- {_cell_label(f.config)} ({f.attempts} attempts): "
            f"{f.error}\n{f.traceback}"
            for f in self.failed
        )
        raise RuntimeError(
            f"{len(self.failed)}/{len(self.cells)} sweep cells failed:\n"
            f"{detail}"
        )

    def summary(self) -> str:
        """One-line accounting string for logs and the CLI."""
        return (
            f"{len(self.cells)} cells: {self.ran} run, {self.cached} cached, "
            f"{len(self.failed)} failed in {self.wall_time:.1f}s "
            f"({self.jobs} jobs, {self.speedup:.1f}x vs serial)"
        )


def _run_cell(config: ExperimentConfig, faults=None, guard=None):
    """Pool worker: run one cell, trapping the exception *in the child*
    so only plain strings cross the process boundary."""
    start = time.perf_counter()
    try:
        result = run_experiment(
            config, RunOptions(faults=faults, guard=guard))
        return result, time.perf_counter() - start, None, None
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return (None, time.perf_counter() - start,
                f"{type(exc).__name__}: {exc}", traceback.format_exc())


def run_sweep(
    sweep: Union[Sweep, Iterable[ExperimentConfig]],
    jobs: Optional[int] = None,
    cache: bool = True,
    cache_store: Optional[ResultCache] = None,
    retries: int = 1,
    progress: Optional[ProgressFn] = None,
    options: Optional[RunOptions] = None,
    metrics=_UNSET,
    faults=_UNSET,
    guard=_UNSET,
) -> SweepReport:
    """Run every cell of ``sweep``; never raises for individual cells.

    ``jobs=None`` reads ``REPRO_JOBS`` (default ``cpu_count - 1``);
    ``jobs=1`` runs serially in-process.  ``cache=False`` bypasses the
    result store entirely (no reads, no writes).  Each failing cell is
    retried ``retries`` more times before landing in ``report.failed``.

    Harness options arrive via ``options=``
    (:class:`~repro.server.options.RunOptions`); the ``metrics``/
    ``faults``/``guard`` keywords are deprecated shims mapping into it.
    Fields a process-pooled sweep cannot honour (``tracer``,
    ``recorder``, ``audit``, ``workload``) are rejected.

    ``options.faults`` (a :class:`~repro.faults.FaultSchedule`) and
    ``options.guard`` (a :class:`~repro.server.slo.SloGuard`) apply to
    **every** cell; the cache keys them separately from fault-free
    cells, and schedules pickle cleanly across the process pool, so
    fault-injected sweeps are exactly as parallel and cacheable as
    fault-free ones.

    ``options.metrics`` (a :class:`repro.obs.MetricsRegistry`) receives
    live ``sweep_cache_hits_total`` / ``sweep_cache_misses_total``
    counters, a ``sweep_last_cell_seconds`` gauge, and a
    ``sweep_cell_seconds`` histogram — updated as cells resolve so a
    progress callback can read them mid-sweep.
    """
    opts = resolve_run_options("run_sweep", options, metrics=metrics,
                               faults=faults, guard=guard)
    reject_unsupported("run_sweep", opts, "tracer", "recorder", "audit",
                       "workload")
    metrics, faults, guard = opts.metrics, opts.faults, opts.guard
    cells = Sweep(sweep).cells if not isinstance(sweep, Sweep) \
        else sweep.cells
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    store = (cache_store if cache_store is not None else default_cache()) \
        if cache else None

    m_hits = m_misses = m_last = m_hist = None
    if metrics is not None:
        m_hits = metrics.counter(
            "sweep_cache_hits_total", "Result-cache hits during the sweep")
        m_misses = metrics.counter(
            "sweep_cache_misses_total", "Result-cache misses during the sweep")
        m_last = metrics.gauge(
            "sweep_last_cell_seconds",
            "Wall time of the most recently executed cell")
        m_hist = metrics.histogram(
            "sweep_cell_seconds", "Per-cell execution wall time")

    start = time.perf_counter()
    results: dict[ExperimentConfig, ExperimentResult] = {}
    cached = 0
    cell_time = 0.0
    done = 0
    total = len(cells)

    def tick(config: ExperimentConfig) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, _cell_label(config))

    if store is not None:
        for config in cells:
            hit = store.get(config, faults=faults, guard=guard)
            if hit is not None:
                results[config] = hit
                cached += 1
                if m_hits is not None:
                    m_hits.inc()
                tick(config)
            elif m_misses is not None:
                m_misses.inc()
    elif m_misses is not None:
        m_misses.inc(len(cells))

    pending = [c for c in cells if c not in results]
    attempts = {c: 0 for c in pending}
    last_error: dict[ExperimentConfig, tuple[str, str]] = {}

    def record(config: ExperimentConfig, outcome) -> None:
        nonlocal cell_time
        result, duration, error, tb = outcome
        cell_time += duration
        attempts[config] += 1
        if m_last is not None:
            m_last.set(duration)
            m_hist.observe(duration)
        if result is not None:
            results[config] = result
            if store is not None:
                store.put(config, result, faults=faults, guard=guard)
            tick(config)
        else:
            last_error[config] = (error, tb)

    for round_index in range(retries + 1):
        pending = [c for c in cells
                   if c not in results and attempts[c] == round_index]
        if not pending:
            break
        # Sized per round: a retry round usually has far fewer cells
        # than the first pass, so it should not spawn the full pool.
        workers = min(jobs, len(pending))
        if workers == 1:
            for config in pending:
                record(config, _run_cell(config, faults, guard))
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(_run_cell, c, faults, guard): c
                           for c in pending}
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(
                        remaining, return_when=FIRST_COMPLETED)
                    for future in finished:
                        config = futures[future]
                        try:
                            outcome = future.result()
                        except Exception as exc:  # pool/pickle breakage
                            outcome = (None, 0.0,
                                       f"{type(exc).__name__}: {exc}",
                                       traceback.format_exc())
                        record(config, outcome)

    failed = tuple(
        CellFailure(config=c, error=last_error[c][0],
                    traceback=last_error[c][1], attempts=attempts[c])
        for c in cells if c not in results
    )
    for failure in failed:
        tick(failure.config)

    return SweepReport(
        cells=cells,
        results=results,
        failed=failed,
        ran=len(results) - cached,
        cached=cached,
        jobs=jobs,
        wall_time=time.perf_counter() - start,
        cell_time=cell_time,
    )
