"""Resilience grids: policy × fault scenario, scored against fault-free.

KRISP's recovery argument (paper Fig. 2, Section III) is about behaviour
*under change*: kernel-scoped partitions re-form in microseconds, while
model- or device-scoped schemes pay epoch-scale reloads.  The chaos layer
measures exactly that: :func:`run_chaos` runs every requested policy
under every named fault scenario (plus the fault-free reference) with
SLO guard rails on, and reports each cell's goodput and SLO-violation
delta against its own fault-free baseline.

Scenarios are deterministic hand-built schedules placed inside the
cell's measurement window, so two chaos runs of the same grid — serial,
pooled, or cache-served — are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.exp.cache import ResultCache, cached_run_experiment, default_cache
from repro.faults.schedule import (
    BandwidthSpike,
    FaultSchedule,
    KernelStraggler,
    PerfDbDropout,
    RequestStorm,
    WorkerCrash,
)
from repro.server.experiment import (
    ExperimentConfig,
    ExperimentResult,
    measurement_window,
    slo_target,
)
from repro.server.slo import SloGuard

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosCell",
    "ChaosReport",
    "build_scenario",
    "default_guard",
    "run_chaos",
]

#: Named fault scenarios of the resilience grid, mildest first.
CHAOS_SCENARIOS: tuple[str, ...] = (
    "crash",
    "straggler",
    "bandwidth",
    "storm",
    "dropout",
    "mixed",
)


def build_scenario(name: str, config: ExperimentConfig,
                   seed: Optional[int] = None) -> FaultSchedule:
    """The deterministic fault schedule for one named scenario.

    Events are placed at fixed fractions of ``config``'s measurement
    window, so the same scenario scales with the cell instead of missing
    short windows or bunching at the start of long ones.
    """
    warmup, end = measurement_window(config)
    span = end - warmup
    seed = config.seed if seed is None else seed
    workers = max(1, len(config.model_names))

    crash = WorkerCrash(time=warmup + 0.30 * span, worker=0)
    straggler = KernelStraggler(start=warmup + 0.20 * span,
                                duration=0.30 * span, multiplier=4.0)
    spike = BandwidthSpike(start=warmup + 0.20 * span,
                           duration=0.30 * span, demand=1.5)
    storm = RequestStorm(start=warmup + 0.25 * span,
                         duration=0.20 * span, count=24 * workers)
    dropout = PerfDbDropout(time=warmup + 0.10 * span, fraction=0.25)

    events = {
        "crash": (crash,),
        "straggler": (straggler,),
        "bandwidth": (spike,),
        "storm": (storm,),
        "dropout": (dropout,),
        "mixed": (crash, straggler, spike, storm, dropout),
    }.get(name)
    if events is None:
        raise KeyError(
            f"unknown chaos scenario {name!r}; available: {CHAOS_SCENARIOS}")
    return FaultSchedule(events=events, seed=seed)


def default_guard(config: ExperimentConfig) -> SloGuard:
    """Guard rails for a chaos run of ``config``.

    Deadline is the cell's 2x-isolated SLO target with queueing headroom
    (4x: chaos latency is end-to-end, and bursts legitimately queue);
    admission depth bounds each queue at a few requests per worker.
    """
    deadline = 4.0 * max(slo_target(name, config.batch_size)
                         for name in set(config.model_names))
    return SloGuard(admission_depth=8, deadline=deadline,
                    max_retries=2, retry_backoff=1e-3)


@dataclass(frozen=True)
class ChaosCell:
    """One (policy, scenario) cell scored against its fault-free twin."""

    policy: str
    scenario: str
    result: ExperimentResult
    baseline: ExperimentResult

    @property
    def goodput_rps(self) -> float:
        return self.result.goodput_rps

    @property
    def goodput_delta(self) -> float:
        """Goodput change vs the fault-free baseline (negative = lost)."""
        return self.result.goodput_rps - self.baseline.goodput_rps

    @property
    def goodput_ratio(self) -> float:
        """Goodput retained under faults (1.0 = unharmed)."""
        base = self.baseline.goodput_rps
        return self.result.goodput_rps / base if base > 0 else 0.0

    @property
    def slo_violation_delta(self) -> float:
        """Change in worst worker p95 vs fault-free, in seconds."""
        return self.result.max_p95() - self.baseline.max_p95()


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one resilience grid."""

    model_names: tuple[str, ...]
    batch_size: int
    guard: SloGuard
    cells: tuple[ChaosCell, ...]

    def cell(self, policy: str, scenario: str) -> ChaosCell:
        for c in self.cells:
            if c.policy == policy and c.scenario == scenario:
                return c
        raise KeyError(f"no chaos cell ({policy!r}, {scenario!r})")

    def to_rows(self) -> list[dict]:
        """Flat JSON-native rows (one per cell) for the CLI/automation."""
        rows = []
        for c in self.cells:
            res = c.result.resilience
            rows.append({
                "policy": c.policy,
                "scenario": c.scenario,
                "goodput_rps": c.goodput_rps,
                "goodput_ratio": c.goodput_ratio,
                "baseline_goodput_rps": c.baseline.goodput_rps,
                "p95_delta_s": c.slo_violation_delta,
                "shed": res.shed if res else 0,
                "retried": res.retried if res else 0,
                "degraded": res.degraded if res else 0,
                "crashes": res.crashes if res else 0,
                "faults_injected": res.faults_injected if res else 0,
            })
        return rows

    def to_text(self) -> str:
        """Fixed-width grid for the terminal."""
        header = (f"{'policy':<16} {'scenario':<10} {'goodput':>9} "
                  f"{'retain':>7} {'dp95':>9} {'shed':>5} {'retry':>5} "
                  f"{'degr':>5}")
        lines = [header, "-" * len(header)]
        for row in self.to_rows():
            lines.append(
                f"{row['policy']:<16} {row['scenario']:<10} "
                f"{row['goodput_rps']:>9.1f} "
                f"{row['goodput_ratio']:>6.1%} "
                f"{row['p95_delta_s'] * 1e3:>8.2f}m "
                f"{row['shed']:>5d} {row['retried']:>5d} "
                f"{row['degraded']:>5d}"
            )
        return "\n".join(lines)


def _chaos_cell(config: ExperimentConfig, scenario: Optional[str],
                guard: Optional[SloGuard], store: Optional[ResultCache]):
    """One grid cell (``scenario=None`` = the policy's fault-free
    baseline); also the process-pool worker, so runs are pure functions
    of their arguments and pooled execution is bit-identical to serial."""
    from repro.server.experiment import run_experiment
    from repro.server.options import RunOptions

    faults = build_scenario(scenario, config) if scenario else None
    if store is not None:
        return cached_run_experiment(config, store, faults=faults,
                                     guard=guard)
    return run_experiment(config, RunOptions(faults=faults, guard=guard))


def run_chaos(
    model_names: Sequence[str],
    policies: Sequence[str],
    scenarios: Sequence[str] = CHAOS_SCENARIOS,
    *,
    batch_size: int = 32,
    seed: int = 0,
    requests_scale: float = 1.0,
    emulated: bool = False,
    guard: Optional[SloGuard] = None,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    jobs: int = 1,
    progress=None,
    allocation: str = "krisp",
    sizing: str = "static",
) -> ChaosReport:
    """Run the policy × scenario resilience grid.

    Every cell (including each policy's fault-free baseline) runs with
    the same :class:`SloGuard`, so deltas isolate the *faults*, not the
    guard rails.  Results route through the content-addressed cache.
    ``jobs > 1`` fans the independent cells out over a process pool;
    results are bit-identical to serial execution.  ``allocation`` and
    ``sizing`` select the mask-allocation / right-sizing policies for
    the KRISP cells (:mod:`repro.core.pools`).
    """
    configs = {
        policy: ExperimentConfig(
            model_names=tuple(model_names), policy=policy,
            batch_size=batch_size, seed=seed, emulated=emulated,
            requests_scale=requests_scale,
            allocation=allocation, sizing=sizing,
        )
        for policy in policies
    }
    the_guard = guard if guard is not None \
        else default_guard(next(iter(configs.values())))
    store = (cache if cache is not None else default_cache()) \
        if use_cache else None

    grid = [(policy, scenario)
            for policy in configs
            for scenario in (None, *scenarios)]
    total = len(grid)
    results: dict[tuple[str, Optional[str]], object] = {}
    if jobs > 1 and total > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
            futures = [pool.submit(_chaos_cell, configs[policy], scenario,
                                   the_guard, store)
                       for policy, scenario in grid]
            for (policy, scenario), future in zip(grid, futures):
                results[(policy, scenario)] = future.result()
                if progress is not None:
                    progress(len(results), total,
                             f"{policy}/{scenario or 'baseline'}")
    else:
        for policy, scenario in grid:
            results[(policy, scenario)] = _chaos_cell(
                configs[policy], scenario, the_guard, store)
            if progress is not None:
                progress(len(results), total,
                         f"{policy}/{scenario or 'baseline'}")

    cells = []
    for policy in configs:
        baseline = results[(policy, None)]
        for scenario in scenarios:
            cells.append(ChaosCell(policy=policy, scenario=scenario,
                                   result=results[(policy, scenario)],
                                   baseline=baseline))
    return ChaosReport(
        model_names=tuple(model_names),
        batch_size=batch_size,
        guard=the_guard,
        cells=tuple(cells),
    )
