"""Sweep orchestration: parallel experiment grids with result caching.

The evaluation grids of the paper (Fig. 13's policies x workers x models,
Fig. 15's 28 model pairs, Fig. 16's overlap-limit sweep) are
embarrassingly parallel: every :class:`~repro.server.experiment
.ExperimentConfig` cell is frozen, hashable, and seed-deterministic.
This package exploits that shape twice over:

* :mod:`repro.exp.cache` — a content-addressed on-disk result store, so
  a cell computed once is never recomputed until the configuration, the
  timing-model constants, or the repro version changes;
* :mod:`repro.exp.sweep` — a grid builder plus :func:`run_sweep`, which
  fans independent cells out over a process pool with per-cell
  retry-on-failure and a structured report;
* :mod:`repro.exp.chaos` — policy × fault-scenario resilience grids
  scored against each policy's fault-free baseline;
* :mod:`repro.exp.load` — latency-vs-offered-rate curves over
  :mod:`repro.workload` specs, cached point-by-point through the rate
  store.
"""

from repro.exp.cache import (
    CacheStats,
    JsonStore,
    RateResultCache,
    ResultCache,
    cache_key,
    cached_run_experiment,
    cached_run_rate_experiment,
    default_cache,
    default_rate_cache,
    fingerprint,
    rate_cache_key,
    rate_result_from_dict,
    rate_result_hash,
    rate_result_to_dict,
)
from repro.exp.chaos import (
    CHAOS_SCENARIOS,
    ChaosCell,
    ChaosReport,
    build_scenario,
    run_chaos,
)
from repro.exp.load import (
    DEFAULT_SCALES,
    LoadCurveReport,
    LoadPoint,
    run_load_curve,
)
from repro.exp.sweep import (
    CellFailure,
    Sweep,
    SweepReport,
    default_jobs,
    run_sweep,
)

__all__ = [
    "CacheStats",
    "JsonStore",
    "RateResultCache",
    "ResultCache",
    "cache_key",
    "cached_run_experiment",
    "cached_run_rate_experiment",
    "default_cache",
    "default_rate_cache",
    "fingerprint",
    "rate_cache_key",
    "rate_result_from_dict",
    "rate_result_hash",
    "rate_result_to_dict",
    "DEFAULT_SCALES",
    "LoadCurveReport",
    "LoadPoint",
    "run_load_curve",
    "CHAOS_SCENARIOS",
    "ChaosCell",
    "ChaosReport",
    "build_scenario",
    "run_chaos",
    "CellFailure",
    "Sweep",
    "SweepReport",
    "default_jobs",
    "run_sweep",
]
