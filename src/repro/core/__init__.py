"""KRISP: the paper's primary contribution.

* :mod:`~repro.core.allocation` — partition resource-mask generation
  (paper Algorithm 1) with the *Packed*, *Distributed*, and *Conserved*
  SE-distribution policies of Fig. 7.
* :mod:`~repro.core.perfdb` — the per-kernel performance database holding
  profiled minimum-CU requirements (amortised at library install time,
  Section IV-B).
* :mod:`~repro.core.rightsizing` — the runtime-side kernel-wise
  right-sizer that tags each launch with its partition size.
* :mod:`~repro.core.krisp` — ties right-sizing and allocation into the
  command-processor extension (:class:`KrispAllocator`) and a convenience
  :class:`KrispSystem` assembling a KRISP-enabled runtime.
"""

from repro.core.allocation import DistributionPolicy, ResourceMaskGenerator
from repro.core.krisp import KrispAllocator, KrispConfig, KrispSystem
from repro.core.perfdb import PerfDatabase
from repro.core.rightsizing import KernelRightSizer

__all__ = [
    "DistributionPolicy",
    "ResourceMaskGenerator",
    "KrispAllocator",
    "KrispConfig",
    "KrispSystem",
    "PerfDatabase",
    "KernelRightSizer",
]
