"""Partition resource-mask generation (paper Algorithm 1 and Fig. 7).

Given a requested partition size in CUs, the generator decides *which*
CUs to hand the kernel:

1. **How many SEs?**  Per the distribution policy — *Packed* fills one SE
   before spilling into the next; *Distributed* spreads over every SE;
   *Conserved* (the paper's choice) uses the fewest SEs that fit the
   request and spreads evenly across them, avoiding both the Packed
   imbalance spikes and the Distributed ceil-steps of Fig. 8.
2. **Which SEs?**  The least-loaded first, by summing the per-CU kernel
   counters inside each SE (Algorithm 1 lines 4-8).
3. **Which CUs inside an SE?**  The least-loaded first (line 12).  A CU
   that already holds a kernel counts against the *overlap limit*; once
   the limit is exhausted, further occupied CUs are skipped but still
   consume the allocation budget (lines 13-22), so the kernel may receive
   fewer CUs than requested — exactly KRISP-I's behaviour when isolated
   resources run out.

When isolation leaves a kernel with almost nothing, the paper notes that
"if there are not enough CUs to isolate kernels, we may allow them to
overlap": the generator enforces a *fair-share floor* — at least
``total_cus / (active_kernels + 1)`` CUs (capped at the request) — by
overlapping onto the least-loaded CUs.  Without the floor, a late kernel
squeezed to one or two CUs convoys the whole stream.  The generator also
never returns an empty mask (hardware cannot schedule a kernel with no
CUs, and the emulation's queue mask may not be empty).
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Optional

from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology

__all__ = ["DistributionPolicy", "ResourceMaskGenerator", "fair_share_floor",
           "se_distribution"]


def fair_share_floor(total_cus: int, total_assigned: int) -> int:
    """Minimum CU grant under the fair-share rule (Section IV-C2).

    ``total_assigned`` is the device-wide number of kernel-CU
    assignments in flight (the sum of the per-CU counters); the ceiling
    of that over the device size estimates how many device-filling
    kernels are active, and a new kernel is guaranteed at least an equal
    share alongside them.  Exposed as a module function so the audit
    subsystem (:mod:`repro.check`) re-derives the same floor the
    generator enforces.
    """
    if total_cus < 1:
        raise ValueError("total_cus must be >= 1")
    if total_assigned < 0:
        raise ValueError("total_assigned must be >= 0")
    load = -(-total_assigned // total_cus)  # ceil
    return max(1, total_cus // (load + 1))


class DistributionPolicy(Enum):
    """How requested CUs are spread across shader engines (Fig. 7)."""

    PACKED = "packed"
    DISTRIBUTED = "distributed"
    CONSERVED = "conserved"


def se_distribution(
    num_cus: int, topology: GpuTopology, policy: DistributionPolicy
) -> list[int]:
    """Target CU count per SE *position* (before load-aware SE choice).

    Returns a descending list of per-SE CU counts; the generator later maps
    positions onto concrete SEs ordered by load.
    """
    if not 1 <= num_cus <= topology.total_cus:
        raise ValueError(
            f"num_cus={num_cus} out of range [1, {topology.total_cus}]"
        )
    per_se = topology.cus_per_se
    if policy is DistributionPolicy.PACKED:
        counts = []
        remaining = num_cus
        while remaining > 0:
            take = min(per_se, remaining)
            counts.append(take)
            remaining -= take
        counts += [0] * (topology.num_se - len(counts))
        return counts
    if policy is DistributionPolicy.DISTRIBUTED:
        num_se = topology.num_se
    else:  # CONSERVED: least SEs that satisfy the request (Alg. 1 line 2)
        num_se = math.ceil(num_cus / per_se)
    base, remainder = divmod(num_cus, num_se)
    counts = [base + (1 if i < remainder else 0) for i in range(num_se)]
    counts += [0] * (topology.num_se - num_se)
    return counts


class ResourceMaskGenerator:
    """Implements Algorithm 1: load-aware CU-mask generation."""

    def __init__(
        self,
        topology: GpuTopology,
        policy: DistributionPolicy = DistributionPolicy.CONSERVED,
        overlap_limit: Optional[int] = None,
        reshape: bool = True,
    ) -> None:
        """``overlap_limit`` is the number of already-occupied CUs a new
        kernel may share; ``None`` means unlimited (KRISP-O), ``0`` means
        fully isolated (KRISP-I).

        ``reshape=True`` (the default, a refinement over the paper's
        single-pass Algorithm 1) regenerates shrunk allocations into a
        balanced distribution shape; ``reshape=False`` keeps the literal
        single-pass behaviour, whose ragged masks reproduce the paper's
        Fig. 16 overlap-limit spikes.
        """
        self.topology = topology
        self.policy = policy
        if overlap_limit is None:
            overlap_limit = topology.total_cus
        if overlap_limit < 0:
            raise ValueError("overlap_limit must be >= 0")
        self.overlap_limit = overlap_limit
        self.reshape = reshape
        self.masks_generated = 0
        # se_distribution is pure in (num_cus, topology, policy) and the
        # latter two are fixed per generator, so memoise per size — the
        # serving loop requests the same few sizes millions of times.
        self._distribution_cache: dict[int, list[int]] = {}
        # Mask interning: steady-state serving converges onto a small set
        # of partitions, and returning the same CUMask object lets its
        # cached decode (cu_tuple, per-SE counts) be computed once
        # instead of per launch.
        self._mask_cache: dict[int, CUMask] = {}
        # Full-result memo: the mask is a pure function of the request
        # size and the per-CU counter vector (SE loads, busy count, and
        # total assignments all derive from it).  Serving loops revisit
        # the same counter states constantly, so cache the whole
        # Algorithm-1 run keyed on (num_cus, counts-bytes).  Capped to
        # bound memory on adversarial churn (maskgen-style sweeps).
        self._generate_cache: dict[tuple[int, bytes], CUMask] = {}

    _GENERATE_CACHE_MAX = 1 << 17

    def _distribution(self, num_cus: int) -> list[int]:
        targets = self._distribution_cache.get(num_cus)
        if targets is None:
            targets = se_distribution(num_cus, self.topology, self.policy)
            self._distribution_cache[num_cus] = targets
        return targets

    def generate(self, num_cus: int, counters: CUKernelCounters) -> CUMask:
        """Generate a CU mask for a kernel requesting ``num_cus`` CUs.

        Two passes: the first runs Algorithm 1 under the overlap limit to
        size the *grant* (how many CUs this kernel gets, respecting the
        fair-share floor); the second regenerates a properly
        distribution-shaped mask of exactly that size on the least-loaded
        CUs.  A single pass that merely skips occupied CUs produces
        ragged masks — e.g. one straggler CU in an otherwise unused SE —
        which the equal-split workgroup dispatcher punishes exactly like
        the Packed-policy spikes of Fig. 8.

        The fair-share floor is sized from the device's current CU load
        (total kernel-CU assignments over the device size), so a swarm of
        tiny kernels does not starve a large one.  In isolation mode
        (``overlap_limit == 0``) the request is additionally *capped* at
        the larger of the free pool and the fair share: without the cap
        the first big kernel grabs its full minimum and every later
        kernel convoys on leftovers; with it, co-located big-kernel
        models converge to clean fair-share partitions (the behaviour
        KRISP-I's Fig. 13 results rely on).
        """
        topo = self.topology
        if num_cus < 1:
            num_cus = 1
        elif num_cus > topo.total_cus:
            num_cus = topo.total_cus
        # Per-CU counts are small ints (bounded by max_kernels_per_cu),
        # so bytes() is a compact, hashable snapshot of the full state.
        memo_key = (num_cus, bytes(counters.counts_view()))
        cached = self._generate_cache.get(memo_key)
        if cached is not None:
            self.masks_generated += 1
            return cached
        floor = fair_share_floor(topo.total_cus, counters.total_assigned())
        if self.overlap_limit == 0:
            free = topo.total_cus - counters.busy_cus()
            num_cus = min(num_cus, max(floor, free))
        floor = min(floor, num_cus)

        selected = self._select(num_cus, counters, self.overlap_limit)
        if len(selected) < num_cus:
            if self.reshape:
                # The overlap budget shrank (or raggedified) the
                # allocation: regrant at the floor-respecting size with
                # overlap permitted, so the final mask keeps the
                # distribution policy's shape ("we may allow them to
                # overlap", Section IV-C2).
                grant = max(len(selected), floor)
                selected = self._select(grant, counters, topo.total_cus)
            elif len(selected) < floor:
                # Literal Algorithm 1 + floor: top up with the least
                # loaded CUs, accepting a possibly ragged shape.
                chosen = set(selected)
                extras = sorted(
                    (cu for cu in range(topo.total_cus)
                     if cu not in chosen),
                    key=lambda cu: (counters.count(cu), cu),
                )
                selected.extend(extras[:floor - len(selected)])

        self.masks_generated += 1
        bits = 0
        for cu in selected:
            bits |= 1 << cu
        mask = self._mask_cache.get(bits)
        if mask is None:
            mask = CUMask(topo, bits)
            self._mask_cache[bits] = mask
        if len(self._generate_cache) < self._GENERATE_CACHE_MAX:
            self._generate_cache[memo_key] = mask
        return mask

    def _select(self, num_cus: int, counters: CUKernelCounters,
                overlap_limit: int) -> list[int]:
        """One Algorithm-1 selection pass under ``overlap_limit``."""
        topo = self.topology
        targets = self._distribution(num_cus)

        # Order SEs least-loaded first (Alg. 1 lines 4-8); ties by index
        # for determinism.  Sorting by load alone is equivalent to the
        # (load, index) key: the input is ascending by index and Python's
        # sort is stable, so ties keep index order — but the key is a
        # C-level list lookup instead of a lambda.
        se_order = sorted(range(topo.num_se),
                          key=counters.se_loads_view().__getitem__)

        counts = counters.counts_view()
        selected: list[int] = []
        overlapped = 0
        allocated = 0
        for position, se in enumerate(se_order):
            want = targets[position]
            if want == 0 or allocated >= num_cus:
                break
            # Order CUs in this SE least-loaded first (Alg. 1 line 12).
            # Same stable-sort argument as above: cus_in_se() is an
            # ascending range, so ties keep index order.
            cu_order = sorted(topo.cus_in_se(se), key=counts.__getitem__)
            taken_in_se = 0
            for cu in cu_order:
                if taken_in_se >= want or allocated >= num_cus:
                    break
                occupied = counts[cu] > 0
                if occupied:
                    overlapped += 1
                if not occupied or overlapped <= overlap_limit:
                    selected.append(cu)
                taken_in_se += 1
                allocated += 1
        return selected
