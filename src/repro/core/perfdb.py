"""Per-kernel performance database.

The paper keys right-sizing decisions on *kernel type plus kernel size
plus input size* (Section IV-B1: neither size alone predicts the minimum
CU requirement).  The database maps that key to the profiled minimum CU
count, mirrors MIOpen/rocBLAS install-time performance databases, and
serialises to JSON so profiling is amortised across runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.gpu.kernel import KernelDescriptor

__all__ = ["KernelKey", "PerfDatabase"]


@dataclass(frozen=True)
class KernelKey:
    """Lookup key: kernel type + kernel size + input size."""

    name: str
    kernel_size: int
    bytes_in: int

    @classmethod
    def of(cls, desc: KernelDescriptor) -> "KernelKey":
        """Key for a descriptor."""
        return cls(desc.name, desc.kernel_size, desc.bytes_in)

    def encode(self) -> str:
        """Stable string form used in the JSON serialisation."""
        return f"{self.name}|{self.kernel_size}|{self.bytes_in}"

    @classmethod
    def decode(cls, text: str) -> "KernelKey":
        """Inverse of :meth:`encode`."""
        name, kernel_size, bytes_in = text.rsplit("|", 2)
        return cls(name, int(kernel_size), int(bytes_in))


class PerfDatabase:
    """Profiled minimum-CU requirements, keyed by :class:`KernelKey`."""

    def __init__(self) -> None:
        self._min_cus: dict[KernelKey, int] = {}
        self.lookups = 0
        self.misses = 0
        #: Bumped by every content mutation; memo layers (the right-sizer
        #: hit cache) compare it to detect mid-run changes such as the
        #: fault injector's perf-DB dropout.
        self.generation = 0

    def record(self, desc: KernelDescriptor, min_cus: int) -> None:
        """Store the profiled minimum CU count for a kernel."""
        if min_cus < 1:
            raise ValueError("min_cus must be >= 1")
        self._min_cus[KernelKey.of(desc)] = min_cus
        self.generation += 1

    def lookup(self, desc: KernelDescriptor) -> Optional[int]:
        """Profiled minimum CUs, or ``None`` for an unprofiled kernel."""
        self.lookups += 1
        value = self._min_cus.get(KernelKey.of(desc))
        if value is None:
            self.misses += 1
        return value

    def __len__(self) -> int:
        return len(self._min_cus)

    def __contains__(self, desc: KernelDescriptor) -> bool:
        return KernelKey.of(desc) in self._min_cus

    def entries(self) -> Iterator[tuple[KernelKey, int]]:
        """All (key, min_cus) pairs, in insertion order."""
        return iter(self._min_cus.items())

    # -- persistence ---------------------------------------------------------
    def to_json(self) -> str:
        """Serialise to a JSON string."""
        payload = {key.encode(): value for key, value in self._min_cus.items()}
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PerfDatabase":
        """Deserialise from :meth:`to_json` output."""
        db = cls()
        for encoded, value in json.loads(text).items():
            db._min_cus[KernelKey.decode(encoded)] = int(value)
        return db

    def save(self, path: Union[str, Path]) -> None:
        """Write the database to a JSON file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PerfDatabase":
        """Read a database written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    def merge(self, other: "PerfDatabase") -> None:
        """Adopt every entry of ``other`` (other wins on conflicts)."""
        self._min_cus.update(other._min_cus)
        self.generation += 1

    def drop_fraction(self, fraction: float, seed: int = 0) -> int:
        """Remove a deterministic ``fraction`` of entries; returns how many.

        The victims are chosen by hashing each encoded key with ``seed``
        (no RNG state, no insertion-order dependence), so the same
        (contents, fraction, seed) always drops the same entries — the
        fault injector's perf-DB dropout stays bit-reproducible across
        serial, pooled, and cached runs.  At least one entry is dropped
        for any ``fraction > 0`` on a non-empty database.
        """
        return len(self.take_fraction(fraction, seed=seed))

    def take_fraction(self, fraction: float,
                      seed: int = 0) -> dict[KernelKey, int]:
        """:meth:`drop_fraction`, but return the removed entries.

        The returned mapping is what :meth:`restore` takes back — the
        fault injector holds it for the duration of a bounded dropout
        window, then reinstates it when the window closes.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if fraction == 0.0 or not self._min_cus:
            return {}
        ranked = sorted(
            self._min_cus,
            key=lambda key: hashlib.sha256(
                f"{seed}:{key.encode()}".encode()).hexdigest(),
        )
        count = max(1, int(round(fraction * len(ranked))))
        taken = {key: self._min_cus.pop(key) for key in ranked[:count]}
        self.generation += 1
        return taken

    def restore(self, entries: dict[KernelKey, int]) -> None:
        """Reinstate entries removed by :meth:`take_fraction`.

        Bumps the generation so memo layers (the right-sizer's hit and
        fallback caches) drop every answer derived from the degraded
        database.  A no-op for an empty mapping.
        """
        if not entries:
            return
        self._min_cus.update(entries)
        self.generation += 1
