"""KRISP assembly: the command-processor allocator and a system facade.

:class:`KrispAllocator` is the hardware half — installed into the GPU
command processor, it turns each kernel's injected partition size into a
CU mask by running Algorithm 1 against the live per-CU kernel counters
(paper Fig. 10b).

:class:`KrispSystem` is a convenience facade wiring a complete
KRISP-enabled stack over a device: performance database, right-sizer,
allocator, HSA runtime, and stream construction in either *native* mode
(the proposed hardware) or *emulated* mode (the paper's evaluation
vehicle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.allocation import DistributionPolicy, ResourceMaskGenerator
from repro.core.perfdb import PerfDatabase
from repro.core.rightsizing import KernelRightSizer
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelLaunch
from repro.runtime.emulation import EmulatedKernelScopedStream, EmulationConfig
from repro.runtime.hsa import HsaRuntime
from repro.runtime.stream import Stream
from repro.sim.engine import Simulator

__all__ = ["KrispAllocator", "KrispConfig", "KrispSystem"]


@dataclass(frozen=True)
class KrispConfig:
    """Policy knobs for a KRISP deployment.

    ``overlap_limit=None`` permits unlimited CU oversubscription (the
    paper's *KRISP-O*); ``overlap_limit=0`` enforces isolation
    (*KRISP-I*); intermediate values reproduce the Fig. 16 sensitivity
    sweep.
    """

    distribution: DistributionPolicy = DistributionPolicy.CONSERVED
    overlap_limit: Optional[int] = None
    margin_cus: int = 0
    #: Regenerate shrunk allocations into balanced shapes (see
    #: :class:`repro.core.allocation.ResourceMaskGenerator`).
    reshape: bool = True
    #: Mask-allocation policy: ``"krisp"`` (per-kernel Algorithm 1),
    #: ``"pooled"``, or ``"pooled-contention"`` (see
    #: :mod:`repro.core.pools`).
    allocation: str = "krisp"
    #: Right-sizing policy: ``"static"`` or ``"predictive"``.
    sizing: str = "static"

    def __post_init__(self) -> None:
        from repro.core.pools import ALLOCATION_POLICIES, SIZING_POLICIES
        if self.allocation not in ALLOCATION_POLICIES:
            raise ValueError(
                f"unknown allocation {self.allocation!r}; "
                f"available: {list(ALLOCATION_POLICIES)}")
        if self.sizing not in SIZING_POLICIES:
            raise ValueError(
                f"unknown sizing {self.sizing!r}; "
                f"available: {list(SIZING_POLICIES)}")


class KrispAllocator:
    """The packet-processor extension: partition size -> CU mask."""

    def __init__(self, generator: ResourceMaskGenerator) -> None:
        self.generator = generator
        self.allocations = 0
        self.short_allocations = 0
        #: Launches served through the degraded fallback mask because
        #: Algorithm 1 raised instead of producing a mask.
        self.degraded = 0
        # Lazy import: repro.profiling's package init pulls in the model
        # profiler, which imports the engine (circular at module level).
        from repro.profiling import simprofile
        self._simprofile = simprofile

    def allocate(self, launch: KernelLaunch, device: GpuDevice) -> CUMask:
        """Generate this kernel's resource mask from the live counters.

        A launch without sizing information receives the full device —
        the safe default for unprofiled kernels.  If mask generation
        itself fails, the kernel is served on the full device instead of
        killing the serving path (graceful degradation; counted in
        ``degraded`` and visible as a ``mask-fallback`` trace instant).
        """
        profiler = self._simprofile._ACTIVE
        if profiler is not None:
            from time import perf_counter
            t0 = perf_counter()
        requested = launch.requested_cus
        if requested is None:
            requested = device.topology.total_cus
        try:
            mask = self.generator.generate(requested, device.counters)
        except Exception:
            self.degraded += 1
            mask = CUMask.all_cus(device.topology)
            tracer = device.sim.tracer
            if tracer.enabled:
                tracer.fault_injected("mask-fallback", {
                    "kernel": launch.descriptor.name,
                    "requested_cus": requested,
                })
        self.allocations += 1
        if mask.count() < min(requested, device.topology.total_cus):
            self.short_allocations += 1
        if profiler is not None:
            profiler.add("allocator", perf_counter() - t0)
        return mask


class KrispSystem:
    """A fully wired KRISP stack over one simulated device."""

    def __init__(
        self,
        sim: Simulator,
        device: GpuDevice,
        database: PerfDatabase,
        config: Optional[KrispConfig] = None,
        emulation: Optional[EmulationConfig] = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.database = database
        self.config = config or KrispConfig()
        self.emulation_config = emulation or EmulationConfig()
        generator = ResourceMaskGenerator(
            device.topology,
            policy=self.config.distribution,
            overlap_limit=self.config.overlap_limit,
            reshape=self.config.reshape,
        )
        if self.config.allocation == "krisp":
            self.allocator = KrispAllocator(generator)
        else:
            from repro.core.pools import PooledMaskAllocator
            self.allocator = PooledMaskAllocator(
                generator,
                contention=self.config.allocation == "pooled-contention",
            )
        self.rightsizer = self._wrap_sizer(KernelRightSizer(
            database, device.topology, margin_cus=self.config.margin_cus
        ))
        self.runtime = HsaRuntime(sim, device, allocator=self.allocator)

    def _wrap_sizer(self, sizer: KernelRightSizer):
        """Layer the configured sizing policy over a static oracle."""
        if self.config.sizing == "predictive":
            from repro.core.pools import PredictiveRightSizer
            return PredictiveRightSizer(sizer, self.device)
        return sizer

    def create_stream(
        self,
        name: str = "",
        emulated: bool = False,
        fallback_cus: Optional[int] = None,
    ) -> Union[Stream, EmulatedKernelScopedStream]:
        """Create a KRISP-enabled stream.

        ``emulated=False`` (default) models the proposed hardware: the
        stream tags launches with partition sizes and the extended packet
        processor generates masks in firmware.  ``emulated=True`` models
        the paper's evaluation platform: barrier packets plus IOCTL mask
        reconfiguration around every kernel.

        ``fallback_cus`` gives the stream its own right-sizer whose
        missing-entry answer is that partition size (typically the
        stream's model-wise right-size) instead of the full device —
        graceful degradation under a partial perf-DB.
        """
        sizer = self.rightsizer
        if fallback_cus is not None:
            sizer = self._wrap_sizer(KernelRightSizer(
                self.database,
                self.device.topology,
                margin_cus=self.config.margin_cus,
                fallback_cus=fallback_cus,
            ))
        if emulated:
            return EmulatedKernelScopedStream(
                self.runtime,
                allocator=self.allocator,
                sizer=sizer,
                config=self.emulation_config,
                name=name,
            )
        return Stream(self.runtime, name=name, rightsizer=sizer)
