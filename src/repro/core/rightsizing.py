"""Kernel-wise right-sizing (the runtime half of KRISP).

A :class:`KernelRightSizer` is installed as a stream's right-sizer hook:
it intercepts every kernel launch, looks the kernel up in the performance
database, and returns the partition size to inject into the AQL packet.
Unprofiled kernels fall back to the full device (never *shrinking* a
kernel blindly), optionally recording the miss so an offline profiling
pass can fill the gap — the paper amortises this at library install time.
"""

from __future__ import annotations

from typing import Optional

from repro.core.perfdb import PerfDatabase
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology

__all__ = ["KernelRightSizer"]


class KernelRightSizer:
    """Maps a kernel descriptor to its requested partition size in CUs."""

    def __init__(
        self,
        database: PerfDatabase,
        topology: GpuTopology,
        margin_cus: int = 0,
        fallback_cus: Optional[int] = None,
    ) -> None:
        """``margin_cus`` optionally pads every right-size by a safety
        margin (an ablation knob; the paper uses the raw profiled minimum).

        ``fallback_cus`` is the degraded answer for a kernel missing from
        the database — typically the *model-wise* right-size, so a partial
        perf-DB degrades to per-model partitioning instead of grabbing the
        whole device.  ``None`` keeps the historical full-device fallback.
        """
        if margin_cus < 0:
            raise ValueError("margin_cus must be >= 0")
        if fallback_cus is not None and fallback_cus < 1:
            raise ValueError("fallback_cus must be >= 1 (or None)")
        self.database = database
        self.topology = topology
        self.margin_cus = margin_cus
        self.fallback_cus = fallback_cus
        self.unprofiled: set[str] = set()
        #: Launches answered through the fallback path (missing DB entry).
        self.degraded = 0
        # Memo of answers, keyed by descriptor.  The serving loop
        # re-resolves the same few descriptors millions of times, so
        # replay the answer while keeping the database's lookup count
        # honest.  Both caches are tied to the database's mutation
        # generation: a mid-run change (fault-injected perf-DB dropout,
        # a dropout window closing and restoring entries, an offline
        # profiling merge) drops every memoised answer.  Fallback
        # answers are memoised *separately* from hits — never in
        # ``_hit_cache`` — so a stale degraded answer can never shadow
        # a recovered database entry, and a fallback-memo replay keeps
        # the miss accounting (``lookups``/``misses``/``degraded``)
        # identical to an unmemoised lookup.
        self._hit_cache: dict[KernelDescriptor, int] = {}
        self._fallback_cache: dict[KernelDescriptor, int] = {}
        self._hit_cache_gen = database.generation

    def __call__(self, desc: KernelDescriptor) -> Optional[int]:
        """Requested CU count for ``desc`` (the Stream right-sizer hook)."""
        database = self.database
        if database.generation != self._hit_cache_gen:
            self._hit_cache.clear()
            self._fallback_cache.clear()
            self._hit_cache_gen = database.generation
        cached = self._hit_cache.get(desc)
        if cached is not None:
            database.lookups += 1
            return cached
        cached = self._fallback_cache.get(desc)
        if cached is not None:
            # Observationally identical to re-running the miss path.
            database.lookups += 1
            database.misses += 1
            self.degraded += 1
            return cached
        min_cus = self.database.lookup(desc)
        if min_cus is None:
            self.unprofiled.add(desc.name)
            self.degraded += 1
            if self.fallback_cus is not None:
                result = min(self.topology.total_cus, self.fallback_cus)
            else:
                result = self.topology.total_cus
            self._fallback_cache[desc] = result
            return result
        result = min(self.topology.total_cus, min_cus + self.margin_cus)
        self._hit_cache[desc] = result
        return result
