"""Kernel-wise right-sizing (the runtime half of KRISP).

A :class:`KernelRightSizer` is installed as a stream's right-sizer hook:
it intercepts every kernel launch, looks the kernel up in the performance
database, and returns the partition size to inject into the AQL packet.
Unprofiled kernels fall back to the full device (never *shrinking* a
kernel blindly), optionally recording the miss so an offline profiling
pass can fill the gap — the paper amortises this at library install time.
"""

from __future__ import annotations

from typing import Optional

from repro.core.perfdb import PerfDatabase
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology

__all__ = ["KernelRightSizer"]


class KernelRightSizer:
    """Maps a kernel descriptor to its requested partition size in CUs."""

    def __init__(
        self,
        database: PerfDatabase,
        topology: GpuTopology,
        margin_cus: int = 0,
    ) -> None:
        """``margin_cus`` optionally pads every right-size by a safety
        margin (an ablation knob; the paper uses the raw profiled minimum).
        """
        if margin_cus < 0:
            raise ValueError("margin_cus must be >= 0")
        self.database = database
        self.topology = topology
        self.margin_cus = margin_cus
        self.unprofiled: set[str] = set()

    def __call__(self, desc: KernelDescriptor) -> Optional[int]:
        """Requested CU count for ``desc`` (the Stream right-sizer hook)."""
        min_cus = self.database.lookup(desc)
        if min_cus is None:
            self.unprofiled.add(desc.name)
            return self.topology.total_cus
        return min(self.topology.total_cus, min_cus + self.margin_cus)
