"""Pooled, contention-aware allocation policies (ROADMAP item 4).

Three policies layered over the Algorithm-1 stack:

**Pooled allocation** (:class:`PooledMaskAllocator`) — ECLIP-style: a
small pre-generated set of distribution-shaped CU-mask pools per size
class, built once per device, with a resource-allocation optimizer that
assigns each kernel to the least-loaded lawful pool entry under a
bounded repacking budget.  Selecting a mask is a scan over a handful of
pre-decoded pool entries instead of a full Algorithm-1 run, which is
where the allocation-overhead win comes from.

**Contention-aware assignment** (``allocation="pooled-contention"``) —
folds a memory-interference slowdown model into co-resident choice.
The model mirrors the device's own bandwidth-throttle regime
(:func:`interference_slowdown`): when resident demand exceeds the
device budget, a memory-intense kernel placed on occupied CUs pays the
oversubscription slowdown, so such placements are penalised in the pool
score.

**Predictive right-sizing** (:class:`PredictiveRightSizer`) — adapts
``minCU`` online from the same observable signals :class:`~repro.obs.
sampler.SimSampler` exports (bandwidth pressure, straggler fault
scale), read directly off the device at decision time so results never
depend on whether metrics collection is enabled.  The static
:class:`~repro.core.rightsizing.KernelRightSizer` is kept as the
oracle: the predictive layer only ever *shrinks* the oracle answer, and
only outside straggler windows.

Lawfulness contract: every pool-served mask satisfies the
:class:`~repro.check.invariants.MaskLawChecker` laws L1-L4 at the
original request.  Pool selection recomputes the checker's grant window
``[floor_capped, effective]`` from the live counters and serves the
largest size class inside it; a class strictly below ``effective`` is a
lawful shrink (L4's escape), a class equal to ``effective`` must respect
the overlap limit or the entry is repacked through Algorithm 1 (lawful
by construction); when no class fits the window the allocator falls
back to a plain Algorithm-1 run.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.allocation import (
    DistributionPolicy,
    ResourceMaskGenerator,
    fair_share_floor,
    se_distribution,
)
from repro.core.rightsizing import KernelRightSizer
from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.kernel import KernelDescriptor, KernelLaunch

__all__ = [
    "ALLOCATION_POLICIES",
    "SIZING_POLICIES",
    "PooledMaskAllocator",
    "PredictiveRightSizer",
    "default_size_classes",
    "interference_slowdown",
]

#: Allocation-policy names accepted by ``ExperimentConfig.allocation``.
ALLOCATION_POLICIES = ("krisp", "pooled", "pooled-contention")

#: Right-sizing policy names accepted by ``ExperimentConfig.sizing``.
SIZING_POLICIES = ("static", "predictive")

#: Simulated cost of swapping a queue onto a different pool entry
#: (an IOCTL-sized constant, accounted on the device, never added to
#: kernel latency).
DEFAULT_SWITCH_COST_S = 5e-6


def interference_slowdown(mem_intensity: float, total_demand: float,
                          budget: float) -> float:
    """Predicted slowdown of a kernel under bandwidth oversubscription.

    Mirrors the device's effective-latency throttle: the compute share
    of the kernel is unaffected, the memory share is stretched by the
    demand-over-budget ratio.  Returns ``1.0`` when the device is under
    budget (no interference).
    """
    if budget <= 0.0 or total_demand <= budget:
        return 1.0
    throttle = (1.0 - mem_intensity) + mem_intensity * (budget / total_demand)
    return 1.0 / throttle


def default_size_classes(total_cus: int, cus_per_se: int) -> tuple[int, ...]:
    """The default pool size classes for a device shape.

    Small powers of two for tiny kernels, then SE multiples up to the
    full device — the sizes serving loops actually converge on.
    """
    classes = {2, 4, max(1, cus_per_se // 2), cus_per_se}
    step = cus_per_se
    while step < total_cus:
        step += cus_per_se
        classes.add(min(step, total_cus))
    classes.add(total_cus)
    return tuple(sorted(c for c in classes if 1 <= c <= total_cus))


class PooledMaskAllocator:
    """ECLIP-style pooled CU-mask allocation over Algorithm 1.

    Exposes the same ``generate(num_cus, counters)`` surface (plus the
    ``topology``/``policy``/``reshape``/``overlap_limit`` attributes) as
    :class:`ResourceMaskGenerator`, so ``MaskLawChecker`` audits it
    verbatim, and the same ``allocate(launch, device)`` surface as
    :class:`~repro.core.krisp.KrispAllocator`, so it drops into the
    command processor unchanged.
    """

    def __init__(
        self,
        generator: ResourceMaskGenerator,
        size_classes: Optional[tuple[int, ...]] = None,
        pool_depth: Optional[int] = None,
        repack_budget: int = 32,
        repack_refill: float = 1.0 / 64.0,
        contention: bool = False,
        contention_weight: float = 8.0,
        switch_cost_s: float = DEFAULT_SWITCH_COST_S,
    ) -> None:
        """``repack_budget`` is a token bucket: at most that many
        repacks outstanding at once, refilled ``repack_refill`` tokens
        per allocation — the ECLIP "bounded repacking" knob.  With
        ``contention=True`` the pool score folds in the
        memory-interference slowdown of co-residency (Zahaf-style
        placement); that path reads live device state, so it bypasses
        the selection memo.
        """
        if repack_budget < 0:
            raise ValueError("repack_budget must be >= 0")
        if repack_refill < 0:
            raise ValueError("repack_refill must be >= 0")
        if switch_cost_s < 0:
            raise ValueError("switch_cost_s must be >= 0")
        self.generator = generator
        topo = generator.topology
        if size_classes is None:
            size_classes = default_size_classes(topo.total_cus,
                                                topo.cus_per_se)
        for cls in size_classes:
            if not 1 <= cls <= topo.total_cus:
                raise ValueError(f"size class {cls} outside [1, "
                                 f"{topo.total_cus}]")
        self.size_classes = tuple(sorted(set(size_classes)))
        self._classes_desc = tuple(reversed(self.size_classes))
        self.pool_depth = pool_depth if pool_depth else topo.num_se
        if self.pool_depth < 1:
            raise ValueError("pool_depth must be >= 1")
        self.repack_budget = repack_budget
        self.repack_refill = repack_refill
        self.contention = contention
        self.contention_weight = contention_weight
        self.switch_cost_s = switch_cost_s

        # Counters mirroring KrispAllocator, plus pool-specific stats.
        self.allocations = 0
        self.short_allocations = 0
        self.degraded = 0
        self.pool_hits = 0
        self.repacks = 0
        self.fallbacks = 0

        self._repack_tokens = float(repack_budget)
        self._mask_cache: dict[int, CUMask] = {}
        # Pure-path selection memo: without contention the chosen mask
        # is a function of (request, counter vector) and the current
        # pool contents; a stored answer stays lawful for an identical
        # counter state even after repacks, so the memo is only cleared
        # when a repack actually changes the pools.
        self._select_cache: dict[tuple[int, bytes], CUMask] = {}
        self._pools: dict[int, list[CUMask]] = {
            cls: self._build_pool(cls) for cls in self.size_classes
        }
        self._repack_cursor: dict[int, int] = {
            cls: 0 for cls in self.size_classes}
        # Lazy import: repro.profiling's package init pulls in the model
        # profiler, which imports the engine (circular at module level).
        from repro.profiling import simprofile
        self._simprofile = simprofile

    _SELECT_CACHE_MAX = 1 << 16

    # MaskLawChecker reads these off the "generator" it wraps.
    @property
    def topology(self):
        return self.generator.topology

    @property
    def policy(self) -> DistributionPolicy:
        return self.generator.policy

    @property
    def reshape(self) -> bool:
        return self.generator.reshape

    @property
    def overlap_limit(self) -> int:
        return self.generator.overlap_limit

    def _intern(self, bits: int) -> CUMask:
        mask = self._mask_cache.get(bits)
        if mask is None:
            mask = CUMask(self.topology, bits)
            self._mask_cache[bits] = mask
        return mask

    def _build_pool(self, cls: int) -> list[CUMask]:
        """Pre-generate ``pool_depth`` distribution-shaped entries.

        Each entry keeps the balanced per-SE split of
        :func:`se_distribution` (so L3 holds by construction) but
        rotates both the SE assignment and the within-SE start offset,
        giving the optimizer genuinely distinct placements to spread
        load over.
        """
        topo = self.topology
        targets = se_distribution(cls, topo, self.policy)
        per_se = topo.cus_per_se
        stride = max(1, per_se // self.pool_depth)
        entries: list[CUMask] = []
        seen: set[int] = set()
        for entry in range(self.pool_depth):
            bits = 0
            start = (entry * stride) % per_se
            for position, want in enumerate(targets):
                if want == 0:
                    break
                se_cus = topo.cus_in_se((entry + position) % topo.num_se)
                for i in range(want):
                    bits |= 1 << se_cus[(start + i) % per_se]
            if bits not in seen:
                seen.add(bits)
                entries.append(self._intern(bits))
        return entries

    def pool_stats(self) -> dict[str, int]:
        """Deterministic operation counts for reports and CLI output."""
        return {
            "allocations": self.allocations,
            "pool_hits": self.pool_hits,
            "repacks": self.repacks,
            "fallbacks": self.fallbacks,
            "short_allocations": self.short_allocations,
            "degraded": self.degraded,
        }

    # -- core selection ------------------------------------------------------
    def generate(self, num_cus: int,
                 counters: CUKernelCounters) -> CUMask:
        """Law-conformant pool selection (MaskLawChecker-compatible)."""
        return self._generate(num_cus, counters, None, None)

    def _generate(self, num_cus: int, counters: CUKernelCounters,
                  descriptor: Optional[KernelDescriptor],
                  device: Any) -> CUMask:
        topo = self.topology
        requested = max(1, min(num_cus, topo.total_cus))
        self._repack_tokens = min(float(self.repack_budget),
                                  self._repack_tokens + self.repack_refill)
        biased = (self.contention and device is not None
                  and descriptor is not None)
        memo_key: Optional[tuple[int, bytes]] = None
        if not biased:
            memo_key = (requested, bytes(counters.counts_view()))
            cached = self._select_cache.get(memo_key)
            if cached is not None:
                self.pool_hits += 1
                return cached

        # The MaskLawChecker grant window, recomputed from the same
        # pre-allocation state the checker snapshots.
        floor = fair_share_floor(topo.total_cus, counters.total_assigned())
        effective = requested
        if self.overlap_limit == 0:
            free = topo.total_cus - counters.busy_cus()
            effective = min(requested, max(floor, free))
        floor_capped = min(floor, effective)

        mask: Optional[CUMask] = None
        for cls in self._classes_desc:
            if floor_capped <= cls <= effective:
                mask = self._pick(cls, effective, counters, descriptor,
                                  device)
                break
        if mask is None:
            # No size class fits the lawful window, or every entry of
            # the chosen class would break the overlap law with the
            # repack budget spent: run plain Algorithm 1.
            self.fallbacks += 1
            mask = self.generator.generate(requested, counters)
        if memo_key is not None and len(self._select_cache) \
                < self._SELECT_CACHE_MAX:
            self._select_cache[memo_key] = mask
        return mask

    def _pick(self, cls: int, effective: int, counters: CUKernelCounters,
              descriptor: Optional[KernelDescriptor],
              device: Any) -> Optional[CUMask]:
        """Least-loaded lawful entry of class ``cls``, repacking if needed.

        L4 only binds when the grant equals the effective request, so a
        shrunk class (``cls < effective``) accepts any entry; a
        full-size class must stay within the overlap limit.
        """
        counts = counters.counts_view()
        entries = self._pools[cls]
        limit = self.overlap_limit
        overlap_binds = cls == effective
        penalty = 0.0
        if self.contention and device is not None and descriptor is not None:
            slowdown = interference_slowdown(
                descriptor.mem_intensity,
                device.bandwidth_demand,
                device.exec_config.mem_bandwidth_budget,
            )
            penalty = (slowdown - 1.0) * self.contention_weight
        best: Optional[CUMask] = None
        best_score = 0.0
        for mask in entries:
            load = 0
            occupied = 0
            for cu in mask.cu_tuple:
                n = counts[cu]
                if n:
                    load += n
                    occupied += 1
            if overlap_binds and occupied > limit:
                continue
            score = float(load) + penalty * occupied
            if best is None or score < best_score:
                best = mask
                best_score = score
                if score == 0.0:
                    break
        if best is not None:
            self.pool_hits += 1
            return best
        if not overlap_binds or self._repack_tokens < 1.0:
            return None
        # Repack: regenerate one entry through Algorithm 1 against the
        # live counters.  The generator's own floor/cap logic makes the
        # fresh mask lawful for this request (same pre-state, same
        # window), and the entry joins the pool for future launches.
        self._repack_tokens -= 1.0
        fresh = self.generator.generate(cls, counters)
        if fresh.count() == cls:
            # Only exactly class-sized masks may join the pool: a
            # shrunk regrant is lawful for *this* request (L4's shrink
            # escape) but could sit below a later request's fair-share
            # floor.
            slot = self._repack_cursor[cls] % len(entries)
            self._repack_cursor[cls] = slot + 1
            entries[slot] = fresh
            self._select_cache.clear()
        self.repacks += 1
        if device is not None:
            device.charge_pool_switch(self.switch_cost_s)
        return fresh

    # -- command-processor surface -------------------------------------------
    def allocate(self, launch: KernelLaunch, device: Any) -> CUMask:
        """KernelScopedAllocator hook: pool entry for this launch.

        Mirrors :class:`~repro.core.krisp.KrispAllocator` exactly on the
        degradation path: a failure inside selection serves the full
        device and traces a ``mask-fallback`` instant.
        """
        profiler = self._simprofile._ACTIVE
        if profiler is not None:
            from time import perf_counter
            t0 = perf_counter()
        requested = launch.requested_cus
        if requested is None:
            requested = device.topology.total_cus
        try:
            mask = self._generate(requested, device.counters,
                                  launch.descriptor, device)
        except Exception:
            self.degraded += 1
            mask = CUMask.all_cus(device.topology)
            tracer = device.sim.tracer
            if tracer.enabled:
                tracer.fault_injected("mask-fallback", {
                    "kernel": launch.descriptor.name,
                    "requested_cus": requested,
                })
        self.allocations += 1
        if mask.count() < min(requested, device.topology.total_cus):
            self.short_allocations += 1
        if profiler is not None:
            profiler.add("allocator", perf_counter() - t0)
        return mask


class PredictiveRightSizer:
    """Online ``minCU`` adaptation over a static oracle.

    Wraps a :class:`KernelRightSizer` and shrinks its answer when the
    device is over its bandwidth budget and the kernel is memory-bound:
    extra CUs buy nothing for a bandwidth-throttled kernel, so ceding
    them to compute-bound co-residents is free.  The shrink mirrors the
    throttle share (a kernel at 80 % memory intensity under 2x
    oversubscription keeps ~60 % of its CUs), floored at ``min_cus``
    and never exceeding the oracle.  During straggler windows (fault
    latency scale above one) the grant is left alone — a slowed kernel
    needs every CU it was profiled for.
    """

    def __init__(
        self,
        oracle: KernelRightSizer,
        device: Any,
        min_cus: int = 4,
        intensity_threshold: float = 0.5,
    ) -> None:
        if min_cus < 1:
            raise ValueError("min_cus must be >= 1")
        if not 0.0 <= intensity_threshold <= 1.0:
            raise ValueError("intensity_threshold must be in [0, 1]")
        self.oracle = oracle
        self.device = device
        self.min_cus = min_cus
        self.intensity_threshold = intensity_threshold
        #: Decisions where the prediction shrank the oracle answer.
        self.adjusted = 0
        self.observations = 0

    # Degradation accounting and the fault injector's perf-DB discovery
    # both duck-type these off whatever a stream exposes as its sizer.
    @property
    def database(self):
        return self.oracle.database

    @property
    def topology(self):
        return self.oracle.topology

    @property
    def fallback_cus(self):
        return self.oracle.fallback_cus

    @property
    def unprofiled(self):
        return self.oracle.unprofiled

    @property
    def degraded(self) -> int:
        return self.oracle.degraded

    def __call__(self, desc: KernelDescriptor) -> Optional[int]:
        base = self.oracle(desc)
        if base is None:
            return base
        self.observations += 1
        device = self.device
        if device.fault_latency_scale > 1.0:
            return base  # straggler window: do not shrink a slowed kernel
        if desc.mem_intensity < self.intensity_threshold:
            return base
        budget = device.exec_config.mem_bandwidth_budget
        demand = device.bandwidth_demand
        if budget <= 0.0 or demand <= budget:
            return base
        share = budget / demand
        scaled = int(base * ((1.0 - desc.mem_intensity)
                             + desc.mem_intensity * share))
        adjusted = max(self.min_cus, min(base, scaled))
        if adjusted != base:
            self.adjusted += 1
        return adjusted
