"""Command-line interface: ``krisp-repro``.

Subcommands wrap the library's main entry points so the reproduction can
be explored without writing code:

* ``profile MODEL`` — Fig. 3/Fig. 4 views of one model: the CU-restriction
  sensitivity curve and the per-kernel minimum-CU trace.
* ``colocate MODEL [MODEL...]`` — one co-location cell: throughput,
  p95 vs SLO, and energy per inference under a chosen policy.
* ``table3`` — regenerate the Table III workload characterisation.
* ``rate MODEL --rps N`` — open-loop serving at a fixed request rate.
* ``load SPEC.yaml`` — a latency-vs-offered-rate curve over a workload
  spec (Poisson/bursty/diurnal/trace arrivals, LLM phases), cached and
  parallelisable point-by-point.
* ``sweep [MODEL...]`` — a whole co-location grid (models x policies x
  worker counts) fanned out over a process pool with result caching.
* ``trace MODEL [MODEL...]`` — run one cell with full tracing and write
  a Perfetto-loadable Chrome trace plus a metrics summary.
* ``chaos MODEL [MODEL...]`` — a policy × fault-scenario resilience grid
  with SLO guard rails, reporting goodput and p95 deltas vs fault-free.
* ``report MODEL [MODEL...]`` — run one cell under the flight recorder
  and emit a latency-attribution + SLO burn-rate report (deterministic
  JSON and human-readable markdown), with an exact conservation audit.
* ``fleet SPEC.yaml`` — a simulated multi-GPU fleet: devices × router
  policy × offered-rate grid with per-model pool autoscaling, optional
  node-crash injection, and per-device utilization/goodput accounting.
* ``alloc MODEL [MODEL...]`` — compare mask-allocation policies (per-
  kernel Algorithm 1 vs the pooled/contention-aware allocators): a
  mask-law churn audit with wall times and pool statistics, a serving
  cell per policy, and an optional mixed-chaos cell.

The recurring flags — ``--jobs``, ``--no-cache``, ``--json-out``,
``--duration`` — are defined once on shared parent parsers, so they
spell and mean the same thing on every subcommand that takes them.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.series import ascii_curve
from repro.analysis.tables import format_table
from repro.models.zoo import ALL_MODEL_NAMES, MODEL_NAMES, TABLE_III, get_model
from repro.profiling.model_profiler import kernel_mincu_trace, profile_model
from repro.server.experiment import (
    ExperimentConfig,
    isolated_baseline,
    normalized_rps,
    run_experiment,
    slo_target,
)
from repro.server.options import RunOptions
from repro.server.policies import POLICY_NAMES
from repro.server.rate_experiment import run_rate_experiment

__all__ = ["main"]


def _positive_int(value: str) -> int:
    count = int(value)
    if count < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return count


def _shared_parents() -> dict[str, argparse.ArgumentParser]:
    """Parent parsers for the flags every grid/report subcommand shares.

    Defining ``--jobs``/``--no-cache``/``--json-out``/``--duration``
    once keeps their spelling, type, default, and help text identical
    across subcommands (a parity test pins this).
    """
    jobs = argparse.ArgumentParser(add_help=False)
    jobs.add_argument("--jobs", "-j", type=_positive_int, default=None,
                      help="process-pool size (default: REPRO_JOBS or "
                           "cpu_count - 1; 1 = serial)")
    cache = argparse.ArgumentParser(add_help=False)
    cache.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache entirely")
    json_out = argparse.ArgumentParser(add_help=False)
    json_out.add_argument("--json-out", default=None,
                          help="write the deterministic JSON document here")
    duration = argparse.ArgumentParser(add_help=False)
    duration.add_argument("--duration", type=float, default=None,
                          help="sim seconds per run (default: "
                               "subcommand-specific)")
    return {"jobs": jobs, "cache": cache, "json_out": json_out,
            "duration": duration}


def _cmd_profile(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    sensitivity = profile_model(model, batch_size=args.batch,
                                cu_counts=range(4, 61, 4))
    print(ascii_curve(
        sensitivity.cu_counts,
        [lat * 1e3 for lat in sensitivity.latencies],
        width=40,
        label=f"{model.name} latency (ms) vs active CUs (batch {args.batch})",
    ))
    print(f"\nmodel-wise right-size: {sensitivity.right_size} CUs"
          + (f" (paper: {TABLE_III[model.name][1]})"
             if model.name in TABLE_III else ""))
    mins = kernel_mincu_trace(model, batch_size=args.batch)
    small = sum(1 for m in mins if m <= 15)
    print(f"kernel-wise: {len(mins)} kernels/pass, {small} need <=15 CUs, "
          f"{sum(1 for m in mins if m >= 50)} need >=50 CUs")
    return 0


def _cmd_colocate(args: argparse.Namespace) -> int:
    names = tuple(args.models) * args.workers if len(args.models) == 1 \
        else tuple(args.models)
    result = run_experiment(ExperimentConfig(
        model_names=names, policy=args.policy, batch_size=args.batch))
    rows = []
    for worker in result.workers:
        slo = slo_target(worker.model_name, args.batch) * 1e3
        rows.append([worker.model_name, worker.rps,
                     worker.latency.p95 * 1e3, slo,
                     worker.latency.p95 * 1e3 <= slo])
    print(format_table(
        ["model", "rps", "p95 (ms)", "SLO (ms)", "meets SLO"], rows,
        title=f"{len(names)} workers under {args.policy} "
              f"(batch {args.batch})"))
    print(f"\nnormalized system throughput: {normalized_rps(result):.2f}x")
    print(f"energy per inference: {result.energy_per_request:.2f} J")
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    rows = []
    for name, (paper_k, paper_rs, paper_p95) in TABLE_III.items():
        model = get_model(name)
        sens = profile_model(model, cu_counts=range(2, 61))
        p95 = isolated_baseline(name).max_p95() * 1e3
        rows.append([name, model.kernel_count, paper_k, sens.right_size,
                     paper_rs, p95, paper_p95])
    print(format_table(
        ["model", "#kernels", "(paper)", "right-size", "(paper)",
         "p95 ms", "(paper)"],
        rows, title="Table III (measured vs paper)"))
    return 0


def _cmd_rate(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        model_names=(args.model,) * args.workers, policy=args.policy,
        batch_size=args.batch)
    duration = args.duration if args.duration is not None else 2.0
    result = run_rate_experiment(config, offered_rps=args.rps,
                                 duration=duration)
    print(f"offered {result.offered_rps:.0f} rps -> achieved "
          f"{result.achieved_rps:.0f} rps")
    print(f"p95 latency (incl. queueing): {result.latency.p95 * 1e3:.2f} ms")
    print(f"saturated: {'yes' if result.saturated else 'no'} "
          f"(queue residue {result.queue_residue})")
    return 1 if result.saturated else 0


def _cmd_load(args: argparse.Namespace) -> int:
    from repro.exp.load import run_load_curve
    from repro.exp.sweep import default_jobs
    from repro.server.slo import SloGuard
    from repro.workload import load_workload

    spec = load_workload(args.spec)
    models = tuple(spec.models())
    names = models * args.workers if len(models) == 1 \
        else tuple(m for m in models for _ in range(args.workers))
    config = ExperimentConfig(
        model_names=names, policy=args.policy,
        batch_size=spec.request_batch_size(), seed=args.seed)

    guard = None
    if args.deadline is not None or args.admission is not None:
        guard = SloGuard(
            deadline=(args.deadline * 1e-3 if args.deadline is not None
                      else None),
            admission_depth=args.admission)

    def progress(done: int, total: int, label: str) -> None:
        print(f"\r[{done}/{total}] {label:<32}", end="", file=sys.stderr,
              flush=True)

    jobs = args.jobs if args.jobs is not None else default_jobs()
    report = run_load_curve(
        config, spec,
        rates=tuple(args.rates) if args.rates else None,
        scales=tuple(args.scales),
        duration=args.duration, options=RunOptions(guard=guard), jobs=jobs,
        use_cache=not args.no_cache, progress=progress,
        attribute=args.attribute)
    print(file=sys.stderr)

    print(report.to_text())
    knee = report.knee_rps()
    print(f"\nspec rate {spec.offered_rps():.0f} rps over "
          f"{'+'.join(models)} ({args.workers} worker(s)/model, "
          f"batch {config.batch_size})")
    print("knee (p95 within 3x of lightest point): "
          + (f"{knee:.0f} rps" if knee is not None else "below first point"))
    if report.cache_hits:
        print(f"cache: {report.cache_hits}/{len(report.points)} points "
              "served from the rate store")

    if args.metrics_out:
        from pathlib import Path

        from repro.obs.attribution import export_attribution_metrics
        from repro.obs.flight import FlightRecorder
        from repro.obs.metrics import MetricsRegistry

        probe_rate = args.metrics_rate if args.metrics_rate is not None \
            else report.points[-1].offered_rps
        registry = MetricsRegistry()
        recorder = FlightRecorder()
        run_rate_experiment(
            config, probe_rate, report.duration,
            options=RunOptions(workload=spec.at_rate(probe_rate),
                               guard=guard, metrics=registry,
                               recorder=recorder))
        exported = export_attribution_metrics(recorder.flights(), registry)
        Path(args.metrics_out).write_text(registry.to_prometheus())
        print(f"wrote {len(registry)} metric series "
              f"({exported} attribution series) for the "
              f"{probe_rate:.0f} rps point to {args.metrics_out}")

    if args.json_out:
        import json
        from pathlib import Path

        from repro.exp.cache import fingerprint

        payload = {
            "schema": 1,
            "config": {"model_names": list(config.model_names),
                       "policy": config.policy,
                       "batch_size": config.batch_size,
                       "seed": config.seed},
            "constants": fingerprint(),
            "duration": report.duration,
            "workload": spec.to_dict(),
            "rows": report.to_rows(),
        }
        Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {len(report.points)} points to {args.json_out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.exp.sweep import Sweep, default_jobs, run_sweep

    models = tuple(args.models) if args.models else tuple(MODEL_NAMES)
    sweep = Sweep().add_grid(
        models, tuple(args.policies), tuple(args.workers),
        batch_size=args.batch)
    jobs = args.jobs if args.jobs is not None else default_jobs()

    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    hits = registry.counter("sweep_cache_hits_total")
    misses = registry.counter("sweep_cache_misses_total")
    last_cell = registry.gauge("sweep_last_cell_seconds")

    def progress(done: int, total: int, label: str) -> None:
        print(f"\r[{done}/{total}] {label:<48} "
              f"cache {int(hits.value)}H/{int(misses.value)}M "
              f"last {last_cell.value:.1f}s",
              end="", file=sys.stderr, flush=True)

    report = run_sweep(sweep, jobs=jobs, cache=not args.no_cache,
                       retries=args.retries, progress=progress,
                       options=RunOptions(metrics=registry))
    print(file=sys.stderr)

    rows = []
    json_rows = []
    for config in report.cells:
        label = "+".join(dict.fromkeys(config.model_names)) \
            if len(set(config.model_names)) > 1 else config.model_names[0]
        try:
            result = report.result(config)
        except RuntimeError:
            rows.append([label, config.policy, len(config.model_names),
                         "FAILED", "-", "-"])
            json_rows.append({"models": list(config.model_names),
                              "policy": config.policy, "failed": True})
            continue
        rows.append([label, config.policy, len(config.model_names),
                     f"{result.total_rps:.0f}",
                     f"{result.max_p95() * 1e3:.1f}",
                     f"{result.energy_per_request:.2f}"])
        json_rows.append({
            "models": list(config.model_names),
            "policy": config.policy,
            "workers": len(config.model_names),
            "total_rps": result.total_rps,
            "max_p95_ms": result.max_p95() * 1e3,
            "energy_per_request_j": result.energy_per_request,
            "failed": False,
        })
    print(format_table(
        ["model", "policy", "workers", "rps", "max p95 (ms)", "J/req"],
        rows, title=f"sweep over {len(report.cells)} cells "
                    f"(batch {args.batch})"))
    print(f"\n{report.summary()}")

    if args.json_out:
        import json
        from pathlib import Path

        from repro.exp.cache import fingerprint

        payload = {"schema": 1, "constants": fingerprint(),
                   "batch_size": args.batch, "rows": json_rows}
        Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {len(json_rows)} cells to {args.json_out}")
    if report.failed:
        for failure in report.failed:
            print(f"\nFAILED {'+'.join(failure.config.model_names)}/"
                  f"{failure.config.policy} "
                  f"after {failure.attempts} attempts:\n{failure.traceback}",
                  file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

    names = tuple(args.models) * args.workers if len(args.models) == 1 \
        else tuple(args.models)
    tracer = Tracer()
    registry = MetricsRegistry()
    result = run_experiment(
        ExperimentConfig(
            model_names=names, policy=args.policy, batch_size=args.batch,
            emulated=args.emulated, requests_scale=args.scale,
        ),
        options=RunOptions(tracer=tracer, metrics=registry,
                           sample_interval=args.sample_interval),
    )
    events = tracer.write_chrome_trace(args.out)
    counts = tracer.counts()
    print(f"wrote {events} trace events to {args.out} "
          f"({counts['span']} spans, {counts['instant']} instants, "
          f"{counts['counter']} counter samples, {counts['flow']} flow "
          f"events)")
    print(f"requests: {tracer.requests_traced}  "
          f"kernels: {tracer.kernels_traced}  "
          f"mask decisions: {tracer.mask_decisions}  "
          f"barriers: {tracer.barriers}")
    print(f"peak CU occupancy: {result.peak_cu_occupancy}  "
          f"total rps: {result.total_rps:.0f}")
    if args.metrics_out:
        from pathlib import Path
        Path(args.metrics_out).write_text(registry.to_prometheus())
        print(f"wrote {len(registry)} metric series to {args.metrics_out}")
    print("\nmetrics summary:")
    for line in registry.summary_lines():
        print(f"  {line}")
    print("\nopen the trace at https://ui.perfetto.dev (or "
          "chrome://tracing)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.exp.chaos import CHAOS_SCENARIOS, build_scenario, run_chaos
    from repro.exp.sweep import default_jobs

    names = tuple(args.models) * args.workers if len(args.models) == 1 \
        else tuple(args.models)
    scenarios = tuple(args.scenarios) if args.scenarios \
        else CHAOS_SCENARIOS

    def progress(done: int, total: int, label: str) -> None:
        print(f"\r[{done}/{total}] {label:<40}", end="", file=sys.stderr,
              flush=True)

    jobs = args.jobs if args.jobs is not None else default_jobs()
    report = run_chaos(
        names, tuple(args.policies), scenarios,
        batch_size=args.batch, seed=args.seed,
        requests_scale=args.scale, emulated=args.emulated,
        use_cache=not args.no_cache, jobs=jobs, progress=progress,
        allocation=args.allocation, sizing=args.sizing,
    )
    print(file=sys.stderr)
    print(report.to_text())
    guard = report.guard
    print(f"\nguard: admission depth {guard.admission_depth}, deadline "
          f"{guard.deadline * 1e3:.1f} ms, {guard.max_retries} retries")

    if args.json_out:
        import json
        from pathlib import Path
        Path(args.json_out).write_text(
            json.dumps(report.to_rows(), indent=2, sort_keys=True))
        print(f"wrote {len(report.cells)} cells to {args.json_out}")

    if args.trace_out:
        from repro.obs.tracer import Tracer

        policy = args.policies[0]
        scenario = scenarios[-1]
        config = ExperimentConfig(
            model_names=names, policy=policy, batch_size=args.batch,
            seed=args.seed, emulated=args.emulated,
            requests_scale=args.scale,
            allocation=args.allocation, sizing=args.sizing)
        tracer = Tracer()
        run_experiment(config, options=RunOptions(
            tracer=tracer, faults=build_scenario(scenario, config),
            guard=report.guard))
        events = tracer.write_chrome_trace(args.trace_out)
        print(f"wrote {events} trace events for {policy}/{scenario} to "
              f"{args.trace_out} ({tracer.faults_traced} faults, "
              f"{tracer.requests_shed} shed)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import json
    from fractions import Fraction
    from pathlib import Path

    from repro.exp.cache import fingerprint
    from repro.obs.attribution import (
        decompose,
        render_markdown_report,
        summarize,
    )
    from repro.obs.flight import FlightRecorder
    from repro.obs.slo_report import build_slo_report
    from repro.server.experiment import measurement_window
    from repro.server.slo import SloGuard

    names = tuple(args.models) * args.workers if len(args.models) == 1 \
        else tuple(args.models)
    config = ExperimentConfig(
        model_names=names, policy=args.policy, batch_size=args.batch,
        seed=args.seed, requests_scale=args.scale)

    guard = None
    if (args.deadline is not None or args.admission is not None
            or args.retries is not None):
        kwargs = {}
        if args.deadline is not None:
            kwargs["deadline"] = args.deadline * 1e-3
        if args.admission is not None:
            kwargs["admission_depth"] = args.admission
        if args.retries is not None:
            kwargs["max_retries"] = args.retries
        guard = SloGuard(**kwargs)

    faults = None
    if args.faults:
        from repro.exp.chaos import build_scenario
        faults = build_scenario(args.faults, config)

    recorder = FlightRecorder()
    result = run_experiment(config, options=RunOptions(
        recorder=recorder, faults=faults, guard=guard))

    warmup, end = measurement_window(config)
    flights = recorder.flights()
    attribution = summarize(flights, window=(warmup, end))
    slo = build_slo_report(flights, objective=args.objective,
                           span=(warmup, end), window_count=8)

    # Conservation audit: every completed flight must decompose into
    # components that sum *exactly* (Fraction arithmetic, no tolerance)
    # to its end-to-end latency.
    audited = 0
    exact = True
    for flight in flights:
        if not flight.completed:
            continue
        try:
            parts = decompose(flight)
        except ValueError:
            exact = False
            continue
        audited += 1
        total = sum(parts.values(), Fraction(0))
        if total != (Fraction(flight.completion_time)
                     - Fraction(flight.arrival_time)):
            exact = False

    payload = {
        "schema": 1,
        "config": {"model_names": list(names),
                   "policy": config.policy,
                   "batch_size": config.batch_size,
                   "seed": config.seed,
                   "requests_scale": config.requests_scale},
        "constants": fingerprint(),
        "faults": args.faults,
        "result": {
            "total_rps": result.total_rps,
            "goodput_rps": result.goodput_rps,
            "max_p95_ms": result.max_p95() * 1e3,
            "energy_per_request_j": result.energy_per_request,
            "window_s": result.window,
        },
        "attribution": attribution,
        "slo": slo,
        "conservation": {"requests": audited, "exact": exact},
    }

    markdown = render_markdown_report(payload)
    print(markdown)

    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote report JSON to {args.json_out}")
    if args.md_out:
        Path(args.md_out).write_text(markdown + "\n")
        print(f"wrote report markdown to {args.md_out}")

    if not exact:
        print("CONSERVATION VIOLATED: attribution components do not sum "
              "to end-to-end latency", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.bench import (
        SCENARIOS, BenchError, baseline_deltas, check_report,
        default_baseline_path, profile_scenario, run_bench, write_report)

    if args.list:
        for name in sorted(SCENARIOS):
            print(f"{name:<10} {SCENARIOS[name].description}")
        return 0

    names = args.scenarios or sorted(SCENARIOS)

    if args.profile:
        # Profiled throughput is not comparable with plain rows (clock
        # reads per event), so --profile prints the per-phase shape
        # instead of timing rows.
        try:
            for name in names:
                breakdown = profile_scenario(name, queue=args.queue)
                print(f"-- {name} --")
                print(breakdown["formatted"])
        except BenchError as exc:
            print(f"bench failed: {exc}", file=sys.stderr)
            return 1
        return 0

    try:
        report = run_bench(names, compare=args.compare, repeats=args.repeat,
                           queue=args.queue)
    except BenchError as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return 1

    for row in report["rows"]:
        print(f"{row['scenario']:<10} {row['mode']:<12} "
              f"wall {row['wall_s']:>8.3f}s  "
              f"{row['events_per_s']:>12,.0f} events/s  "
              f"{row['batches_per_s']:>12,.0f} batches/s  "
              f"hash {row['result_hash'][:16]}")
    for name, speedup in report.get("speedups", {}).items():
        recommended = report.get("recommended_modes", {}).get(name, "")
        print(f"{name:<10} incremental speedup {speedup:.2f}x "
              f"(hashes identical; recommended: {recommended})")

    if args.compare:
        baseline_path = default_baseline_path()
        if baseline_path is not None:
            try:
                baseline = json.loads(baseline_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                print(f"baseline {baseline_path.name} unreadable "
                      f"({exc}); skipping deltas", file=sys.stderr)
            else:
                deltas = baseline_deltas(report, baseline)
                for key, ratio in deltas.items():
                    print(f"{key:<24} {ratio:>6.2f}x events/s "
                          f"vs {baseline_path.name}")
                if not deltas:
                    print(f"no comparable rows in {baseline_path.name}")
        else:
            print("no committed BENCH_*.json baseline found for deltas")

    if args.json_out:
        path = write_report(report, args.json_out)
        print(f"wrote {len(report['rows'])} rows to {path}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        failures = check_report(
            report, baseline, max_regression=args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"regression gate passed vs {args.check} "
              f"(threshold +{args.max_regression:.0%})")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.check import available_checks, run_checks, run_mutate_smoke

    if args.list:
        from repro.check.mutate import MUTATIONS

        for name in available_checks(include_all=True):
            print(name)
        for mutation in MUTATIONS:
            print(f"mutate:{mutation.name}")
        return 0

    def progress(name: str) -> None:
        print(f".. {name}", file=sys.stderr)

    if args.mutate_smoke:
        report, all_caught = run_mutate_smoke(progress=progress)
        for line in report.summary_lines():
            print(line)
        if args.json_out:
            payload = report.to_dict()
            payload["self_test_ok"] = all_caught
            Path(args.json_out).write_text(json.dumps(payload, indent=2))
            print(f"wrote mutate-smoke report to {args.json_out}")
        if all_caught:
            print("mutate-smoke: every seeded fault was caught "
                  "(exit 1 — violations are expected here)")
            return 1
        print("mutate-smoke: AUDIT LAYER FAILED — a seeded fault "
              "produced no violations", file=sys.stderr)
        return 2

    try:
        report = run_checks(scenarios=args.scenario,
                            include_all=args.all, progress=progress,
                            allocation=args.allocation, sizing=args.sizing)
    except ValueError as exc:
        print(f"check failed: {exc}", file=sys.stderr)
        return 2
    for line in report.summary_lines():
        print(line)
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(report.to_dict(), indent=2))
        print(f"wrote check report to {args.json_out}")
    return 0 if report.ok else 1


#: Allocation/sizing policy rosters, duplicated as literals so parser
#: construction stays import-light; a parity test pins them against
#: :mod:`repro.core.pools`.
_ALLOCATION_CHOICES = ("krisp", "pooled", "pooled-contention")
_SIZING_CHOICES = ("static", "predictive")


def _cmd_alloc(args: argparse.Namespace) -> int:
    import json
    import time
    from pathlib import Path

    from repro.check.invariants import run_mask_program, run_pool_program
    from repro.exp.cache import fingerprint, result_hash

    models = tuple(args.models) if args.models else ("squeezenet",)
    unknown = sorted(set(models) - set(ALL_MODEL_NAMES))
    if unknown:
        print(f"unknown model(s) {unknown}; choose from "
              f"{sorted(ALL_MODEL_NAMES)}", file=sys.stderr)
        return 2
    names = models * args.workers if len(models) == 1 else models
    allocations = tuple(dict.fromkeys(args.allocations))
    total_violations = 0

    # Phase 1: the mask-law churn audit.  Every allocation policy serves
    # the identical seeded request stream under the L1-L4 checker; the
    # wall column is the allocator-overhead comparison (stdout only —
    # the JSON document stays deterministic).
    law_rows = []
    print(f"-- mask-law churn ({args.iterations} masks/policy, "
          f"seed {args.seed}) --")
    for allocation in allocations:
        stats: dict = {}
        start = time.perf_counter()
        if allocation == "krisp":
            violations = run_mask_program(
                seed=args.seed, iterations=args.iterations)
        else:
            violations = run_pool_program(
                seed=args.seed, iterations=args.iterations,
                contention=allocation == "pooled-contention",
                stats_out=stats)
        wall = time.perf_counter() - start
        total_violations += len(violations)
        pool_note = ""
        if stats:
            pool_note = (f"  hits {stats.get('pool_hits', 0)} "
                         f"repacks {stats.get('repacks', 0)} "
                         f"fallbacks {stats.get('fallbacks', 0)}")
        print(f"{allocation:<18} wall {wall:>7.3f}s  "
              f"violations {len(violations)}{pool_note}")
        for violation in violations[:5]:
            print(f"  VIOLATION: {violation}", file=sys.stderr)
        row = {"allocation": allocation, "masks": args.iterations,
               "violations": len(violations)}
        if stats:
            row["pool"] = stats
        law_rows.append(row)

    # Phase 2: one serving cell per allocation policy (same workload,
    # same sizing), hashed so grids are comparable bit-for-bit.
    cell_rows = []
    print(f"\n-- serving cells ({'+'.join(dict.fromkeys(names))}, "
          f"{len(names)} workers, {args.policy}, sizing {args.sizing}) --")
    for allocation in allocations:
        config = ExperimentConfig(
            model_names=names, policy=args.policy, batch_size=args.batch,
            seed=args.seed, requests_scale=args.scale,
            allocation=allocation, sizing=args.sizing)
        result = run_experiment(config)
        cell_hash = result_hash(result)
        print(f"{allocation:<18} rps {result.total_rps:>9.2f}  "
              f"p95 {result.max_p95() * 1e3:>7.2f}ms  "
              f"hash {cell_hash[:16]}")
        cell_rows.append({
            "allocation": allocation,
            "sizing": args.sizing,
            "result_hash": cell_hash,
            "total_rps": result.total_rps,
            "max_p95_ms": result.max_p95() * 1e3,
        })

    # Phase 3 (optional): the mixed-fault chaos cell per policy, with
    # the standard guard rails — resilience under the new allocators.
    chaos_rows = []
    if args.chaos:
        from repro.exp.chaos import build_scenario, default_guard

        print("\n-- mixed-chaos cells (guarded) --")
        for allocation in allocations:
            config = ExperimentConfig(
                model_names=names, policy=args.policy,
                batch_size=args.batch, seed=args.seed,
                requests_scale=args.scale,
                allocation=allocation, sizing=args.sizing)
            result = run_experiment(config, RunOptions(
                faults=build_scenario("mixed", config),
                guard=default_guard(config)))
            cell_hash = result_hash(result)
            res = result.resilience
            print(f"{allocation:<18} goodput {result.goodput_rps:>9.2f}  "
                  f"shed {res.shed if res else 0:>4} "
                  f"degraded {res.degraded if res else 0:>4}  "
                  f"hash {cell_hash[:16]}")
            chaos_rows.append({
                "allocation": allocation,
                "sizing": args.sizing,
                "result_hash": cell_hash,
                "goodput_rps": result.goodput_rps,
                "shed": res.shed if res else 0,
                "degraded": res.degraded if res else 0,
            })

    if args.json_out:
        payload = {
            "schema": 1,
            "config": {"model_names": list(names),
                       "policy": args.policy,
                       "batch_size": args.batch,
                       "seed": args.seed,
                       "requests_scale": args.scale,
                       "sizing": args.sizing},
            "constants": fingerprint(),
            "law_audit": law_rows,
            "cells": cell_rows,
            "chaos": chaos_rows,
        }
        Path(args.json_out).write_text(
            json.dumps(payload, indent=2, sort_keys=True))
        print(f"\nwrote {len(allocations)}-policy comparison to "
              f"{args.json_out}")

    if total_violations:
        print(f"\nLAW VIOLATIONS: {total_violations} across the churn "
              "audit", file=sys.stderr)
        return 1
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.cluster import AutoscalerConfig, ClusterConfig, run_fleet
    from repro.exp.sweep import default_jobs
    from repro.workload import load_workload

    spec = load_workload(args.spec)
    models = tuple(spec.models())
    base = ClusterConfig(
        devices=args.devices[0], model_names=models, policy=args.policy,
        batch_size=spec.request_batch_size(), seed=args.seed,
        router=args.router, pool_size=args.pool, pool_min=args.pool_min)

    guard = None
    if args.deadline is not None or args.admission is not None:
        from repro.server.slo import SloGuard
        guard = SloGuard(
            deadline=(args.deadline * 1e-3 if args.deadline is not None
                      else None),
            admission_depth=args.admission)

    faults = None
    if args.crash_node is not None:
        from repro.faults.schedule import FaultSchedule, NodeCrash
        faults = FaultSchedule(
            (NodeCrash(time=args.crash_time, node=args.crash_node),))

    native = spec.offered_rps()
    scales = tuple(args.scales)
    if args.rates:
        scales = tuple(rate / native for rate in args.rates)

    def progress(done: int, total: int) -> None:
        print(f"\r[{done}/{total}] fleet cells", end="", file=sys.stderr,
              flush=True)

    jobs = args.jobs if args.jobs is not None else default_jobs()
    report = run_fleet(
        base, spec,
        devices=tuple(args.devices),
        routers=tuple(args.routers) if args.routers else None,
        scales=scales,
        duration=args.duration,
        autoscaler=None if args.no_autoscaler else AutoscalerConfig(),
        faults=faults, guard=guard,
        jobs=jobs, use_cache=not args.no_cache, progress=progress)
    print(file=sys.stderr)

    print(report.to_text())
    print(f"\nspec rate {native:.0f} rps over {'+'.join(models)} "
          f"(pool {base.pool_min}..{base.pool_size} per model per device)")
    if report.cache_hits:
        print(f"cache: {report.cache_hits}/{len(report.cells)} cells "
              "served from the cluster store")
    if args.json_out:
        Path(args.json_out).write_text(report.to_json())
        print(f"wrote {len(report.cells)} cells to {args.json_out}")
    violated = [c for c in report.cells if not c.result.conservation_ok]
    if violated:
        print(f"CONSERVATION VIOLATED in {len(violated)} cell(s)",
              file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``krisp-repro`` argument parser."""
    from repro.cluster.config import ROUTER_POLICIES

    parser = argparse.ArgumentParser(
        prog="krisp-repro",
        description="KRISP (HPCA 2023) reproduction on a simulated GPU",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    parents = _shared_parents()

    profile = sub.add_parser("profile", help="model sensitivity + kernel trace")
    profile.add_argument("model", choices=ALL_MODEL_NAMES)
    profile.add_argument("--batch", type=int, default=32)
    profile.set_defaults(func=_cmd_profile)

    colocate = sub.add_parser("colocate", help="run one co-location cell")
    colocate.add_argument("models", nargs="+", choices=ALL_MODEL_NAMES)
    colocate.add_argument("--workers", "-n", type=int, default=2,
                          help="replicas when a single model is given")
    colocate.add_argument("--policy", "-p", choices=POLICY_NAMES,
                          default="krisp-i")
    colocate.add_argument("--batch", type=int, default=32)
    colocate.set_defaults(func=_cmd_colocate)

    table3 = sub.add_parser("table3", help="regenerate Table III")
    table3.set_defaults(func=_cmd_table3)

    rate = sub.add_parser("rate", parents=[parents["duration"]],
                          help="open-loop serving at a fixed rate")
    rate.add_argument("model", choices=ALL_MODEL_NAMES)
    rate.add_argument("--rps", type=float, required=True)
    rate.add_argument("--workers", "-n", type=int, default=2)
    rate.add_argument("--policy", "-p", choices=POLICY_NAMES,
                      default="krisp-i")
    rate.add_argument("--batch", type=int, default=32)
    rate.set_defaults(func=_cmd_rate)

    load = sub.add_parser(
        "load",
        parents=[parents["jobs"], parents["cache"], parents["json_out"],
                 parents["duration"]],
        help="latency-vs-rate curve over a YAML workload spec")
    load.add_argument("spec", help="workload spec path (.yaml or .json)")
    load.add_argument("--workers", "-n", type=int, default=2,
                      help="workers per distinct model in the spec")
    load.add_argument("--policy", "-p", choices=POLICY_NAMES,
                      default="krisp-i")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--scales", nargs="+", type=float,
                      default=[0.25, 0.5, 0.75, 1.0, 1.25, 1.5],
                      help="offered-rate multiples of the spec's native "
                           "rate")
    load.add_argument("--rates", nargs="+", type=float, default=None,
                      help="absolute offered rates in rps (overrides "
                           "--scales)")
    load.add_argument("--deadline", type=float, default=None,
                      help="SLO deadline in ms (enables shedding + "
                           "goodput accounting)")
    load.add_argument("--admission", type=int, default=None,
                      help="bound each queue to this depth")
    load.add_argument("--attribute", action="store_true",
                      help="attach a latency-attribution summary to every "
                           "point (runs points live, serially)")
    load.add_argument("--metrics-out", default=None,
                      help="re-run one rate point under the sampler + "
                           "flight recorder and write Prometheus text "
                           "metrics here")
    load.add_argument("--metrics-rate", type=float, default=None,
                      help="offered rate for --metrics-out (default: the "
                           "heaviest point)")
    load.set_defaults(func=_cmd_load)

    sweep = sub.add_parser(
        "sweep",
        parents=[parents["jobs"], parents["cache"], parents["json_out"]],
        help="run a co-location grid in parallel with caching")
    sweep.add_argument("models", nargs="*", choices=ALL_MODEL_NAMES,
                       help="models to sweep (default: the Table III zoo)")
    sweep.add_argument("--policies", "-p", nargs="+", choices=POLICY_NAMES,
                       default=list(POLICY_NAMES))
    sweep.add_argument("--workers", "-n", nargs="+", type=int,
                       default=[1, 2, 4],
                       help="worker counts (each model co-located with "
                            "itself)")
    sweep.add_argument("--batch", type=int, default=32)
    sweep.add_argument("--retries", type=int, default=1,
                       help="extra attempts per failing cell")
    sweep.set_defaults(func=_cmd_sweep)

    trace = sub.add_parser(
        "trace", help="trace one co-location cell into a Perfetto JSON")
    trace.add_argument("models", nargs="+", choices=ALL_MODEL_NAMES)
    trace.add_argument("--workers", "-n", type=int, default=2,
                       help="replicas when a single model is given")
    trace.add_argument("--policy", "-p", choices=POLICY_NAMES,
                       default="krisp-i")
    trace.add_argument("--batch", type=int, default=32)
    trace.add_argument("--emulated", action="store_true",
                       help="route launches through the barrier-packet "
                            "emulation path")
    trace.add_argument("--scale", type=float, default=1.0,
                       help="measurement-window scale (requests_scale)")
    trace.add_argument("--out", "-o", default="trace.json",
                       help="Chrome trace output path")
    trace.add_argument("--metrics-out", default=None,
                       help="also write Prometheus text metrics here")
    trace.add_argument("--sample-interval", type=float, default=250e-6,
                       help="sim-time metrics sampling period in seconds")
    trace.set_defaults(func=_cmd_trace)

    chaos = sub.add_parser(
        "chaos",
        parents=[parents["jobs"], parents["cache"], parents["json_out"]],
        help="policy x fault-scenario resilience grid")
    chaos.add_argument("models", nargs="+", choices=ALL_MODEL_NAMES)
    chaos.add_argument("--workers", "-n", type=int, default=2,
                       help="replicas when a single model is given")
    chaos.add_argument("--policies", "-p", nargs="+", choices=POLICY_NAMES,
                       default=["krisp-i", "mps-default"])
    chaos.add_argument("--scenarios", "-s", nargs="+",
                       choices=["crash", "straggler", "bandwidth", "storm",
                                "dropout", "mixed"],
                       default=None,
                       help="fault scenarios (default: all)")
    chaos.add_argument("--batch", type=int, default=32)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--scale", type=float, default=1.0,
                       help="measurement-window scale (requests_scale)")
    chaos.add_argument("--emulated", action="store_true",
                       help="route launches through the barrier-packet "
                            "emulation path")
    chaos.add_argument("--trace-out", default=None,
                       help="re-run one fault-injected cell under the "
                            "tracer and write a Chrome trace here")
    chaos.add_argument("--allocation", choices=_ALLOCATION_CHOICES,
                       default="krisp",
                       help="mask-allocation policy for the KRISP cells")
    chaos.add_argument("--sizing", choices=_SIZING_CHOICES,
                       default="static",
                       help="kernel right-sizing policy for the KRISP "
                            "cells")
    chaos.set_defaults(func=_cmd_chaos)

    report = sub.add_parser(
        "report", parents=[parents["json_out"]],
        help="latency-attribution + SLO burn-rate report for one cell")
    report.add_argument("models", nargs="+", choices=ALL_MODEL_NAMES)
    report.add_argument("--workers", "-n", type=int, default=2,
                        help="replicas when a single model is given")
    report.add_argument("--policy", "-p", choices=POLICY_NAMES,
                        default="krisp-i")
    report.add_argument("--batch", type=int, default=32)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--scale", type=float, default=1.0,
                        help="measurement-window scale (requests_scale)")
    report.add_argument("--faults", choices=["crash", "straggler",
                                             "bandwidth", "storm",
                                             "dropout", "mixed"],
                        default=None,
                        help="inject a chaos fault scenario during the run")
    report.add_argument("--deadline", type=float, default=None,
                        help="SLO guard deadline in ms (enables shedding)")
    report.add_argument("--admission", type=int, default=None,
                        help="bound each queue to this depth")
    report.add_argument("--retries", type=int, default=None,
                        help="crash-retry budget per request")
    report.add_argument("--objective", type=float, default=0.95,
                        help="SLO attainment objective for burn-rate "
                             "accounting (default 0.95)")
    report.add_argument("--md-out", default=None,
                        help="write the markdown report here")
    report.set_defaults(func=_cmd_report)

    bench = sub.add_parser(
        "bench", parents=[parents["json_out"]],
        help="time the pinned simulator benchmark scenarios")
    bench.add_argument("scenarios", nargs="*",
                       help="scenario names (default: all; see --list)")
    bench.add_argument("--list", action="store_true",
                       help="list available scenarios and exit")
    bench.add_argument("--repeat", "-r", type=int, default=1,
                       help="repeats per row (best wall time wins)")
    bench.add_argument("--compare", action="store_true",
                       help="also run the forced full-recompute oracle, "
                            "assert bit-identical hashes, report speedups "
                            "and deltas vs the newest committed "
                            "BENCH_*.json")
    bench.add_argument("--queue", choices=("auto", "heap", "calendar"),
                       default="auto",
                       help="event queue implementation (default auto)")
    bench.add_argument("--profile", action="store_true",
                       help="print a per-phase wall-time breakdown per "
                            "scenario instead of timing rows")
    bench.add_argument("--check", default=None,
                       help="baseline report JSON to gate wall-time "
                            "regressions against")
    bench.add_argument("--max-regression", type=float, default=0.30,
                       help="allowed fractional wall-time regression for "
                            "--check (default 0.30)")
    bench.set_defaults(func=_cmd_bench)

    check = sub.add_parser(
        "check", parents=[parents["json_out"]],
        help="audit the simulator's conservation laws")
    check.add_argument("--scenario", "-s", nargs="+", default=None,
                       help="restrict differential replays to these pinned "
                            "scenarios (default: colo4 chaos)")
    check.add_argument("--all", action="store_true",
                       help="replay every pinned scenario, including the "
                            "slow dense cell")
    check.add_argument("--mutate-smoke", action="store_true",
                       help="self-test: seed deliberate faults and assert "
                            "the checkers catch them (exits 1 when all are "
                            "caught, 2 when one escapes)")
    check.add_argument("--list", action="store_true",
                       help="list every check and mutation, then exit")
    check.add_argument("--allocation", choices=_ALLOCATION_CHOICES,
                       default="krisp",
                       help="audit the scenario replays under this mask-"
                            "allocation policy (non-default swaps in the "
                            "alloc-* differential checks)")
    check.add_argument("--sizing", choices=_SIZING_CHOICES,
                       default="static",
                       help="kernel right-sizing policy for the scenario "
                            "replays")
    check.set_defaults(func=_cmd_check)

    alloc = sub.add_parser(
        "alloc", parents=[parents["json_out"]],
        help="compare mask-allocation policies: law churn audit + "
             "serving cells")
    # No ``choices=`` here: argparse rejects an empty nargs="*" match
    # against a choices list, which would break the bare default.
    alloc.add_argument("models", nargs="*", metavar="MODEL",
                       help="models for the serving cells (default: "
                            "squeezenet)")
    alloc.add_argument("--workers", "-n", type=int, default=4,
                       help="replicas when a single model is given")
    alloc.add_argument("--policy", "-p", choices=POLICY_NAMES,
                       default="krisp-i")
    alloc.add_argument("--allocations", "-a", nargs="+",
                       choices=_ALLOCATION_CHOICES,
                       default=list(_ALLOCATION_CHOICES),
                       help="allocation policies to compare (default: all)")
    alloc.add_argument("--sizing", choices=_SIZING_CHOICES,
                       default="static",
                       help="kernel right-sizing policy for the cells")
    alloc.add_argument("--batch", type=int, default=8)
    alloc.add_argument("--seed", type=int, default=0)
    alloc.add_argument("--scale", type=float, default=0.25,
                       help="measurement-window scale (requests_scale)")
    alloc.add_argument("--iterations", type=int, default=3000,
                       help="masks per policy in the law churn audit")
    alloc.add_argument("--chaos", action="store_true",
                       help="also run the guarded mixed-fault cell per "
                            "policy")
    alloc.set_defaults(func=_cmd_alloc)

    fleet = sub.add_parser(
        "fleet",
        parents=[parents["jobs"], parents["cache"], parents["json_out"],
                 parents["duration"]],
        help="devices x router-policy x rate grid over a simulated fleet")
    fleet.add_argument("spec", help="workload spec path (.yaml or .json)")
    fleet.add_argument("--devices", "-d", nargs="+", type=_positive_int,
                       default=[1, 2, 4],
                       help="fleet sizes (device counts) to sweep")
    fleet.add_argument("--routers", nargs="+", choices=ROUTER_POLICIES,
                       default=None,
                       help="router placement policies to compare "
                            "(default: just --router)")
    fleet.add_argument("--router", choices=ROUTER_POLICIES,
                       default="least-loaded",
                       help="request placement policy")
    fleet.add_argument("--policy", "-p", choices=POLICY_NAMES,
                       default="krisp-i",
                       help="per-device partition policy")
    fleet.add_argument("--pool", type=_positive_int, default=2,
                       help="worker slots per model per device")
    fleet.add_argument("--pool-min", type=_positive_int, default=1,
                       help="always-active slots per model per device")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--scales", nargs="+", type=float,
                       default=[0.5, 1.0, 1.5],
                       help="offered-rate multiples of the spec's native "
                            "rate")
    fleet.add_argument("--rates", nargs="+", type=float, default=None,
                       help="absolute offered rates in rps (overrides "
                            "--scales)")
    fleet.add_argument("--deadline", type=float, default=None,
                       help="SLO deadline in ms (enables shedding + "
                            "goodput accounting)")
    fleet.add_argument("--admission", type=int, default=None,
                       help="bound each queue to this depth")
    fleet.add_argument("--crash-node", type=int, default=None,
                       help="crash this node (whole device) mid-run")
    fleet.add_argument("--crash-time", type=float, default=0.5,
                       help="sim time of --crash-node in seconds")
    fleet.add_argument("--no-autoscaler", action="store_true",
                       help="freeze pools at --pool-min (no autoscaling)")
    fleet.set_defaults(func=_cmd_fleet)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
