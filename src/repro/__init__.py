"""KRISP reproduction: kernel-wise right-sizing for spatially partitioned
GPU inference servers (Chow, Jahanshahi, Wong - HPCA 2023).

The package layers a complete inference-serving stack over a simulated
AMD MI50-class GPU:

* :mod:`repro.sim` - discrete-event engine;
* :mod:`repro.gpu` - the device: topology, CU masks, queues, command
  processor, dispatch timing model, power;
* :mod:`repro.runtime` - ROCm-like streams, CU-masking API, and the
  barrier-packet emulation of kernel-scoped partitions;
* :mod:`repro.core` - KRISP itself: right-sizing, Algorithm 1 resource
  allocation, the performance database;
* :mod:`repro.profiling` - offline kernel/model profilers;
* :mod:`repro.models` - the Table III model zoo;
* :mod:`repro.server` - the inference server, partitioning policies, and
  the co-location experiment harness;
* :mod:`repro.baselines` - process-scoped prior-work baselines;
* :mod:`repro.exp` - parallel sweep orchestration with a
  content-addressed on-disk result cache;
* :mod:`repro.obs` - observability: sim-clock tracer (Perfetto export
  with request-to-kernel flows), metrics registry, sim-time sampler;
* :mod:`repro.analysis` - result formatting and utilization analysis.

Quick start::

    from repro.core.krisp import KrispConfig, KrispSystem
    from repro.gpu.device import GpuDevice
    from repro.models.zoo import get_model
    from repro.profiling.kernel_profiler import build_database
    from repro.sim.engine import Simulator

    model = get_model("resnet152")
    database = build_database(model.trace(32))
    sim = Simulator()
    device = GpuDevice(sim)
    system = KrispSystem(sim, device, database,
                         config=KrispConfig(overlap_limit=0))
    stream = system.create_stream()
    for kernel in model.trace(32):
        stream.launch_kernel(kernel)
    sim.run()
"""

__version__ = "1.2.0"

__all__ = ["__version__"]
