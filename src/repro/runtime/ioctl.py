"""IOCTL syscall cost model.

Setting a queue's CU mask on ROCm goes through an IOCTL into the kernel
driver.  The paper observes that when concurrent models run, the runtime
*serialises* these calls, producing high timing variation — so the model
is a single FIFO server: requests queue behind each other and each takes
``latency`` seconds of exclusive service.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.engine import Simulator

__all__ = ["IoctlModel"]


class IoctlModel:
    """A serialised FIFO IOCTL service shared by every caller."""

    def __init__(self, sim: Simulator, latency: float = 15e-6) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.sim = sim
        self.latency = latency
        self._queue: deque[Callable[[], None]] = deque()
        self._busy = False
        self.calls_completed = 0
        self.total_wait_time = 0.0

    def request(self, on_done: Callable[[], None]) -> None:
        """Issue an IOCTL; ``on_done`` runs when it retires."""
        arrival = self.sim.now

        def serve() -> None:
            self.total_wait_time += self.sim.now - arrival
            self.sim.schedule_in(self.latency, lambda: self._finish(on_done))

        self._queue.append(serve)
        if not self._busy:
            self._next()

    def _next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        serve = self._queue.popleft()
        serve()

    def _finish(self, on_done: Callable[[], None]) -> None:
        self.calls_completed += 1
        on_done()
        self._next()

    @property
    def pending(self) -> int:
        """Requests queued or in service."""
        return len(self._queue) + (1 if self._busy else 0)
