"""HSA-runtime facade: queues, signals, and the CU-masking entry point.

:class:`HsaRuntime` owns the device-side plumbing one ROCm process would
see: it creates software HSA queues registered with the GPU command
processor, creates completion signals, and exposes
:meth:`set_queue_cu_mask` — the ``hsa_amd_queue_cu_set_mask`` equivalent
that goes through the serialised IOCTL path.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.gpu.command_processor import (
    CommandProcessor,
    CommandProcessorConfig,
    KernelScopedAllocator,
)
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.queue import HsaQueue
from repro.gpu.topology import GpuTopology
from repro.runtime.ioctl import IoctlModel
from repro.sim.engine import Simulator
from repro.sim.process import Signal

__all__ = ["HsaRuntime"]


class HsaRuntime:
    """One process's view of the ROCm runtime over a shared device."""

    def __init__(
        self,
        sim: Simulator,
        device: GpuDevice,
        cp_config: Optional[CommandProcessorConfig] = None,
        ioctl: Optional[IoctlModel] = None,
        allocator: Optional[KernelScopedAllocator] = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.command_processor = CommandProcessor(
            sim, device, config=cp_config, allocator=allocator
        )
        self.ioctl = ioctl or IoctlModel(sim)

    @property
    def topology(self) -> GpuTopology:
        """Topology of the underlying device."""
        return self.device.topology

    def create_queue(self, name: str = "") -> HsaQueue:
        """Allocate a software HSA queue and register it with the CP."""
        queue = HsaQueue(self.device.topology, name=name)
        self.command_processor.register_queue(queue)
        return queue

    def create_signal(self, name: str = "") -> Signal:
        """Allocate an HSA completion signal."""
        return Signal(self.sim, name=name)

    def set_queue_cu_mask(
        self,
        queue: HsaQueue,
        mask: CUMask,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Set a queue's stream-scoped CU mask via the IOCTL path.

        The mask takes effect when the (serialised) IOCTL retires;
        ``on_done`` fires at that point.  This is the medium-overhead
        reconfiguration path of Table I's *CU Masking API* row.
        """

        def apply() -> None:
            queue.set_cu_mask(mask)
            if on_done is not None:
                on_done()

        self.ioctl.request(apply)
