"""HIP-style streams.

A :class:`Stream` is the unit an ML framework launches kernels into.  It
wraps one HSA queue, preserves launch order (HIP stream semantics), and
exposes the two spatial-partitioning hooks the paper contrasts:

* :meth:`set_cu_mask` — AMD's *stream-scoped* CU-masking API (the
  baseline, programmer-visible, IOCTL-backed);
* :attr:`rightsizer` — KRISP's *programmer-transparent* interception
  point: when installed, every kernel launch is tagged with a requested
  partition size that the (extended) packet processor turns into a
  per-kernel mask.  The application code never changes — exactly the
  transparency argument of paper Section IV-A.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.gpu.aql import KernelDispatchPacket
from repro.gpu.cu_mask import CUMask
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.runtime.hsa import HsaRuntime
from repro.sim.process import Signal

__all__ = ["Stream"]

#: A right-sizer maps a kernel descriptor to a requested CU count
#: (or ``None`` to leave the kernel un-sized).
RightSizer = Callable[[KernelDescriptor], Optional[int]]


class Stream:
    """An in-order kernel launch stream bound to one HSA queue."""

    def __init__(self, runtime: HsaRuntime, name: str = "",
                 rightsizer: Optional[RightSizer] = None) -> None:
        self.runtime = runtime
        self.name = name or "stream"
        self.queue = runtime.create_queue(name=f"{self.name}.queue")
        self.rightsizer = rightsizer
        self.kernels_launched = 0
        self._last_completion: Optional[Signal] = None

    def launch_kernel(
        self, descriptor: KernelDescriptor, tag: str = ""
    ) -> Signal:
        """Launch a kernel asynchronously; returns its completion signal.

        Kernels in one stream execute in order.  If a right-sizer is
        installed the launch is tagged with its partition size — the
        runtime half of KRISP.
        """
        requested = self.rightsizer(descriptor) if self.rightsizer else None
        launch = KernelLaunch(
            descriptor=descriptor, requested_cus=requested,
            tag=tag or self.name,
        )
        # Unnamed: per-launch f-string names cost real time at serving
        # rates and nothing consumes them.
        signal = self.runtime.create_signal()
        packet = KernelDispatchPacket(
            launch=launch, barrier=True, completion_signal=signal
        )
        self.queue.submit(packet)
        self.kernels_launched += 1
        self._last_completion = signal
        return signal

    def set_cu_mask(
        self, mask: CUMask, on_done: Optional[Callable[[], None]] = None
    ) -> None:
        """Apply a stream-scoped CU mask (AMD CU-masking API)."""
        self.runtime.set_queue_cu_mask(self.queue, mask, on_done=on_done)

    def synchronize_signal(self) -> Signal:
        """Signal that fires when all launched work has completed.

        Returns an already-fired signal when the stream is empty,
        mirroring ``hipStreamSynchronize`` returning immediately.
        """
        if self._last_completion is not None:
            return self._last_completion
        signal = self.runtime.create_signal(name=f"{self.name}.empty")
        signal.fire(None)
        return signal
