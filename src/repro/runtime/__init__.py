"""Simulated ROCm-like GPU runtime.

The runtime sits between the inference server's workers and the GPU
substrate, mirroring the stack of paper Fig. 9: HIP-style streams backed by
software HSA queues (:mod:`~repro.runtime.stream`,
:mod:`~repro.runtime.hsa`), the stream-scoped CU-masking API whose IOCTL
cost is modelled by :mod:`~repro.runtime.ioctl`, and the barrier-packet
*emulation* of kernel-scoped partition instances
(:mod:`~repro.runtime.emulation`) that the paper uses to evaluate KRISP on
stock hardware (Section V).
"""

from repro.runtime.hsa import HsaRuntime
from repro.runtime.ioctl import IoctlModel
from repro.runtime.stream import Stream

__all__ = ["HsaRuntime", "IoctlModel", "Stream"]
