"""Barrier-packet emulation of kernel-scoped partition instances.

This is the paper's evaluation vehicle (Section V, Fig. 11): stock
hardware only offers *stream-scoped* CU masks, so each kernel launch ``K``
is bracketed by two barrier packets:

1. ``B1`` depends on the previous kernel's completion signal — no kernel
   may still be running when the queue's mask changes.  When the hardware
   consumes ``B1`` it triggers a *runtime callback* that performs
   kernel-wise right-sizing, runs the resource-allocation algorithm, and
   reconfigures the queue's CU mask through the (serialised) IOCTL path.
2. ``B2`` depends on a signal fired when the IOCTL retires, closing the
   race between mask reconfiguration and the kernel's execution.

The bracketing costs real time — the red components of paper Fig. 12 —
which the paper subtracts out analytically:

    L_over            = L_emu(baseline) - L_real(baseline)
    L_real(KRISP)     = L_emu(KRISP)    - L_over

Helpers for that correction live in :func:`corrected_latency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpu.aql import BarrierAndPacket, KernelDispatchPacket
from repro.gpu.command_processor import KernelScopedAllocator
from repro.gpu.cu_mask import CUMask
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.runtime.hsa import HsaRuntime
from repro.runtime.stream import RightSizer
from repro.sim.process import Signal

__all__ = [
    "EmulationConfig",
    "EmulatedKernelScopedStream",
    "FullGpuAllocator",
    "corrected_latency",
    "emulation_overhead",
]


@dataclass(frozen=True)
class EmulationConfig:
    """Timing constants of the emulation bracket.

    ``callback_overhead`` is the HSA-runtime cost of dispatching the
    barrier-consumed callback; ``rightsizing_latency`` is the software cost
    of the right-sizing lookup plus the allocation algorithm (the paper
    profiled a ~1 microsecond tail for mask generation in software).  The
    IOCTL itself is charged by :class:`repro.runtime.ioctl.IoctlModel`.
    """

    callback_overhead: float = 5e-6
    rightsizing_latency: float = 1e-6

    def __post_init__(self) -> None:
        if self.callback_overhead < 0 or self.rightsizing_latency < 0:
            raise ValueError("latencies must be >= 0")


class FullGpuAllocator:
    """Trivial allocator mapping every kernel to the full device.

    Used to measure the pure emulation overhead: the paper's
    ``L_emu(baseline)`` is the emulated bracket with the resource mask set
    to all active CUs.
    """

    def allocate(self, launch: KernelLaunch, device) -> CUMask:
        """Return the all-CUs mask regardless of the request."""
        return CUMask.all_cus(device.topology)


class EmulatedKernelScopedStream:
    """A stream that emulates per-kernel masks with barrier packets.

    Drop-in replacement for :class:`repro.runtime.stream.Stream` from the
    worker's point of view (same ``launch_kernel`` /
    ``synchronize_signal`` interface).
    """

    def __init__(
        self,
        runtime: HsaRuntime,
        allocator: KernelScopedAllocator,
        sizer: Optional[RightSizer] = None,
        config: Optional[EmulationConfig] = None,
        name: str = "",
        record_masks: bool = False,
    ) -> None:
        """``record_masks=True`` appends every mask actually applied to
        the queue (at IOCTL retirement, in application order) to
        :attr:`masks_applied` — the audit subsystem's evidence that each
        kernel ran strictly inside its queue's mask.  Off by default:
        long serving runs would otherwise accumulate one entry per
        launch."""
        self.runtime = runtime
        self.allocator = allocator
        self.sizer = sizer
        self.config = config or EmulationConfig()
        self.name = name or "emu-stream"
        self.queue = runtime.create_queue(name=f"{self.name}.queue")
        self.kernels_launched = 0
        self.barriers_injected = 0
        self.record_masks = record_masks
        self.masks_applied: list[CUMask] = []
        self._last_completion: Optional[Signal] = None

    def launch_kernel(
        self, descriptor: KernelDescriptor, tag: str = ""
    ) -> Signal:
        """Launch a kernel under an emulated kernel-scoped partition."""
        requested = self.sizer(descriptor) if self.sizer else None
        launch = KernelLaunch(
            descriptor=descriptor, requested_cus=requested,
            tag=tag or self.name,
        )
        mask_set = self.runtime.create_signal(
            name=f"{self.name}.maskset{self.kernels_launched}"
        )

        def on_b1_consumed() -> None:
            # The runtime callback: right-size, allocate, reconfigure the
            # queue mask through the IOCTL, then release B2.
            def reconfigure() -> None:
                mask = self.allocator.allocate(launch, self.runtime.device)
                tracer = self.runtime.sim.tracer
                if tracer.enabled:
                    tracer.mask_decision(launch, mask, self.runtime.device)
                def applied() -> None:
                    if self.record_masks:
                        self.masks_applied.append(mask)
                    mask_set.fire(mask)

                self.runtime.set_queue_cu_mask(
                    self.queue, mask, on_done=applied
                )

            delay = (self.config.callback_overhead
                     + self.config.rightsizing_latency)
            self.runtime.sim.schedule_in(delay, reconfigure)

        deps = []
        if self._last_completion is not None:
            deps.append(self._last_completion)
        b1 = BarrierAndPacket(dep_signals=deps, on_consumed=on_b1_consumed)
        b2 = BarrierAndPacket(dep_signals=[mask_set])
        completion = self.runtime.create_signal(
            name=f"{self.name}.k{self.kernels_launched}"
        )
        kernel_packet = KernelDispatchPacket(
            launch=launch, barrier=False, completion_signal=completion
        )
        tracer = self.runtime.sim.tracer
        if tracer.enabled:
            tracer.barrier_injected(self.name, "B1", descriptor.name)
            tracer.barrier_injected(self.name, "B2", descriptor.name)
        self.queue.submit(b1)
        self.queue.submit(b2)
        self.queue.submit(kernel_packet)
        self.barriers_injected += 2
        self.kernels_launched += 1
        self._last_completion = completion
        return completion

    def synchronize_signal(self) -> Signal:
        """Signal firing when all launched work has completed."""
        if self._last_completion is not None:
            return self._last_completion
        signal = self.runtime.create_signal(name=f"{self.name}.empty")
        signal.fire(None)
        return signal


def emulation_overhead(l_emu_base: float, l_real_base: float) -> float:
    """``L_over = L_emu(baseline) - L_real(baseline)`` (paper Section V-B)."""
    overhead = l_emu_base - l_real_base
    if overhead < 0:
        raise ValueError(
            f"emulated baseline ({l_emu_base}) faster than real baseline "
            f"({l_real_base}); overhead would be negative"
        )
    return overhead


def corrected_latency(l_emu_krisp: float, l_over: float) -> float:
    """``L_real(KRISP) = L_emu(KRISP) - L_over`` (paper Section V-B)."""
    if l_over < 0:
        raise ValueError("overhead must be >= 0")
    return max(0.0, l_emu_krisp - l_over)
