"""Nvidia-MPS-style GPU% provisioning (paper Section IV-D4).

The paper argues kernel-scoped partition instances generalise to Nvidia
hardware, whose Volta-and-later MPS "concentrates the work submitted by
a client to a set of SMs" selected from an *active thread percentage*.
This module is that interface: an :class:`MpsControlDaemon` hands out
client contexts with a GPU% limit, mapping the percentage to a concrete
SM (CU) set the same way MPS does — rounded up to whole SMs, allocated
contiguously so clients overlap only when oversubscribed.

It gives the prior-work policies a faithful MPS vocabulary (GSLICE and
Gpulet configure GPU%, not CU lists) and lets the right-sizing code
translate between the two resource units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology

__all__ = ["gpu_percentage_to_cus", "cus_to_gpu_percentage",
           "MpsClientContext", "MpsControlDaemon"]


def gpu_percentage_to_cus(percentage: float, topology: GpuTopology) -> int:
    """SMs granted for an MPS active-thread percentage (rounded up)."""
    if not 0 < percentage <= 100:
        raise ValueError(f"percentage {percentage} out of (0, 100]")
    # The epsilon absorbs float noise so an exact k-SM percentage maps
    # back to exactly k SMs.
    return max(1, math.ceil(topology.total_cus * percentage / 100.0 - 1e-9))


def cus_to_gpu_percentage(cus: int, topology: GpuTopology) -> float:
    """The smallest GPU% that grants at least ``cus`` SMs."""
    if not 1 <= cus <= topology.total_cus:
        raise ValueError(f"cus {cus} out of range")
    return 100.0 * cus / topology.total_cus


@dataclass(frozen=True)
class MpsClientContext:
    """One MPS client: its GPU% limit and the SM set enforcing it."""

    client_id: int
    percentage: float
    mask: CUMask


class MpsControlDaemon:
    """Hands out GPU%-limited client contexts over one device.

    SM sets are carved contiguously from the device; when the sum of
    percentages exceeds 100%, later clients wrap around and overlap
    earlier ones — MPS permits oversubscription (Table I).
    """

    def __init__(self, topology: GpuTopology) -> None:
        self.topology = topology
        self._next_client = 0
        self._cursor = 0
        self.provisioned_percentage = 0.0

    def create_client(self, percentage: float = 100.0) -> MpsClientContext:
        """Provision a client with an active-thread percentage."""
        cus = gpu_percentage_to_cus(percentage, self.topology)
        total = self.topology.total_cus
        selected = [(self._cursor + offset) % total for offset in range(cus)]
        self._cursor = (self._cursor + cus) % total
        context = MpsClientContext(
            client_id=self._next_client,
            percentage=percentage,
            mask=CUMask.from_cus(self.topology, selected),
        )
        self._next_client += 1
        self.provisioned_percentage += percentage
        return context

    @property
    def oversubscribed(self) -> bool:
        """Whether provisioned percentages exceed the device."""
        return self.provisioned_percentage > 100.0 + 1e-9
