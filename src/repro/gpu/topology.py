"""GPU compute topology: shader engines and compute units.

The evaluation platform of the paper is an AMD MI50: 60 compute units (CUs)
organised as 4 shader engines (SEs) of 15 CUs each, 2560 threads per CU.
:func:`GpuTopology.mi50` builds that preset; other shapes (e.g. an
MI100-like 120-CU part) are available for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuTopology"]


@dataclass(frozen=True)
class GpuTopology:
    """Static shape and limits of a simulated GPU.

    Attributes
    ----------
    num_se:
        Number of shader engines (clusters).
    cus_per_se:
        Compute units in each shader engine.
    threads_per_cu:
        Maximum resident threads per CU (2560 on MI50).
    wavefront_size:
        Threads per wavefront (64 on GCN/CDNA).
    max_kernels_per_cu:
        Maximum concurrently resident kernels per CU.  The paper sizes the
        per-CU kernel counters at 5 bits because a GPU handles at most 32
        concurrent streams.
    mem_bandwidth_frac:
        Peak global memory bandwidth expressed as a dimensionless budget of
        1.0; kernels demand fractions of it (see
        :mod:`repro.gpu.exec_model`).
    name:
        Human-readable device name.
    """

    num_se: int = 4
    cus_per_se: int = 15
    threads_per_cu: int = 2560
    wavefront_size: int = 64
    max_kernels_per_cu: int = 32
    name: str = "generic-gpu"

    def __post_init__(self) -> None:
        if self.num_se < 1 or self.cus_per_se < 1:
            raise ValueError("topology must have at least one SE and one CU")

    @property
    def total_cus(self) -> int:
        """Total compute units on the device."""
        return self.num_se * self.cus_per_se

    @property
    def max_threads(self) -> int:
        """Maximum concurrently resident threads on the whole GPU."""
        return self.total_cus * self.threads_per_cu

    def cu_index(self, se: int, cu: int) -> int:
        """Flatten an (SE, CU-within-SE) pair to a global CU index."""
        self._check_se(se)
        if not 0 <= cu < self.cus_per_se:
            raise ValueError(f"cu {cu} out of range [0, {self.cus_per_se})")
        return se * self.cus_per_se + cu

    def se_of(self, cu_index: int) -> int:
        """Shader engine that owns global CU ``cu_index``."""
        if not 0 <= cu_index < self.total_cus:
            raise ValueError(f"cu index {cu_index} out of range")
        return cu_index // self.cus_per_se

    def cus_in_se(self, se: int) -> range:
        """Global CU indices belonging to shader engine ``se``."""
        self._check_se(se)
        start = se * self.cus_per_se
        return range(start, start + self.cus_per_se)

    def _check_se(self, se: int) -> None:
        if not 0 <= se < self.num_se:
            raise ValueError(f"se {se} out of range [0, {self.num_se})")

    @classmethod
    def mi50(cls) -> "GpuTopology":
        """AMD MI50: 4 SEs x 15 CUs = 60 CUs, 2560 threads/CU."""
        return cls(num_se=4, cus_per_se=15, threads_per_cu=2560,
                   wavefront_size=64, name="AMD-MI50")

    @classmethod
    def mi100(cls) -> "GpuTopology":
        """MI100-like part: 8 SEs x 15 CUs = 120 CUs."""
        return cls(num_se=8, cus_per_se=15, threads_per_cu=2560,
                   wavefront_size=64, name="AMD-MI100")
