"""GPU command processor (packet processor + dispatcher front end).

The command processor drains AQL packets from every registered HSA queue
in order.  For kernel-dispatch packets it decides the kernel's CU mask:

* **Baseline** — the kernel inherits its queue's stream-scoped CU mask
  (AMD CU-masking API semantics, paper Fig. 10a).
* **Kernel-scoped partition instances (KRISP)** — when a packet carries a
  partition size (``launch.requested_cus``) and a kernel-scoped allocator
  is installed, the packet processor runs resource-mask generation
  (Algorithm 1) against the live per-CU kernel counters, paying a small
  firmware latency (the paper measured a 1 microsecond tail), and tags the
  kernel with the generated mask (paper Fig. 10b).

Packets with the AQL barrier bit wait for the previous packet in their
queue to complete before being consumed — this is how HIP streams
serialise kernels.  Barrier-AND packets wait on their dependency signals
and may invoke a runtime callback when consumed, which is the hook the
emulation methodology (Section V) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.gpu.aql import AqlPacket, BarrierAndPacket, KernelDispatchPacket
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelLaunch
from repro.gpu.queue import HsaQueue
from repro.sim.engine import Simulator
from repro.sim.process import Signal

__all__ = ["CommandProcessor", "CommandProcessorConfig", "KernelScopedAllocator"]


class KernelScopedAllocator(Protocol):
    """Interface the packet processor calls to right-size a kernel.

    Implemented by :class:`repro.core.krisp.KrispAllocator`; kept as a
    protocol so the GPU substrate does not depend on the KRISP core.
    """

    def allocate(self, launch: KernelLaunch, device: GpuDevice) -> CUMask:
        """Return the CU mask to enforce for this kernel."""
        ...


@dataclass(frozen=True)
class CommandProcessorConfig:
    """Firmware timing constants.

    ``packet_process_latency`` is the cost of consuming any AQL packet;
    ``mask_gen_latency`` is the extra firmware cost of running KRISP's
    resource-mask generation (the paper profiled a ~1 microsecond tail).
    """

    packet_process_latency: float = 0.5e-6
    mask_gen_latency: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.packet_process_latency < 0 or self.mask_gen_latency < 0:
            raise ValueError("latencies must be >= 0")


class _QueueState:
    """Per-queue in-order processing state."""

    def __init__(self, queue: HsaQueue) -> None:
        self.queue = queue
        self.consuming = False
        self.last_completion: Optional[Signal] = None


class CommandProcessor:
    """Drains registered HSA queues into the device."""

    def __init__(
        self,
        sim: Simulator,
        device: GpuDevice,
        config: Optional[CommandProcessorConfig] = None,
        allocator: Optional[KernelScopedAllocator] = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.config = config or CommandProcessorConfig()
        self.allocator = allocator
        self._states: dict[int, _QueueState] = {}
        self.packets_consumed = 0
        self.masks_generated = 0

    def register_queue(self, queue: HsaQueue) -> None:
        """Attach a queue; its doorbell now drives packet processing."""
        if queue.queue_id in self._states:
            raise ValueError(f"queue {queue.name} already registered")
        if queue.topology != self.device.topology:
            raise ValueError("queue topology does not match device")
        state = _QueueState(queue)
        self._states[queue.queue_id] = state
        queue.attach_doorbell(lambda _q, s=state: self._drive(s))

    # -- per-queue state machine --------------------------------------------
    def _drive(self, state: _QueueState) -> None:
        if state.consuming:
            return
        packet = state.queue.peek()
        if packet is None:
            return
        if self._must_wait_for_previous(state, packet):
            state.consuming = True
            assert state.last_completion is not None
            state.last_completion.on_fire(
                lambda _v: self._resume_after_wait(state)
            )
            return
        self._consume(state)

    def _resume_after_wait(self, state: _QueueState) -> None:
        state.consuming = False
        self._drive(state)

    def _must_wait_for_previous(
        self, state: _QueueState, packet: AqlPacket
    ) -> bool:
        if state.last_completion is None or state.last_completion.fired:
            return False
        return isinstance(packet, KernelDispatchPacket) and packet.barrier

    def _consume(self, state: _QueueState) -> None:
        packet = state.queue.pop()
        assert packet is not None
        state.consuming = True
        self.sim.schedule_in(
            self.config.packet_process_latency,
            lambda: self._process(state, packet),
        )

    def _process(self, state: _QueueState, packet: AqlPacket) -> None:
        self.packets_consumed += 1
        if isinstance(packet, KernelDispatchPacket):
            self._process_kernel(state, packet)
        elif isinstance(packet, BarrierAndPacket):
            self._process_barrier(state, packet)
        else:
            raise TypeError(f"unknown packet type {type(packet).__name__}")

    def _process_kernel(
        self, state: _QueueState, packet: KernelDispatchPacket
    ) -> None:
        launch = packet.launch
        use_allocator = (
            self.allocator is not None and launch.requested_cus is not None
        )
        extra_delay = self.config.mask_gen_latency if use_allocator else 0.0

        def dispatch() -> None:
            if use_allocator:
                assert self.allocator is not None
                mask = self.allocator.allocate(launch, self.device)
                self.masks_generated += 1
                tracer = self.sim.tracer
                if tracer.enabled:
                    tracer.mask_decision(launch, mask, self.device)
            else:
                mask = state.queue.cu_mask
            record = self.device.launch(launch, mask)
            if packet.completion_signal is not None:
                record.done.on_fire(
                    lambda value: packet.completion_signal.fire(value)
                )
            state.last_completion = record.done
            state.consuming = False
            self._drive(state)

        if extra_delay > 0:
            self.sim.schedule_in(extra_delay, dispatch)
        else:
            dispatch()

    def _process_barrier(
        self, state: _QueueState, packet: BarrierAndPacket
    ) -> None:
        pending = [s for s in packet.dep_signals if not s.fired]

        def finish() -> None:
            if packet.on_consumed is not None:
                packet.on_consumed()
            if packet.completion_signal is not None:
                packet.completion_signal.fire(None)
            state.last_completion = packet.completion_signal
            state.consuming = False
            self._drive(state)

        if not pending:
            finish()
            return
        remaining = len(pending)

        def one_fired(_value: object) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                finish()

        for signal in pending:
            signal.on_fire(one_fired)
