"""Simulated AMD-style GPU substrate.

This package models everything KRISP's evaluation platform exposes below
the runtime: the shader-engine/compute-unit topology
(:mod:`~repro.gpu.topology`), CU bitmasks (:mod:`~repro.gpu.cu_mask`),
kernels and AQL packets, software HSA queues, the command processor that
consumes packets and applies spatial-partition masks, a workgroup
dispatcher timing model (:mod:`~repro.gpu.exec_model`) with AMD's
equal-split-across-SEs scheduling, per-CU kernel counters, and a CU/SE
power model.

The simulator deliberately models GPU behaviour at the dispatcher level —
the level at which KRISP operates — rather than the CU pipeline, which
KRISP leaves untouched (paper Section IV-D).
"""

from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.topology import GpuTopology

__all__ = ["CUMask", "GpuDevice", "KernelDescriptor", "KernelLaunch", "GpuTopology"]
