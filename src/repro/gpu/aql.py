"""Architected Queuing Language (AQL) packets.

ROCm submits work to the GPU as AQL packets in software HSA queues (paper
Section IV-D1): kernel-dispatch packets, and barrier-AND packets that hold
the queue until their dependency signals fire.  KRISP's hardware proposal
extends the kernel-dispatch packet with a *partition size* field (carried
here by :attr:`KernelLaunch.requested_cus`); the emulation methodology
relies on barrier packets with runtime callbacks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.gpu.kernel import KernelLaunch
from repro.sim.process import Signal

__all__ = ["AqlPacket", "KernelDispatchPacket", "BarrierAndPacket"]

_packet_ids = itertools.count()


@dataclass
class AqlPacket:
    """Common base: every packet gets an id and a completion signal."""

    completion_signal: Optional[Signal] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))


@dataclass
class KernelDispatchPacket(AqlPacket):
    """Launches a kernel.

    ``barrier`` mirrors the AQL barrier bit: when set (HIP stream
    semantics, the default) the packet processor waits for all prior
    packets in the queue to complete before launching, serialising the
    stream.  The KRISP partition-size extension rides along in
    ``launch.requested_cus``.
    """

    launch: KernelLaunch = None  # type: ignore[assignment]
    barrier: bool = True

    def __post_init__(self) -> None:
        if self.launch is None:
            raise ValueError("KernelDispatchPacket requires a launch")


@dataclass
class BarrierAndPacket(AqlPacket):
    """Blocks the queue until every dependency signal has fired.

    ``on_consumed`` models the runtime callback hook the emulation uses:
    it runs when the hardware consumes the packet (after the dependencies
    resolve), *before* the completion signal fires.
    """

    dep_signals: Sequence[Signal] = ()
    on_consumed: Optional[Callable[[], None]] = None
