"""Software HSA queues.

The ROCm runtime allocates HSA queues in shared memory; user-level code
enqueues AQL packets and rings a doorbell, and the GPU command processor
drains them in order.  Each queue carries a *stream-scoped CU mask* — the
baseline hardware's only spatial-partitioning handle, set through an IOCTL
by the CU-masking API (paper Fig. 10a).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.gpu.aql import AqlPacket
from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology

__all__ = ["HsaQueue"]

_queue_ids = itertools.count()


class HsaQueue:
    """An in-order AQL packet queue with a per-queue CU mask."""

    def __init__(self, topology: GpuTopology, name: str = "") -> None:
        self.topology = topology
        self.queue_id = next(_queue_ids)
        self.name = name or f"queue-{self.queue_id}"
        self.cu_mask = CUMask.all_cus(topology)
        self._packets: list[AqlPacket] = []
        self._doorbell: Optional[Callable[["HsaQueue"], None]] = None
        self.packets_submitted = 0

    def set_cu_mask(self, mask: CUMask) -> None:
        """Set the queue's stream-scoped CU mask (IOCTL-backed in ROCm).

        An empty mask would deadlock the hardware scheduler, so it is
        rejected, matching the driver's behaviour.
        """
        if mask.topology != self.topology:
            raise ValueError("mask topology mismatch")
        if mask.is_empty():
            raise ValueError("queue CU mask may not be empty")
        self.cu_mask = mask

    def submit(self, packet: AqlPacket) -> None:
        """Enqueue a packet and ring the doorbell."""
        self._packets.append(packet)
        self.packets_submitted += 1
        if self._doorbell is not None:
            self._doorbell(self)

    def pop(self) -> Optional[AqlPacket]:
        """Remove and return the oldest packet, or ``None`` when empty."""
        if not self._packets:
            return None
        return self._packets.pop(0)

    def peek(self) -> Optional[AqlPacket]:
        """Oldest packet without removing it."""
        return self._packets[0] if self._packets else None

    def __len__(self) -> int:
        return len(self._packets)

    def attach_doorbell(self, callback: Callable[["HsaQueue"], None]) -> None:
        """Install the command processor's doorbell handler."""
        self._doorbell = callback
