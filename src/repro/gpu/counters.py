"""Per-CU kernel counters (the paper's *Resource Monitor*).

KRISP's resource-mask generation (Algorithm 1) needs to know how many
kernels are currently assigned to every CU.  The paper adds 5-bit counters
per CU (32 concurrent streams max) to the command processor; this module is
that structure, updated by the device on every kernel dispatch/retire and
read by the allocator.
"""

from __future__ import annotations

from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology

__all__ = ["CUKernelCounters"]


class CUKernelCounters:
    """Tracks the number of kernels assigned to each compute unit.

    Besides the live counts the structure keeps two high-water marks for
    observability: ``peak_counts`` (per-CU maximum residency) and
    ``peak_busy_cus`` (maximum number of simultaneously busy CUs — the
    cell's peak CU occupancy, surfaced in
    :class:`~repro.server.experiment.ExperimentResult`).

    When the owner calls :meth:`tick` at every counter mutation, the
    structure also integrates two CU-time quantities over the run —
    ``assigned_cu_seconds`` (∫ Σ per-CU counts dt: total kernel-CU
    residency) and ``busy_cu_seconds`` (∫ busy-CU count dt) — which the
    audit subsystem (:mod:`repro.check`) balances against the device's
    per-kernel work ledger (work conservation).  Ticking is opt-in and
    pure accounting: it reads the simulation clock but never feeds back
    into any result float.
    """

    def __init__(self, topology: GpuTopology) -> None:
        self.topology = topology
        self._counts = [0] * topology.total_cus
        self._peaks = [0] * topology.total_cus
        self._busy = 0
        self._total = 0
        # Per-SE load aggregate: Algorithm 1 ranks SEs by load on every
        # mask generation, so the sum is maintained per assign/release
        # instead of rescanned per query (integer-exact either way).
        self._se_loads = [0] * topology.num_se
        self.peak_busy_cus = 0
        self._last_tick = 0.0
        self.assigned_cu_seconds = 0.0
        self.busy_cu_seconds = 0.0

    def tick(self, now: float) -> None:
        """Advance the CU-time integrals to ``now`` (monotonic clock).

        Must be called *before* the assign/release that lands at ``now``
        so the elapsed interval is charged at the old occupancy.  Calls
        at an unchanged timestamp are exact no-ops.
        """
        elapsed = now - self._last_tick
        if elapsed <= 0.0:
            return
        if self._total:
            self.assigned_cu_seconds += self._total * elapsed
            self.busy_cu_seconds += self._busy * elapsed
        self._last_tick = now

    def assign(self, mask: CUMask) -> None:
        """Record a kernel dispatched onto every CU in ``mask``."""
        limit = self.topology.max_kernels_per_cu
        counts = self._counts
        peaks = self._peaks
        # mask.cu_tuple is the mask's cached decode — on the dispatch hot
        # path this avoids re-deriving the indices per assign/release.
        se_loads = self._se_loads
        per_se = self.topology.cus_per_se
        for cu in mask.cu_tuple:
            n = counts[cu]
            if n >= limit:
                raise OverflowError(
                    f"CU {cu} already holds {limit} kernels "
                    f"(counter width exceeded)"
                )
            if n == 0:
                self._busy += 1
            counts[cu] = n = n + 1
            se_loads[cu // per_se] += 1
            if n > peaks[cu]:
                peaks[cu] = n
        self._total += len(mask.cu_tuple)
        if self._busy > self.peak_busy_cus:
            self.peak_busy_cus = self._busy

    def release(self, mask: CUMask) -> None:
        """Record a kernel retiring from every CU in ``mask``."""
        counts = self._counts
        se_loads = self._se_loads
        per_se = self.topology.cus_per_se
        for cu in mask.cu_tuple:
            n = counts[cu]
            if n == 0:
                raise ValueError(f"CU {cu} counter underflow")
            counts[cu] = n = n - 1
            se_loads[cu // per_se] -= 1
            if n == 0:
                self._busy -= 1
        self._total -= len(mask.cu_tuple)

    def count(self, cu: int) -> int:
        """Kernels currently assigned to global CU ``cu``."""
        return self._counts[cu]

    def se_load(self, se: int) -> int:
        """Sum of kernel counts over the CUs of shader engine ``se``
        (Algorithm 1 lines 4-7).  O(1): read from the maintained
        aggregate rather than rescanned."""
        if se < 0:
            raise ValueError(f"se {se} out of range")
        return self._se_loads[se]

    def se_loads_view(self) -> list[int]:
        """Direct (read-only by convention) view of the per-SE load sums.

        Same contract as :meth:`counts_view`: the allocator's selection
        sort indexes it on every mask generation; callers must not
        mutate it.
        """
        return self._se_loads

    def residents_map(self) -> dict[int, int]:
        """``{cu: residents}`` for CUs with at least one kernel."""
        return {cu: n for cu, n in enumerate(self._counts) if n > 0}

    def counts_view(self) -> list[int]:
        """Direct (read-only by convention) view of the per-CU counts.

        The device's hot path indexes this list on every rate recompute;
        callers must not mutate it.
        """
        return self._counts

    def busy_cus(self) -> int:
        """Number of CUs with at least one resident kernel."""
        return self._busy

    def busy_mask(self) -> CUMask:
        """Mask of CUs with at least one resident kernel."""
        return CUMask.from_cus(
            self.topology, (cu for cu, n in enumerate(self._counts) if n > 0)
        )

    def total_assigned(self) -> int:
        """Sum of all counters (kernel-CU assignments in flight).  O(1)."""
        return self._total

    def snapshot(self) -> list[int]:
        """Copy of the raw per-CU counts."""
        return list(self._counts)

    def peak_counts(self) -> list[int]:
        """Copy of the per-CU high-water marks (max residency ever seen)."""
        return list(self._peaks)

    def audit(self) -> list[str]:
        """Cross-check every maintained aggregate against a fresh rescan.

        Returns human-readable violation strings (empty = consistent).
        The maintained ``busy``/``total``/per-SE sums are integer-exact
        by construction, so *any* drift here is a real bookkeeping bug.
        """
        violations: list[str] = []
        counts = self._counts
        limit = self.topology.max_kernels_per_cu
        per_se = self.topology.cus_per_se
        for cu, n in enumerate(counts):
            if n < 0:
                violations.append(f"counters: CU {cu} count {n} < 0")
            elif n > limit:
                violations.append(
                    f"counters: CU {cu} count {n} exceeds width limit "
                    f"{limit}")
            if self._peaks[cu] < n:
                violations.append(
                    f"counters: CU {cu} peak {self._peaks[cu]} below "
                    f"live count {n}")
        busy = sum(1 for n in counts if n > 0)
        if busy != self._busy:
            violations.append(
                f"counters: busy aggregate {self._busy} != rescan {busy}")
        total = sum(counts)
        if total != self._total:
            violations.append(
                f"counters: total aggregate {self._total} != rescan {total}")
        for se in range(self.topology.num_se):
            load = sum(counts[se * per_se:(se + 1) * per_se])
            if load != self._se_loads[se]:
                violations.append(
                    f"counters: SE {se} load aggregate "
                    f"{self._se_loads[se]} != rescan {load}")
        if self.peak_busy_cus < busy:
            violations.append(
                f"counters: peak_busy_cus {self.peak_busy_cus} below "
                f"live busy count {busy}")
        return violations
