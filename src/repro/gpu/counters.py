"""Per-CU kernel counters (the paper's *Resource Monitor*).

KRISP's resource-mask generation (Algorithm 1) needs to know how many
kernels are currently assigned to every CU.  The paper adds 5-bit counters
per CU (32 concurrent streams max) to the command processor; this module is
that structure, updated by the device on every kernel dispatch/retire and
read by the allocator.
"""

from __future__ import annotations

from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology

__all__ = ["CUKernelCounters"]


class CUKernelCounters:
    """Tracks the number of kernels assigned to each compute unit.

    Besides the live counts the structure keeps two high-water marks for
    observability: ``peak_counts`` (per-CU maximum residency) and
    ``peak_busy_cus`` (maximum number of simultaneously busy CUs — the
    cell's peak CU occupancy, surfaced in
    :class:`~repro.server.experiment.ExperimentResult`).
    """

    def __init__(self, topology: GpuTopology) -> None:
        self.topology = topology
        self._counts = [0] * topology.total_cus
        self._peaks = [0] * topology.total_cus
        self._busy = 0
        self._total = 0
        # Per-SE load aggregate: Algorithm 1 ranks SEs by load on every
        # mask generation, so the sum is maintained per assign/release
        # instead of rescanned per query (integer-exact either way).
        self._se_loads = [0] * topology.num_se
        self.peak_busy_cus = 0

    def assign(self, mask: CUMask) -> None:
        """Record a kernel dispatched onto every CU in ``mask``."""
        limit = self.topology.max_kernels_per_cu
        counts = self._counts
        peaks = self._peaks
        # mask.cu_tuple is the mask's cached decode — on the dispatch hot
        # path this avoids re-deriving the indices per assign/release.
        se_loads = self._se_loads
        per_se = self.topology.cus_per_se
        for cu in mask.cu_tuple:
            n = counts[cu]
            if n >= limit:
                raise OverflowError(
                    f"CU {cu} already holds {limit} kernels "
                    f"(counter width exceeded)"
                )
            if n == 0:
                self._busy += 1
            counts[cu] = n = n + 1
            se_loads[cu // per_se] += 1
            if n > peaks[cu]:
                peaks[cu] = n
        self._total += len(mask.cu_tuple)
        if self._busy > self.peak_busy_cus:
            self.peak_busy_cus = self._busy

    def release(self, mask: CUMask) -> None:
        """Record a kernel retiring from every CU in ``mask``."""
        counts = self._counts
        se_loads = self._se_loads
        per_se = self.topology.cus_per_se
        for cu in mask.cu_tuple:
            n = counts[cu]
            if n == 0:
                raise ValueError(f"CU {cu} counter underflow")
            counts[cu] = n = n - 1
            se_loads[cu // per_se] -= 1
            if n == 0:
                self._busy -= 1
        self._total -= len(mask.cu_tuple)

    def count(self, cu: int) -> int:
        """Kernels currently assigned to global CU ``cu``."""
        return self._counts[cu]

    def se_load(self, se: int) -> int:
        """Sum of kernel counts over the CUs of shader engine ``se``
        (Algorithm 1 lines 4-7).  O(1): read from the maintained
        aggregate rather than rescanned."""
        if se < 0:
            raise ValueError(f"se {se} out of range")
        return self._se_loads[se]

    def se_loads_view(self) -> list[int]:
        """Direct (read-only by convention) view of the per-SE load sums.

        Same contract as :meth:`counts_view`: the allocator's selection
        sort indexes it on every mask generation; callers must not
        mutate it.
        """
        return self._se_loads

    def residents_map(self) -> dict[int, int]:
        """``{cu: residents}`` for CUs with at least one kernel."""
        return {cu: n for cu, n in enumerate(self._counts) if n > 0}

    def counts_view(self) -> list[int]:
        """Direct (read-only by convention) view of the per-CU counts.

        The device's hot path indexes this list on every rate recompute;
        callers must not mutate it.
        """
        return self._counts

    def busy_cus(self) -> int:
        """Number of CUs with at least one resident kernel."""
        return self._busy

    def busy_mask(self) -> CUMask:
        """Mask of CUs with at least one resident kernel."""
        return CUMask.from_cus(
            self.topology, (cu for cu, n in enumerate(self._counts) if n > 0)
        )

    def total_assigned(self) -> int:
        """Sum of all counters (kernel-CU assignments in flight).  O(1)."""
        return self._total

    def snapshot(self) -> list[int]:
        """Copy of the raw per-CU counts."""
        return list(self._counts)

    def peak_counts(self) -> list[int]:
        """Copy of the per-CU high-water marks (max residency ever seen)."""
        return list(self._peaks)
