"""Kernel descriptors and launches.

A :class:`KernelDescriptor` carries everything the dispatcher-level timing
model needs about a GPU kernel: its workgroup count and shape, how long one
workgroup wave takes on an uncontended CU, how many of its workgroups fit
concurrently on one CU (occupancy), and how memory-bound it is.  These are
the same quantities the paper's profiler observes per kernel (kernel size,
input size, behaviour class).

A :class:`KernelLaunch` is one dynamic instance of a descriptor flowing
through a queue, optionally tagged with KRISP's requested partition size.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["KernelDescriptor", "KernelLaunch"]

_launch_ids = itertools.count()


@dataclass(frozen=True)
class KernelDescriptor:
    """Static properties of a GPU kernel, as seen by the dispatcher.

    Attributes
    ----------
    name:
        Kernel symbol name (e.g. ``miopenSp3AsmConv_v21_1_2``).  Kernels
        with the same name share behaviour class, mirroring how the paper's
        performance database is keyed.
    workgroups:
        Number of workgroups (thread blocks) in the grid.
    threads_per_wg:
        Threads per workgroup; ``kernel_size`` is the product.
    wg_duration:
        Seconds for one *wave* of workgroups to retire on an uncontended CU.
    occupancy:
        Workgroups of this kernel concurrently resident per CU.
    mem_intensity:
        Fraction of execution bound by global memory bandwidth, in [0, 1].
        0 is pure compute; 1 is a pure streaming kernel.
    flat_time:
        CU-count-independent latency component in seconds — the
        memory-bandwidth / launch / serial portion of the kernel that
        does not speed up with more CUs.  Total isolated latency is
        ``flat_time + waves(mask) * wg_duration``.  A large flat share is
        what makes real GPU kernels tolerate CU restriction far below
        their grid size (the paper's Fig. 6a kernels above the thread
        limit with small minimum-CU requirements) while still exhibiting
        a sharp profiler kneepoint.
    bytes_in:
        Input data size in bytes (the x-axis of paper Fig. 6b).
    """

    name: str
    workgroups: int
    threads_per_wg: int = 256
    wg_duration: float = 5e-6
    occupancy: int = 4
    mem_intensity: float = 0.3
    flat_time: float = 0.0
    bytes_in: int = 0

    def __hash__(self) -> int:
        # Hash by (name, workgroups) alone — equality still compares
        # every field, but the generated dataclass hash re-tuples eight
        # fields per call and descriptors key the device's
        # launch-invariant memo on the hot path.  Same-named descriptors
        # differing only in batch scaling land in different buckets via
        # the workgroup count.
        return hash((self.name, self.workgroups))

    def __post_init__(self) -> None:
        if self.workgroups < 1:
            raise ValueError(f"{self.name}: workgroups must be >= 1")
        if self.threads_per_wg < 1:
            raise ValueError(f"{self.name}: threads_per_wg must be >= 1")
        if self.wg_duration <= 0:
            raise ValueError(f"{self.name}: wg_duration must be > 0")
        if self.occupancy < 1:
            raise ValueError(f"{self.name}: occupancy must be >= 1")
        if not 0.0 <= self.mem_intensity <= 1.0:
            raise ValueError(f"{self.name}: mem_intensity must be in [0, 1]")
        if self.flat_time < 0:
            raise ValueError(f"{self.name}: flat_time must be >= 0")
        if self.bytes_in < 0:
            raise ValueError(f"{self.name}: bytes_in must be >= 0")

    @property
    def kernel_size(self) -> int:
        """Total threads in the grid (paper Fig. 6a x-axis)."""
        return self.workgroups * self.threads_per_wg

    def scaled(self, factor: float) -> "KernelDescriptor":
        """A copy with the workgroup count scaled (used for batch sizing)."""
        return replace(
            self,
            workgroups=max(1, round(self.workgroups * factor)),
            bytes_in=max(0, round(self.bytes_in * factor)),
        )


@dataclass
class KernelLaunch:
    """One dynamic kernel invocation travelling through the stack.

    Attributes
    ----------
    descriptor:
        The kernel being launched.
    requested_cus:
        KRISP's injected partition size: the number of CUs this kernel was
        right-sized to, or ``None`` when no sizing information was attached
        (baseline behaviour — the kernel inherits its queue's mask).
    launch_id:
        Unique monotonically increasing id, for traces and metrics.
    tag:
        Free-form owner tag (worker name, model name) for bookkeeping.
    """

    descriptor: KernelDescriptor
    requested_cus: Optional[int] = None
    launch_id: int = field(default_factory=lambda: next(_launch_ids))
    tag: str = ""

    def __post_init__(self) -> None:
        if self.requested_cus is not None and self.requested_cus < 1:
            raise ValueError("requested_cus must be >= 1 when given")
