"""Compute-unit bitmasks.

A :class:`CUMask` is the unit of spatial partitioning on AMD GPUs: bit *i*
set means global CU *i* may run the kernel's workgroups.  The class is an
immutable value type so masks can be freely shared, hashed, and used as
dictionary keys by the allocator and profilers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator

from repro.gpu.topology import GpuTopology

__all__ = ["CUMask"]


@dataclass(frozen=True, eq=True)
class CUMask:
    """An immutable set of enabled compute units for one topology."""

    topology: GpuTopology
    bits: int

    def __post_init__(self) -> None:
        limit = (1 << self.topology.total_cus) - 1
        if self.bits < 0 or self.bits > limit:
            raise ValueError(
                f"mask 0x{self.bits:x} has bits outside the "
                f"{self.topology.total_cus}-CU device"
            )

    # -- constructors -----------------------------------------------------
    @classmethod
    def all_cus(cls, topology: GpuTopology) -> "CUMask":
        """Mask enabling every CU on the device."""
        return cls(topology, (1 << topology.total_cus) - 1)

    @classmethod
    def none(cls, topology: GpuTopology) -> "CUMask":
        """Empty mask (no CUs)."""
        return cls(topology, 0)

    @classmethod
    def from_cus(cls, topology: GpuTopology, cus: Iterable[int]) -> "CUMask":
        """Mask enabling exactly the given global CU indices."""
        bits = 0
        for cu in cus:
            if not 0 <= cu < topology.total_cus:
                raise ValueError(f"cu index {cu} out of range")
            bits |= 1 << cu
        return cls(topology, bits)

    @classmethod
    def first_n(cls, topology: GpuTopology, n: int) -> "CUMask":
        """Mask enabling the first ``n`` global CU indices."""
        if not 0 <= n <= topology.total_cus:
            raise ValueError(f"n={n} out of range")
        return cls(topology, (1 << n) - 1)

    def __hash__(self) -> int:
        # Hash by bits alone: equal masks (same topology AND bits) hash
        # equally, and an int hash is much cheaper than the generated
        # dataclass hash over the (topology, bits) field tuple — masks
        # key the device's launch-invariant memo on the hot path.
        return hash(self.bits)

    # -- queries ----------------------------------------------------------
    @cached_property
    def cu_tuple(self) -> tuple[int, ...]:
        """Enabled global CU indices, ascending, computed once."""
        bits = self.bits
        out = []
        index = 0
        while bits:
            if bits & 1:
                out.append(index)
            bits >>= 1
            index += 1
        return tuple(out)

    def count(self) -> int:
        """Number of enabled CUs."""
        return self.bits.bit_count()

    def cus(self) -> Iterator[int]:
        """Enabled global CU indices in ascending order."""
        return iter(self.cu_tuple)

    def has(self, cu: int) -> bool:
        """Whether global CU ``cu`` is enabled."""
        return bool(self.bits >> cu & 1)

    @cached_property
    def _per_se(self) -> tuple[int, ...]:
        counts = [0] * self.topology.num_se
        for cu in self.cu_tuple:
            counts[self.topology.se_of(cu)] += 1
        return tuple(counts)

    def per_se_counts(self) -> list[int]:
        """Enabled-CU count inside each shader engine."""
        return list(self._per_se)

    def active_ses(self) -> list[int]:
        """Shader engines that contain at least one enabled CU."""
        return [se for se, n in enumerate(self.per_se_counts()) if n > 0]

    def is_empty(self) -> bool:
        """True when no CU is enabled."""
        return self.bits == 0

    # -- word encoding ------------------------------------------------------
    def to_words(self, word_bits: int = 32) -> tuple[int, ...]:
        """Fixed-width little-endian word encoding of the mask.

        Word ``i`` bit ``j`` maps to global CU ``i * word_bits + j`` —
        the layout ``hsa_amd_queue_cu_set_mask`` expects for its uint32
        array.  Always emits enough words to cover the whole device, so
        the encoding length is a function of the topology alone.
        """
        if word_bits < 1:
            raise ValueError("word_bits must be >= 1")
        num_words = -(-self.topology.total_cus // word_bits)
        word_mask = (1 << word_bits) - 1
        return tuple((self.bits >> (i * word_bits)) & word_mask
                     for i in range(num_words))

    @classmethod
    def from_words(cls, topology: GpuTopology, words: Iterable[int],
                   word_bits: int = 32) -> "CUMask":
        """Inverse of :meth:`to_words`; validates word range and device
        bounds (bits beyond ``total_cus`` are rejected, not dropped).

        The device bound is checked per word so an imported trace with a
        stray high bit — typically inside the *last* word, where the
        encoding has slack beyond ``total_cus`` — is rejected with the
        offending word and CU position named, never silently aliased
        into a valid mask.
        """
        if word_bits < 1:
            raise ValueError("word_bits must be >= 1")
        total = topology.total_cus
        bits = 0
        for i, word in enumerate(words):
            if not 0 <= word < (1 << word_bits):
                raise ValueError(
                    f"word {i} (0x{word:x}) out of {word_bits}-bit range")
            base = i * word_bits
            allowed = max(0, total - base)
            stray = word >> allowed
            if stray:
                position = base + allowed + stray.bit_length() - 1
                raise ValueError(
                    f"word {i} (0x{word:x}) sets CU {position}, outside "
                    f"the {total}-CU device")
            bits |= word << base
        return cls(topology, bits)

    # -- set algebra --------------------------------------------------------
    def union(self, other: "CUMask") -> "CUMask":
        """CUs enabled in either mask."""
        self._check_same_device(other)
        return CUMask(self.topology, self.bits | other.bits)

    def intersect(self, other: "CUMask") -> "CUMask":
        """CUs enabled in both masks."""
        self._check_same_device(other)
        return CUMask(self.topology, self.bits & other.bits)

    def subtract(self, other: "CUMask") -> "CUMask":
        """CUs enabled here but not in ``other``."""
        self._check_same_device(other)
        return CUMask(self.topology, self.bits & ~other.bits)

    def invert(self) -> "CUMask":
        """CUs *not* enabled in this mask."""
        return CUMask(self.topology,
                      ~self.bits & (1 << self.topology.total_cus) - 1)

    def _check_same_device(self, other: "CUMask") -> None:
        if other.topology != self.topology:
            raise ValueError("masks belong to different topologies")

    def __str__(self) -> str:
        return (f"CUMask({self.count()}/{self.topology.total_cus} CUs, "
                f"per-SE {self.per_se_counts()})")
