"""Numpy-vectorised per-CU rate math for :class:`repro.gpu.device.GpuDevice`.

The device's two hot sweeps — crediting every resident kernel with
progress on each state change, and recomputing effective latencies for
large dirty sets / full sweeps — are object-shaped scalar loops in
:mod:`repro.gpu.exec_model` terms.  This module keeps the same
quantities in preallocated float64/int arrays indexed by a per-record
*slot*, so both sweeps become a handful of ufunc calls.

Bit-identity contract (see DESIGN.md): the scalar formulas in
``exec_model``/``device`` stay the single source of truth, and every
array expression here is arranged to produce the byte-identical float
sequence —

* progress advance is elementwise (``divide``/``add``/``minimum`` with
  ``out=``), and IEEE-754 elementwise ufuncs equal the scalar ops
  bit-for-bit;
* free slots hold ``latency = inf`` and ``progress = 0.0``, so the
  whole-array advance is an exact no-op on them (``elapsed / inf == 0.0``
  and ``x + 0.0 == x`` for the finite non-negative ``x`` involved);
* the per-SE capacity sum is accumulated **column-wise in CU order**
  (one ``+=`` per mask column) because ``np.sum`` uses pairwise
  summation, which is faster but not the scalar loop's left-to-right
  order; padded columns contribute exactly ``0.0``;
* the per-resident-count capacity factors ``(1/r)**alpha`` are computed
  by the *Python* expression the scalar path uses and only looked up
  through numpy, so no libm-vs-numpy pow discrepancy can enter;
* reductions that are order-sensitive in floats are avoided entirely —
  the only cross-element reduction is ``max``, which is exact.

Everything is import-guarded: without numpy (or with
``REPRO_SCALAR_RATES=1``) the device keeps its pure-python scalar path
and this module is never instantiated.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_SCALAR_RATES
    _np = None

HAVE_NUMPY = _np is not None

__all__ = ["HAVE_NUMPY", "RateArrays"]

#: Smallest record batch worth the vector path's fixed overhead (array
#: build + ufunc launch); below it the scalar loop wins.  Measured on the
#: bench roster: the crossover sits between 8 and 32 residents.
VECTOR_MIN = 16


class RateArrays:
    """Slot-indexed array mirror of the resident kernels' rate state.

    The device allocates a slot per running kernel; ``lat[slot]`` and
    ``progress[slot]`` are the authoritative ``eff_latency`` / progress
    while numpy mode is on (``KernelRecord.progress`` is synced back on
    demand).  Per-(descriptor, mask) launch invariants live in template
    rows scattered into ``(capacity, num_se, cus_per_se)`` matrices so a
    full-sweep latency recompute runs over the whole slot range with no
    per-record Python work.
    """

    def __init__(self, topology, config, capacity: int = 64) -> None:
        self._topology = topology
        self._config = config
        self._num_se = topology.num_se
        self._cus_per_se = topology.cus_per_se
        self._total_cus = topology.total_cus
        alpha = config.intra_cu_alpha
        # Python-computed capacity factors: index = resident count.  The
        # scalar loop contributes 1.0 for r <= 1 and (1.0 / r) ** alpha
        # above; the extra trailing entry backs the pad sentinel (a CU
        # index one past the device) with an exact-zero contribution.
        limit = topology.max_kernels_per_cu
        self._ftable = _np.array(
            [1.0, 1.0] + [(1.0 / r) ** alpha for r in range(2, limit + 1)])
        self._capvals = _np.empty(self._total_cus + 1)
        self._capvals[self._total_cus] = 0.0
        self.capacity = 0
        self._free: list[int] = []
        self._grow(capacity)
        # Slots whose template rows are stale (scattered lazily: the
        # incremental path may never take the vector sweep, so launches
        # should not pay the row-copy cost up front).
        self._stale: dict[int, tuple] = {}
        self._templates: dict = {}

    def _grow(self, capacity: int) -> None:
        old = self.capacity
        num_se, width = self._num_se, self._cus_per_se

        def grown(arr, fill, shape, dtype=float):
            new = _np.full(shape, fill, dtype=dtype)
            if old:
                new[:old] = arr
            return new

        self.lat = grown(getattr(self, "lat", None), _np.inf, capacity)
        self.progress = grown(getattr(self, "progress", None), 0.0, capacity)
        self._tmp = _np.empty(capacity)
        self._idx = grown(getattr(self, "_idx", None), self._total_cus,
                          (capacity, num_se, width), dtype=_np.intp)
        self._weight = grown(getattr(self, "_weight", None), 0.0,
                             (capacity, num_se))
        self._nocus = grown(getattr(self, "_nocus", None), True,
                            (capacity, num_se), dtype=bool)
        self._floor = grown(getattr(self, "_floor", None), 0.0, capacity)
        self._flat = grown(getattr(self, "_flat", None), 0.0, capacity)
        self._mi = grown(getattr(self, "_mi", None), 0.0, capacity)
        self._hasdem = grown(getattr(self, "_hasdem", None), False,
                             capacity, dtype=bool)
        self._free.extend(range(capacity - 1, old - 1, -1))
        self.capacity = capacity

    # -- slot management ----------------------------------------------------
    def alloc(self, record) -> int:
        """Claim a slot for ``record`` (progress 0, latency inf)."""
        if not self._free:
            self._grow(self.capacity * 2)
        slot = self._free.pop()
        # Template rows are scattered lazily at the first vector sweep.
        self._stale[slot] = self._template(record)
        return slot

    def free(self, slot: int) -> None:
        """Release ``slot``, restoring the exact-no-op fill values."""
        self.lat[slot] = _np.inf
        self.progress[slot] = 0.0
        self._stale.pop(slot, None)
        # Zero weight + all-inactive SEs make the freed row's latency a
        # finite don't-care (capacity is forced to 1.0, so no 0/0 NaN).
        self._weight[slot] = 0.0
        self._nocus[slot] = True
        self._free.append(slot)

    # -- progress -----------------------------------------------------------
    def advance(self, elapsed: float) -> None:
        """``progress += elapsed / lat``, elementwise.

        Bit-identical to the scalar per-record loop where it matters:
        same divide, same add; free slots (lat=inf, progress=0) are
        exact no-ops.  The scalar path's clamp to 1.0 is *deferred* to
        the read points (``sync_progress``): an unclamped value above
        1.0 yields a negative remaining fraction, which the completion
        scheduling maps to the same 0.0 delay the clamped value would —
        so event times are unaffected, and one ufunc per advance is
        saved on the hottest call site in the simulator.
        """
        _np.divide(elapsed, self.lat, out=self._tmp)
        _np.add(self.progress, self._tmp, out=self.progress)

    # -- latency ------------------------------------------------------------
    def _template(self, record):
        """Per-(descriptor, mask) template row for the vector sweep."""
        desc = record.launch.descriptor
        key = (desc, record.mask)
        cached = self._templates.get(key)
        if cached is None:
            idx = _np.full((self._num_se, self._cus_per_se),
                           self._total_cus, dtype=_np.intp)
            weight = _np.zeros(self._num_se)
            for se, w, se_cus in record.se_shares:
                idx[se, : len(se_cus)] = se_cus
                weight[se] = w
            cached = (idx, weight, weight == 0.0, record.floor_latency,
                      desc.flat_time, desc.mem_intensity,
                      record.demand > 0.0)
            self._templates[key] = cached
        return cached

    def _materialize(self) -> None:
        """Scatter lazily-pending template rows into the slot matrices."""
        for slot, tmpl in self._stale.items():
            idx, weight, nocus, floor, flat, mi, hasdem = tmpl
            self._idx[slot] = idx
            self._weight[slot] = weight
            self._nocus[slot] = nocus
            self._floor[slot] = floor
            self._flat[slot] = flat
            self._mi[slot] = mi
            self._hasdem[slot] = hasdem
        self._stale.clear()

    def latencies(self, residents, total_demand: float) -> list[float]:
        """Effective latency per slot under the current residency.

        ``residents`` is the per-CU resident-count list and
        ``total_demand`` the effective (fault-inclusive) bandwidth
        demand.  Returns a Python-float list indexed by slot; free slots
        hold meaningless (but finite) values.  Fault latency scales are
        *not* applied — the device falls back to the scalar path while a
        fault window is open.
        """
        if self._stale:
            self._materialize()
        config = self._config
        # Per-CU capacity factors under the current residency, via the
        # Python-computed table (pad sentinel contributes exact 0.0).
        capvals = self._capvals
        capvals[: self._total_cus] = self._ftable[
            _np.asarray(residents, dtype=_np.intp)]
        f = capvals[self._idx]
        # Column-wise accumulation in CU order — the scalar loop's exact
        # left-to-right reduction (np.sum's pairwise order would differ).
        cap = _np.zeros_like(self._weight)
        for j in range(self._cus_per_se):
            cap += f[:, :, j]
        # A CU is contended exactly when its factor fell below 1.0
        # (alpha >= 1, r > 1); pads are 0.0, so exclude them.
        contended = ((f > 0.0) & (f < 1.0)).any(axis=(1, 2))
        # SEs the record does not occupy: scalar skips them; give them
        # capacity 1.0 so the 0/0 row divides to an ignorable 0.0.
        cap[self._nocus] = 1.0
        se_time = self._weight / cap
        shared = se_time.max(axis=1)
        candidate = (self._flat + shared) + config.launch_overhead
        floor = self._floor
        lat = _np.where(contended & (candidate > floor), candidate, floor)
        if total_demand > config.mem_bandwidth_budget:
            bw_share = config.mem_bandwidth_budget / total_demand
            throttle = (1.0 - self._mi) + self._mi * bw_share
            _np.divide(lat, throttle, out=lat, where=self._hasdem)
        return lat.tolist()
