"""The simulated GPU device: rate-sharing kernel execution.

:class:`GpuDevice` owns the set of *running* kernels.  Each kernel's
instantaneous rate is derived from the dispatcher timing model
(:mod:`repro.gpu.exec_model`) given its CU mask, the current per-CU
residency, and the device-wide memory-bandwidth pool.  Whenever the
resident set changes (a launch or a retirement), every running kernel's
progress is advanced at its old rate and its completion event is
rescheduled at its new rate — an exact piecewise-constant-rate model, the
standard processor-sharing construction for discrete-event simulators.

The recompute path is the simulator's hot loop, so per-kernel invariants
(wave splits, isolated-latency floor, bandwidth demand) are cached at
launch — memoised per (descriptor, mask) pair, since serving traces
replay the same kernels onto the same converged partitions — the per-CU
residency is read through a zero-copy view, and a kernel whose rate did
not change keeps its already-scheduled completion event.  The slow-path
formulas in :mod:`repro.gpu.exec_model` remain the single source of
truth; the test suite asserts the cached fast path matches them.

Rate recomputes are *incremental*: a CU→resident-records reverse index
turns every state change into an exact dirty set — the records whose CUs
intersect the changed mask, plus (only when the device-wide bandwidth
pool crossed into, out of, or moved within the over-budget regime, or a
fault scale changed) the records the changed term can reach.
``_effective_latency`` depends solely on ``residents[cu]`` over the
record's own CUs, the total bandwidth demand, and the fault scales, so
recomputing only the dirty set yields the byte-identical float sequence
of the full O(all-residents) sweep.  Set ``REPRO_FULL_RECOMPUTE=1`` (or
construct ``GpuDevice(full_recompute=True)``) to force the full sweep —
the validation oracle the property tests compare against.

The device also owns the per-CU kernel counters (the *Resource Monitor*
KRISP's allocator reads) and the energy meter.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterable, Optional

from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.exec_model import (
    ExecutionModelConfig,
    bandwidth_demand,
    isolated_latency,
    split_workgroups,
)
from repro.gpu.kernel import KernelLaunch
from repro.gpu.power import EnergyMeter, PowerModel
from repro.gpu.ratevec import VECTOR_MIN as _VECTOR_MIN
from repro.gpu.topology import GpuTopology
from repro.sim.engine import Event, Simulator
from repro.sim.process import Signal

__all__ = ["GpuDevice", "KernelRecord"]

# Progress is a fraction in [0, 1]; treat anything this close to done as
# done to absorb float accumulation across many rate changes.
_PROGRESS_EPS = 1e-9


@dataclass(slots=True)
class KernelRecord:
    """Bookkeeping for one running (or completed) kernel.

    ``slots=True`` because the rate-recompute and progress-advance loops
    touch several attributes per resident per state change.
    """

    launch: KernelLaunch
    mask: CUMask
    done: Signal
    start_time: float
    progress: float = 0.0
    eff_latency: float = 0.0
    # Launch time while resident (the device's ``_last_advance`` is the
    # authoritative progress stamp for running kernels); refreshed to the
    # retirement time when the kernel completes.
    last_update: float = 0.0
    end_time: Optional[float] = None
    completion_event: Optional[Event] = field(default=None, repr=False)
    on_complete: Optional[Callable[["KernelRecord"], None]] = field(
        default=None, repr=False
    )
    # Launch-time invariants cached for the rate recompute hot path.
    floor_latency: float = field(default=0.0, repr=False)
    demand: float = field(default=0.0, repr=False)
    se_shares: tuple[tuple[int, float, tuple[int, ...]], ...] = field(
        default=(), repr=False
    )
    occupied_per_se: tuple[int, ...] = field(default=(), repr=False)
    # Per-device launch order (dirty sets are replayed in this order so
    # the incremental path schedules events exactly like the full sweep)
    # and the completion callback, bound once instead of per reschedule.
    seq_no: int = field(default=0, repr=False)
    complete_cb: Optional[Callable[[], None]] = field(
        default=None, repr=False)
    # Row in the device's vectorised rate arrays (numpy mode only; the
    # arrays are then authoritative for progress — ``sync_progress``
    # scatters back into the field).
    slot: int = field(default=-1, repr=False)


class GpuDevice:
    """A whole simulated GPU: execution, counters, and energy."""

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[GpuTopology] = None,
        exec_config: Optional[ExecutionModelConfig] = None,
        power_model: Optional[PowerModel] = None,
        record_trace: bool = False,
        full_recompute: Optional[bool] = None,
        recompute: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology or GpuTopology.mi50()
        self.exec_config = exec_config or ExecutionModelConfig()
        self.power_model = power_model or PowerModel()
        self.counters = CUKernelCounters(self.topology)
        self.meter = EnergyMeter(self.power_model, self.topology)
        self.record_trace = record_trace
        self.trace: list[KernelRecord] = []
        self.kernels_completed = 0
        # Work-conservation ledger: Σ mask.count() × residency over every
        # retired kernel.  Together with the live residents' partial work
        # it must balance the counters' ``assigned_cu_seconds`` integral
        # (the repro.check work-conservation invariant).  Pure
        # accounting — never read by the rate model.
        self.work_cu_seconds = 0.0
        self._running: dict[int, KernelRecord] = {}
        self._residents = self.counters.counts_view()
        self._total_demand = 0.0
        # ``full_recompute=None`` defers to the REPRO_FULL_RECOMPUTE env
        # flag; truthy selects the O(all-residents) sweep on every state
        # change (the validation oracle for the incremental path).
        if full_recompute is None:
            flag = os.environ.get("REPRO_FULL_RECOMPUTE", "")
            full_recompute = flag.lower() not in ("", "0", "false")
        # Recompute-mode selection (all three compute byte-identical
        # floats; they differ only in which records they *visit*):
        #   auto        — dirty-set recompute below the measured crossover,
        #                 full sweep above it (the default);
        #   incremental — always the dirty-set path;
        #   full        — always the full sweep (equals full_recompute,
        #                 which additionally rescans the meter aggregates
        #                 as the validation oracle).
        if recompute is None:
            recompute = os.environ.get("REPRO_RECOMPUTE", "") or "auto"
        if recompute not in ("auto", "incremental", "full"):
            raise ValueError(
                f"unknown recompute mode {recompute!r}; expected "
                "'auto', 'incremental', or 'full'")
        if recompute == "full":
            full_recompute = True
        self.recompute_mode = recompute
        self.full_recompute = full_recompute
        self._force_incremental = recompute == "incremental"
        # Equal-timestamp batching: while the engine is inside run(),
        # commits are deferred — dirty sets accumulate and one recompute
        # runs at the instant boundary (the engine's flush hook), so N
        # same-instant state changes cost one sweep instead of N.
        # REPRO_NO_DEFER=1 restores the eager per-change commit (the
        # validation oracle for the batched path); outside run() commits
        # are always eager, so single-stepped harnesses see consistent
        # state after every call.
        self._defer = os.environ.get(
            "REPRO_NO_DEFER", "").lower() in ("", "0", "false")
        self._pending = False
        self._pending_full = False
        self._pending_dirty: set[int] = set()
        sim.add_flush_hook(self._flush_commit)
        # The profiler module is imported lazily (the profiling package's
        # init pulls in modules that import this one).
        from repro.profiling import simprofile
        self._simprofile = simprofile
        # Numpy-vectorised rate state (repro.gpu.ratevec): the progress
        # and effective-latency sweeps run over slot-indexed arrays, with
        # the scalar formulas below as the bit-identical source of truth.
        # REPRO_SCALAR_RATES=1 (or numpy being absent) keeps the
        # pure-python path.
        self._vec = None
        if os.environ.get("REPRO_SCALAR_RATES", "").lower() in (
                "", "0", "false"):
            from repro.gpu import ratevec
            if ratevec.HAVE_NUMPY:
                self._vec = ratevec.RateArrays(
                    self.topology, self.exec_config)
        # Incremental-recompute state, keyed by per-device launch seq
        # numbers: CU → resident seq numbers, the seq numbers with
        # positive bandwidth demand (the reach of the over-budget
        # throttle term), the per-SE occupied-CU aggregate
        # (integer-exact, so the meter never rescans the resident set),
        # a per-device launch sequence, and the memoised (descriptor,
        # mask) launch invariants.
        self._cu_records: tuple[set[int], ...] = tuple(
            set() for _ in range(self.topology.total_cus))
        self._demand_ids: set[int] = set()
        self._occupied_per_se: list[int] = [0] * self.topology.num_se
        self._busy_cus = 0
        self._active_ses = 0
        self._next_seq_no = 0
        self._last_advance = 0.0
        self._invariant_cache: dict = {}
        # Fault-injection state (repro.faults): a global straggler
        # multiplier, per-stream-tag multipliers, and external bandwidth
        # pressure.  All default to the no-fault identity; the hot path
        # guards on those identities so a fault-free run computes the
        # exact same float sequence as before the fault layer existed.
        self._fault_scale = 1.0
        self._fault_tag_scale: dict[str, float] = {}
        self._fault_demand = 0.0
        # Pool-switch accounting (repro.core.pools): repacks charged by
        # the pooled allocator.  Pure bookkeeping — never folded into
        # kernel latency, so the krisp path's float sequences are
        # untouched.
        self.pool_switches = 0
        self.pool_switch_cost_s = 0.0

    # -- public API -------------------------------------------------------
    def launch(
        self,
        launch: KernelLaunch,
        mask: CUMask,
        on_complete: Optional[Callable[[KernelRecord], None]] = None,
    ) -> KernelRecord:
        """Start executing ``launch`` on the CUs in ``mask``.

        Returns the kernel's record; its ``done`` signal fires at
        retirement.  The mask must be non-empty and belong to this device.
        """
        if mask.topology != self.topology:
            raise ValueError("mask topology does not match device")
        if mask.is_empty():
            raise ValueError(
                f"kernel {launch.descriptor.name}: cannot launch on an "
                "empty CU mask"
            )
        self._advance_progress()
        self.counters.tick(self.sim.now)
        self.counters.assign(mask)
        # Device bookkeeping is keyed by the per-device launch sequence
        # number (not the global launch_id): dirty sets of seq numbers
        # sort back into launch order with a plain C-level int sort.
        seq_no = self._next_seq_no
        self._next_seq_no += 1
        record = KernelRecord(
            launch=launch,
            mask=mask,
            # Unnamed: per-launch f-string names showed up in profiles
            # and nothing reads them (debuggers can reconstruct the id
            # from the record).
            done=Signal(self.sim),
            start_time=self.sim.now,
            last_update=self.sim.now,
            on_complete=on_complete,
            seq_no=seq_no,
            complete_cb=partial(self._complete, seq_no),
        )
        self._cache_invariants(record)
        if self._vec is not None:
            record.slot = self._vec.alloc(record)
        old_total = self._total_demand
        self._total_demand += record.demand
        self._running[seq_no] = record
        cu_records = self._cu_records
        for cu in mask.cu_tuple:
            cu_records[cu].add(seq_no)
        if record.demand > 0.0:
            self._demand_ids.add(seq_no)
        self._apply_occupied(record.occupied_per_se, 1)
        if self.record_trace:
            self.trace.append(record)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.kernel_launched(record)
        self._commit_state_change(
            self._dirty_after_mask_change(mask, old_total))
        return record

    def busy(self) -> bool:
        """Whether any kernel is currently executing."""
        return bool(self._running)

    def running_count(self) -> int:
        """Number of kernels currently executing."""
        return len(self._running)

    @property
    def bandwidth_demand(self) -> float:
        """Total bandwidth demand of the resident kernels (budget units)."""
        return self._total_demand

    def finalize(self) -> None:
        """Close the energy-integration segment at the current time.

        Call after (or during) a run before reading
        ``meter.energy_joules``.
        """
        self._advance_progress()
        self.counters.tick(self.sim.now)
        self._commit_meter()

    def charge_pool_switch(self, cost_s: float) -> None:
        """Account one pooled-allocator repack/pool-switch.

        ``cost_s`` is the modelled wall cost of rebinding a queue to a
        different pool entry (an IOCTL-sized constant).  Accounting
        only: the simulator clock and kernel latencies are unaffected.
        """
        if cost_s < 0:
            raise ValueError("pool-switch cost must be >= 0")
        self.pool_switches += 1
        self.pool_switch_cost_s += cost_s

    # -- fault injection ----------------------------------------------------
    @property
    def fault_latency_scale(self) -> float:
        """Current global straggler multiplier (1.0 = no fault active)."""
        return self._fault_scale

    @property
    def fault_demand(self) -> float:
        """External (injected) bandwidth demand, in budget units."""
        return self._fault_demand

    def set_fault_latency_scale(self, scale: float,
                                tag: Optional[str] = None) -> None:
        """Multiply kernel latencies by ``scale`` from now on.

        ``tag=None`` scales every kernel (a device-wide straggler
        window); a stream tag scales only that worker's kernels.  Pass
        ``1.0`` to end the window.  Running kernels are credited with
        progress at their old rate and rescheduled at the new one.
        """
        if scale <= 0:
            raise ValueError("latency scale must be > 0")
        self._advance_progress()
        if tag is None:
            self._fault_scale = scale
        elif scale == 1.0:
            self._fault_tag_scale.pop(tag, None)
        else:
            self._fault_tag_scale[tag] = scale
        # A scale change (or the tag map becoming empty/non-empty) can
        # reach every resident kernel; fault windows are rare, so the
        # full sweep is the exact dirty set here.
        self._commit_state_change()

    def add_fault_bandwidth_demand(self, demand: float) -> None:
        """Inject (or with a negative value, retire) external bandwidth
        pressure, throttling resident memory-bound kernels."""
        self._advance_progress()
        old_fault = self._fault_demand
        self._fault_demand += demand
        if self._fault_demand < 0.0:
            self._fault_demand = 0.0
        dirty: set[int] = set()
        if self._regime_crossed(self._total_demand + old_fault,
                                self._total_demand + self._fault_demand):
            dirty |= self._demand_ids
        self._commit_state_change(dirty)

    # -- internals ----------------------------------------------------------
    def _cache_invariants(self, record: KernelRecord) -> None:
        """Precompute everything about (kernel, mask) the hot path needs.

        Memoised per (descriptor, mask): a serving trace replays the same
        frozen descriptors, and the allocator converges onto stable
        partitions, so steady state is nearly all hits.
        """
        desc = record.launch.descriptor
        key = (desc, record.mask)
        cached = self._invariant_cache.get(key)
        if cached is None:
            floor = isolated_latency(desc, record.mask, self.exec_config)
            demand = bandwidth_demand(desc, record.mask)
            per_se = record.mask.per_se_counts()
            shares = split_workgroups(desc.workgroups, per_se)
            topo = self.topology
            se_shares = []
            occupied = [0] * topo.num_se
            for se, (share, cus) in enumerate(zip(shares, per_se)):
                if cus == 0:
                    continue
                se_cus = tuple(cu for cu in record.mask.cu_tuple
                               if topo.se_of(cu) == se)
                # Precompute share * wg_duration / occupancy: dividing by
                # the SE's effective capacity yields its shared execution
                # time.
                weight = share * desc.wg_duration / desc.occupancy
                se_shares.append((se, weight, se_cus))
                # CUs that actually hold workgroups (for the power
                # model): a wide mask under a small grid leaves most
                # allocated CUs idle.
                occupied[se] = min(cus, -(-share // desc.occupancy))
            cached = (floor, demand, tuple(se_shares), tuple(occupied))
            self._invariant_cache[key] = cached
        (record.floor_latency, record.demand,
         record.se_shares, record.occupied_per_se) = cached

    def _effective_latency(self, record: KernelRecord) -> float:
        """Latency under current residency and bandwidth (fast path)."""
        config = self.exec_config
        residents = self._residents
        alpha = config.intra_cu_alpha
        shared = 0.0
        contended = False
        for _se, weight, se_cus in record.se_shares:
            capacity = 0.0
            for cu in se_cus:
                r = residents[cu]
                if r > 1:
                    contended = True
                    capacity += (1.0 / r) ** alpha
                else:
                    capacity += 1.0
            se_time = weight / capacity
            if se_time > shared:
                shared = se_time
        desc = record.launch.descriptor
        latency = record.floor_latency
        if contended:
            candidate = desc.flat_time + shared + config.launch_overhead
            if candidate > latency:
                latency = candidate
        total_demand = self._total_demand
        if self._fault_demand > 0.0:
            total_demand = total_demand + self._fault_demand
        if (total_demand > config.mem_bandwidth_budget
                and record.demand > 0.0):
            bw_share = config.mem_bandwidth_budget / total_demand
            throttle = (1.0 - desc.mem_intensity) + desc.mem_intensity * bw_share
            latency /= throttle
        if self._fault_scale != 1.0 or self._fault_tag_scale:
            latency *= self._fault_scale * self._fault_tag_scale.get(
                record.launch.tag, 1.0)
        return latency

    def _advance_progress(self) -> None:
        """Credit every running kernel with work done since last update.

        Several state changes commonly land on the same timestamp (a
        retirement immediately followed by the next launch), so the whole
        sweep early-outs when no simulated time has passed — ``progress
        += 0 / rate`` is an exact no-op, every record's ``last_update``
        already equals ``now`` (the invariant this method maintains), and
        skipping it changes no floats.
        """
        now = self.sim._now
        last = self._last_advance
        if now == last:
            return
        profiler = self._simprofile._ACTIVE
        if profiler is not None:
            from time import perf_counter
            t0 = perf_counter()
        self._last_advance = now
        # Invariant: every resident was last credited at ``last`` (launch
        # and retire both advance first), so the elapsed term is shared
        # and the device-level ``_last_advance`` stamp supersedes the
        # per-record ``last_update`` field while a kernel is resident
        # (the field is refreshed at retirement).
        elapsed = now - last
        vec = self._vec
        if vec is not None:
            vec.advance(elapsed)
        else:
            for record in self._running.values():
                lat = record.eff_latency
                if lat > 0:
                    progress = record.progress + elapsed / lat
                    record.progress = 1.0 if progress > 1.0 else progress
        if profiler is not None:
            profiler.add("progress_advance", perf_counter() - t0)

    def _regime_crossed(self, old_total: float, new_total: float) -> bool:
        """Whether a total-demand change can reach any resident's latency.

        The bandwidth term only applies while the effective total exceeds
        the budget, so a move entirely inside the under-budget region
        touches nothing; any move into, out of, or within the over-budget
        region dirties every record with positive demand.
        """
        if old_total == new_total:
            return False
        budget = self.exec_config.mem_bandwidth_budget
        return old_total > budget or new_total > budget

    def _dirty_after_mask_change(self, mask: CUMask,
                                 old_total: float) -> set[int]:
        """Exact dirty set after launching/retiring a kernel on ``mask``."""
        dirty: set[int] = set()
        cu_records = self._cu_records
        for cu in mask.cu_tuple:
            dirty |= cu_records[cu]
        fault = self._fault_demand
        if self._regime_crossed(old_total + fault,
                                self._total_demand + fault):
            dirty |= self._demand_ids
        return dirty

    def _commit_state_change(self, dirty: Optional[set[int]] = None) -> None:
        """Recompute affected rates and reschedule completions.

        ``dirty=None`` (and ``full_recompute`` mode) sweeps every
        resident.  While the engine is inside ``run()`` the commit is
        deferred: dirty sets union up and :meth:`_flush_commit` runs one
        recompute at the instant boundary.  No simulated time passes
        within an instant, so the rates recomputed at the boundary from
        the final state are the exact floats the last eager commit would
        have produced; the intermediate recomputes the eager path does
        are overwritten unread.
        """
        if self._defer and self.sim._running:
            self._pending = True
            if dirty is None:
                self._pending_full = True
            elif not self._pending_full:
                self._pending_dirty |= dirty
            return
        self._commit_now(dirty)

    def _flush_commit(self) -> None:
        """Engine flush hook: run the one deferred commit for the instant."""
        if not self._pending:
            return
        self._pending = False
        if self._pending_full:
            self._pending_full = False
            self._pending_dirty.clear()
            dirty = None
        else:
            dirty = self._pending_dirty
            self._pending_dirty = set()
            # Records both dirtied and retired within the instant are
            # gone from the resident set; drop their seq numbers.
            dirty &= self._running.keys()
        self._commit_now(dirty)

    def _commit_now(self, dirty: Optional[set[int]]) -> None:
        """The actual commit: recompute affected rates, advance the meter.

        ``dirty=None`` (and ``full_recompute`` mode) sweeps every
        resident.  A dirty set is replayed in launch order — the same
        relative order the full sweep visits — so both paths issue the
        identical sequence of ``schedule`` calls and the event seq
        numbers (the deterministic tie-breakers) coincide.
        """
        profiler = self._simprofile._ACTIVE
        if profiler is not None:
            from time import perf_counter
            t0 = perf_counter()
        running = self._running
        # Crossover to the full sweep once the dirty set covers at least
        # half the residents: sorted(dirty) + per-record dict lookups
        # cost more than the plain dict scan beyond that fraction (the
        # incremental path's win on the colo4/maskgen bench shapes was
        # negative at ~90% dirty).  Both paths visit the same records in
        # the same relative order, so the switch is bit-identical.
        if dirty is None or self.full_recompute \
                or (len(dirty) * 2 >= len(running)
                    and not self._force_incremental):
            self._recompute_rates(running.values())
        else:
            # Dirty entries are per-device seq numbers, so a plain int
            # sort replays them in launch order — the same relative
            # order the full sweep visits.  Singletons (the common case
            # for isolated launches) skip the sort machinery.
            if len(dirty) == 1:
                self._recompute_rates((running[next(iter(dirty))],))
            else:
                self._recompute_rates(
                    map(running.__getitem__, sorted(dirty)))
        self._commit_meter()
        if profiler is not None:
            profiler.add("rate_recompute", perf_counter() - t0)

    def _apply_occupied(self, per_se: tuple[int, ...], sign: int) -> None:
        """Fold one record's occupied-CU shape into the meter aggregates.

        All integer arithmetic, so the maintained ``busy``/``active SE``
        totals are exactly what a rescan of the resident set computes.
        """
        occupied = self._occupied_per_se
        cap = self.topology.cus_per_se
        for se, n in enumerate(per_se):
            if n == 0:
                continue
            old = occupied[se]
            new = old + n if sign > 0 else old - n
            occupied[se] = new
            self._busy_cus += ((new if new < cap else cap)
                               - (old if old < cap else cap))
            self._active_ses += (new > 0) - (old > 0)

    def _commit_meter(self) -> None:
        # Power follows *occupied* CUs (those actually holding workgroups),
        # capped at each SE's physical size when kernels overlap.  The
        # busy/active-SE totals are maintained incrementally on
        # launch/retire (integer arithmetic, so they are exact);
        # full-recompute mode keeps the original resident-set rescan as
        # the oracle.
        if self.full_recompute:
            topo = self.topology
            occupied = [0] * topo.num_se
            for record in self._running.values():
                for se, n in enumerate(record.occupied_per_se):
                    occupied[se] += n
            busy = sum(min(n, topo.cus_per_se) for n in occupied)
            active_ses = sum(1 for n in occupied if n > 0)
        else:
            busy = self._busy_cus
            active_ses = self._active_ses
        self.meter.advance(self.sim.now, busy, active_ses)

    def _recompute_rates(self, records: Iterable[KernelRecord]) -> None:
        vec = self._vec
        if vec is not None:
            self._recompute_rates_vec(records)
            return
        effective_latency = self._effective_latency
        schedule = self.sim.schedule
        now = self.sim.now
        for record in records:
            latency = effective_latency(record)
            event = record.completion_event
            if event is not None:
                if not event.cancelled and latency == record.eff_latency:
                    continue  # rate unchanged; completion still valid
                event.cancel()
            record.eff_latency = latency
            remaining = 1.0 - record.progress
            # Inlined schedule_in: delay is >= 0 by construction and
            # ``now + delay`` is the exact float schedule_in computes.
            delay = 0.0 if remaining <= _PROGRESS_EPS else remaining * latency
            record.completion_event = schedule(now + delay, record.complete_cb)

    def _recompute_rates_vec(self, records: Iterable[KernelRecord]) -> None:
        """Numpy-mode recompute: array progress, optional vector sweep.

        Small batches use the scalar latency formula per record (the
        vector sweep's fixed cost loses below ~16 records); large ones
        compute every slot's latency in one array pass.  Both read
        progress from the authoritative array and schedule completions
        in the records' iteration order, exactly like the scalar path.
        Fault latency scales stay on the scalar formula — the vector
        sweep does not model them.
        """
        vec = self._vec
        records = records if isinstance(records, list) else list(records)
        latencies = None
        if len(records) >= _VECTOR_MIN and self._fault_scale == 1.0 \
                and not self._fault_tag_scale:
            total_demand = self._total_demand
            if self._fault_demand > 0.0:
                total_demand = total_demand + self._fault_demand
            latencies = vec.latencies(self._residents, total_demand)
        effective_latency = self._effective_latency
        schedule = self.sim.schedule
        now = self.sim._now
        progress_arr = vec.progress
        lat_arr = vec.lat
        for record in records:
            if latencies is not None:
                latency = latencies[record.slot]
            else:
                latency = effective_latency(record)
            event = record.completion_event
            if event is not None:
                if not event.cancelled and latency == record.eff_latency:
                    continue  # rate unchanged; completion still valid
                event.cancel()
            record.eff_latency = latency
            lat_arr[record.slot] = latency
            # ``item()`` returns a builtin float: numpy scalars must not
            # leak into event times (their repr would poison the
            # canonical result JSON downstream).
            remaining = 1.0 - progress_arr.item(record.slot)
            # Inlined schedule_in: delay is >= 0 by construction and
            # ``now + delay`` is the exact float schedule_in computes.
            delay = 0.0 if remaining <= _PROGRESS_EPS else remaining * latency
            record.completion_event = schedule(now + delay, record.complete_cb)

    def sync_progress(self) -> None:
        """Scatter array-authoritative progress back into the records.

        In numpy mode the slot arrays hold the live progress values;
        call this before reading ``KernelRecord.progress`` directly
        (audits, tests, snapshots).  No-op in scalar mode.
        """
        vec = self._vec
        if vec is None:
            return
        progress = vec.progress
        for record in self._running.values():
            value = progress.item(record.slot)
            # The arrays defer the scalar path's 1.0 clamp (see
            # RateArrays.advance); apply it on the way out.
            record.progress = 1.0 if value > 1.0 else value

    def check_rate_invariant(self) -> None:
        """Assert every resident's cached rate matches a fresh recompute.

        The incremental path's correctness contract, verifiable at any
        quiescent point: skipped (non-dirty) records must already hold
        the exact latency a full sweep would assign them.
        """
        for record in self._running.values():
            fresh = self._effective_latency(record)
            if fresh != record.eff_latency:
                raise AssertionError(
                    f"kernel {record.launch.descriptor.name} "
                    f"(launch {record.launch.launch_id}): cached rate "
                    f"{record.eff_latency!r} != fresh {fresh!r}"
                )

    def resident_work_cu_seconds(self) -> float:
        """CU-seconds accumulated so far by the still-running kernels."""
        now = self.sim.now
        return sum(record.mask.count() * (now - record.start_time)
                   for record in self._running.values())

    def audit_state(self) -> list[str]:
        """Full structural self-audit at a quiescent point.

        Cross-checks every incrementally maintained structure (the
        CU→resident reverse index, the demand set, the occupied-CU meter
        aggregates, the counters, the cached rates) against a fresh
        rescan of the resident set, and balances the work-conservation
        ledger.  Returns human-readable violation strings (empty =
        consistent).  Safe to call at any time between events; does not
        change any simulation state beyond advancing the counters' time
        integrals to ``now``.
        """
        violations: list[str] = []
        running = self._running
        topo = self.topology
        self.sync_progress()

        # Pool-switch ledger: monotone non-negative, and cost implies
        # at least one switch.
        if self.pool_switches < 0 or self.pool_switch_cost_s < 0.0:
            violations.append(
                f"pool-switch ledger negative: {self.pool_switches} "
                f"switches, {self.pool_switch_cost_s} s")
        elif self.pool_switches == 0 and self.pool_switch_cost_s != 0.0:
            violations.append(
                f"pool-switch cost {self.pool_switch_cost_s} s accrued "
                "with zero switches")

        # Reverse index: CU -> resident seq numbers.
        for cu in range(topo.total_cus):
            expected = {seq for seq, rec in running.items()
                        if rec.mask.has(cu)}
            if self._cu_records[cu] != expected:
                violations.append(
                    f"device: CU {cu} reverse index "
                    f"{sorted(self._cu_records[cu])} != resident rescan "
                    f"{sorted(expected)}")

        # Demand set: seq numbers with positive bandwidth demand.
        expected_demand = {seq for seq, rec in running.items()
                           if rec.demand > 0.0}
        if self._demand_ids != expected_demand:
            violations.append(
                f"device: demand set {sorted(self._demand_ids)} != "
                f"rescan {sorted(expected_demand)}")

        # Counters vs the resident set (the Resource Monitor must agree
        # with the device about who is where).
        for cu in range(topo.total_cus):
            resident = sum(1 for rec in running.values()
                           if rec.mask.has(cu))
            if self.counters.count(cu) != resident:
                violations.append(
                    f"device: CU {cu} counter {self.counters.count(cu)} "
                    f"!= resident kernels {resident}")
        violations.extend(self.counters.audit())

        # Meter aggregates: occupied-CU shape of the resident set.
        occupied = [0] * topo.num_se
        for rec in running.values():
            for se, n in enumerate(rec.occupied_per_se):
                occupied[se] += n
        if occupied != self._occupied_per_se:
            violations.append(
                f"device: occupied-per-SE aggregate "
                f"{self._occupied_per_se} != rescan {occupied}")
        busy = sum(min(n, topo.cus_per_se) for n in occupied)
        active = sum(1 for n in occupied if n > 0)
        if busy != self._busy_cus:
            violations.append(
                f"device: busy-CU aggregate {self._busy_cus} != "
                f"rescan {busy}")
        if active != self._active_ses:
            violations.append(
                f"device: active-SE aggregate {self._active_ses} != "
                f"rescan {active}")

        # Total bandwidth demand: float-summed incrementally, so allow
        # accumulation noise; at idle it must be exactly zero (the
        # _complete path resets it).
        fresh_demand = sum(rec.demand for rec in running.values())
        if not running:
            if self._total_demand != 0.0:
                violations.append(
                    f"device: idle total demand {self._total_demand!r} "
                    "!= 0.0")
        elif not math.isclose(self._total_demand, fresh_demand,
                              rel_tol=1e-9, abs_tol=1e-12):
            violations.append(
                f"device: total demand {self._total_demand!r} drifted "
                f"from rescan {fresh_demand!r}")

        # Per-record sanity: progress stays a fraction.
        for seq, rec in running.items():
            if not 0.0 <= rec.progress <= 1.0:
                violations.append(
                    f"device: kernel seq {seq} progress "
                    f"{rec.progress!r} outside [0, 1]")

        # The incremental path's rate contract.
        try:
            self.check_rate_invariant()
        except AssertionError as exc:
            violations.append(f"device: rate invariant: {exc}")

        # Work conservation: the counters' CU-time integral must balance
        # the per-kernel ledger (retired work + live partial work).  The
        # two sides sum the same piecewise-constant integral in different
        # orders, so compare with a relative tolerance.
        self.counters.tick(self.sim.now)
        ledger = self.work_cu_seconds + self.resident_work_cu_seconds()
        integral = self.counters.assigned_cu_seconds
        if not math.isclose(integral, ledger, rel_tol=1e-6, abs_tol=1e-9):
            violations.append(
                f"device: work conservation broken — counters integral "
                f"{integral!r} CU-s != kernel ledger {ledger!r} CU-s")
        return violations

    def _complete(self, seq_no: int) -> None:
        record = self._running.get(seq_no)
        if record is None:
            return
        self._advance_progress()
        if self._vec is not None:
            self._vec.free(record.slot)
            record.slot = -1
        record.progress = 1.0
        record.last_update = self.sim.now
        record.end_time = self.sim.now
        del self._running[seq_no]
        self.work_cu_seconds += (
            record.mask.count() * (record.end_time - record.start_time))
        self.counters.tick(self.sim.now)
        self.counters.release(record.mask)
        cu_records = self._cu_records
        for cu in record.mask.cu_tuple:
            cu_records[cu].discard(seq_no)
        self._demand_ids.discard(seq_no)
        self._apply_occupied(record.occupied_per_se, -1)
        old_total = self._total_demand
        self._total_demand -= record.demand
        if not self._running:
            self._total_demand = 0.0  # absorb float drift at idle points
        self._commit_state_change(
            self._dirty_after_mask_change(record.mask, old_total))
        self.kernels_completed += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.kernel_retired(record)
        if record.on_complete is not None:
            record.on_complete(record)
        record.done.fire(record)
