"""The simulated GPU device: rate-sharing kernel execution.

:class:`GpuDevice` owns the set of *running* kernels.  Each kernel's
instantaneous rate is derived from the dispatcher timing model
(:mod:`repro.gpu.exec_model`) given its CU mask, the current per-CU
residency, and the device-wide memory-bandwidth pool.  Whenever the
resident set changes (a launch or a retirement), every running kernel's
progress is advanced at its old rate and its completion event is
rescheduled at its new rate — an exact piecewise-constant-rate model, the
standard processor-sharing construction for discrete-event simulators.

The recompute path is the simulator's hot loop, so per-kernel invariants
(wave splits, isolated-latency floor, bandwidth demand) are cached at
launch, the per-CU residency is read through a zero-copy view, and a
kernel whose rate did not change keeps its already-scheduled completion
event.  The slow-path formulas in :mod:`repro.gpu.exec_model` remain the
single source of truth; the test suite asserts the cached fast path
matches them.

The device also owns the per-CU kernel counters (the *Resource Monitor*
KRISP's allocator reads) and the energy meter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.exec_model import (
    ExecutionModelConfig,
    bandwidth_demand,
    isolated_latency,
    split_workgroups,
)
from repro.gpu.kernel import KernelLaunch
from repro.gpu.power import EnergyMeter, PowerModel
from repro.gpu.topology import GpuTopology
from repro.sim.engine import Event, Simulator
from repro.sim.process import Signal

__all__ = ["GpuDevice", "KernelRecord"]

# Progress is a fraction in [0, 1]; treat anything this close to done as
# done to absorb float accumulation across many rate changes.
_PROGRESS_EPS = 1e-9


@dataclass
class KernelRecord:
    """Bookkeeping for one running (or completed) kernel."""

    launch: KernelLaunch
    mask: CUMask
    done: Signal
    start_time: float
    progress: float = 0.0
    eff_latency: float = 0.0
    last_update: float = 0.0
    end_time: Optional[float] = None
    completion_event: Optional[Event] = field(default=None, repr=False)
    on_complete: Optional[Callable[["KernelRecord"], None]] = field(
        default=None, repr=False
    )
    # Launch-time invariants cached for the rate recompute hot path.
    floor_latency: float = field(default=0.0, repr=False)
    demand: float = field(default=0.0, repr=False)
    se_shares: tuple[tuple[int, float, tuple[int, ...]], ...] = field(
        default=(), repr=False
    )
    occupied_per_se: tuple[int, ...] = field(default=(), repr=False)


class GpuDevice:
    """A whole simulated GPU: execution, counters, and energy."""

    def __init__(
        self,
        sim: Simulator,
        topology: Optional[GpuTopology] = None,
        exec_config: Optional[ExecutionModelConfig] = None,
        power_model: Optional[PowerModel] = None,
        record_trace: bool = False,
    ) -> None:
        self.sim = sim
        self.topology = topology or GpuTopology.mi50()
        self.exec_config = exec_config or ExecutionModelConfig()
        self.power_model = power_model or PowerModel()
        self.counters = CUKernelCounters(self.topology)
        self.meter = EnergyMeter(self.power_model, self.topology)
        self.record_trace = record_trace
        self.trace: list[KernelRecord] = []
        self.kernels_completed = 0
        self._running: dict[int, KernelRecord] = {}
        self._residents = self.counters.counts_view()
        self._total_demand = 0.0
        # Fault-injection state (repro.faults): a global straggler
        # multiplier, per-stream-tag multipliers, and external bandwidth
        # pressure.  All default to the no-fault identity; the hot path
        # guards on those identities so a fault-free run computes the
        # exact same float sequence as before the fault layer existed.
        self._fault_scale = 1.0
        self._fault_tag_scale: dict[str, float] = {}
        self._fault_demand = 0.0

    # -- public API -------------------------------------------------------
    def launch(
        self,
        launch: KernelLaunch,
        mask: CUMask,
        on_complete: Optional[Callable[[KernelRecord], None]] = None,
    ) -> KernelRecord:
        """Start executing ``launch`` on the CUs in ``mask``.

        Returns the kernel's record; its ``done`` signal fires at
        retirement.  The mask must be non-empty and belong to this device.
        """
        if mask.topology != self.topology:
            raise ValueError("mask topology does not match device")
        if mask.is_empty():
            raise ValueError(
                f"kernel {launch.descriptor.name}: cannot launch on an "
                "empty CU mask"
            )
        self._advance_progress()
        self.counters.assign(mask)
        record = KernelRecord(
            launch=launch,
            mask=mask,
            done=Signal(self.sim, name=f"kernel-{launch.launch_id}.done"),
            start_time=self.sim.now,
            last_update=self.sim.now,
            on_complete=on_complete,
        )
        self._cache_invariants(record)
        self._total_demand += record.demand
        self._running[launch.launch_id] = record
        if self.record_trace:
            self.trace.append(record)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.kernel_launched(record)
        self._commit_state_change()
        return record

    def busy(self) -> bool:
        """Whether any kernel is currently executing."""
        return bool(self._running)

    def running_count(self) -> int:
        """Number of kernels currently executing."""
        return len(self._running)

    @property
    def bandwidth_demand(self) -> float:
        """Total bandwidth demand of the resident kernels (budget units)."""
        return self._total_demand

    def finalize(self) -> None:
        """Close the energy-integration segment at the current time.

        Call after (or during) a run before reading
        ``meter.energy_joules``.
        """
        self._advance_progress()
        self._commit_meter()

    # -- fault injection ----------------------------------------------------
    @property
    def fault_demand(self) -> float:
        """External (injected) bandwidth demand, in budget units."""
        return self._fault_demand

    def set_fault_latency_scale(self, scale: float,
                                tag: Optional[str] = None) -> None:
        """Multiply kernel latencies by ``scale`` from now on.

        ``tag=None`` scales every kernel (a device-wide straggler
        window); a stream tag scales only that worker's kernels.  Pass
        ``1.0`` to end the window.  Running kernels are credited with
        progress at their old rate and rescheduled at the new one.
        """
        if scale <= 0:
            raise ValueError("latency scale must be > 0")
        self._advance_progress()
        if tag is None:
            self._fault_scale = scale
        elif scale == 1.0:
            self._fault_tag_scale.pop(tag, None)
        else:
            self._fault_tag_scale[tag] = scale
        self._commit_state_change()

    def add_fault_bandwidth_demand(self, demand: float) -> None:
        """Inject (or with a negative value, retire) external bandwidth
        pressure, throttling resident memory-bound kernels."""
        self._advance_progress()
        self._fault_demand += demand
        if self._fault_demand < 0.0:
            self._fault_demand = 0.0
        self._commit_state_change()

    # -- internals ----------------------------------------------------------
    def _cache_invariants(self, record: KernelRecord) -> None:
        """Precompute everything about (kernel, mask) the hot path needs."""
        desc = record.launch.descriptor
        record.floor_latency = isolated_latency(desc, record.mask,
                                                self.exec_config)
        record.demand = bandwidth_demand(desc, record.mask)
        per_se = record.mask.per_se_counts()
        shares = split_workgroups(desc.workgroups, per_se)
        topo = self.topology
        se_shares = []
        occupied = [0] * topo.num_se
        for se, (share, cus) in enumerate(zip(shares, per_se)):
            if cus == 0:
                continue
            se_cus = tuple(cu for cu in record.mask.cu_tuple
                           if topo.se_of(cu) == se)
            # Precompute share * wg_duration / occupancy: dividing by the
            # SE's effective capacity yields its shared execution time.
            weight = share * desc.wg_duration / desc.occupancy
            se_shares.append((se, weight, se_cus))
            # CUs that actually hold workgroups (for the power model): a
            # wide mask under a small grid leaves most allocated CUs idle.
            occupied[se] = min(cus, -(-share // desc.occupancy))
        record.se_shares = tuple(se_shares)
        record.occupied_per_se = tuple(occupied)

    def _effective_latency(self, record: KernelRecord) -> float:
        """Latency under current residency and bandwidth (fast path)."""
        config = self.exec_config
        residents = self._residents
        alpha = config.intra_cu_alpha
        shared = 0.0
        contended = False
        for _se, weight, se_cus in record.se_shares:
            capacity = 0.0
            for cu in se_cus:
                r = residents[cu]
                if r > 1:
                    contended = True
                    capacity += (1.0 / r) ** alpha
                else:
                    capacity += 1.0
            se_time = weight / capacity
            if se_time > shared:
                shared = se_time
        desc = record.launch.descriptor
        latency = record.floor_latency
        if contended:
            candidate = desc.flat_time + shared + config.launch_overhead
            if candidate > latency:
                latency = candidate
        total_demand = self._total_demand
        if self._fault_demand > 0.0:
            total_demand = total_demand + self._fault_demand
        if (total_demand > config.mem_bandwidth_budget
                and record.demand > 0.0):
            bw_share = config.mem_bandwidth_budget / total_demand
            throttle = (1.0 - desc.mem_intensity) + desc.mem_intensity * bw_share
            latency /= throttle
        if self._fault_scale != 1.0 or self._fault_tag_scale:
            latency *= self._fault_scale * self._fault_tag_scale.get(
                record.launch.tag, 1.0)
        return latency

    def _advance_progress(self) -> None:
        """Credit every running kernel with work done since last update."""
        now = self.sim.now
        for record in self._running.values():
            if record.eff_latency > 0:
                record.progress += (now - record.last_update) / record.eff_latency
                if record.progress > 1.0:
                    record.progress = 1.0
            record.last_update = now

    def _commit_state_change(self) -> None:
        """Recompute all rates and reschedule completions after a change."""
        self._recompute_rates()
        self._commit_meter()

    def _commit_meter(self) -> None:
        # Power follows *occupied* CUs (those actually holding workgroups),
        # capped at each SE's physical size when kernels overlap.
        topo = self.topology
        occupied = [0] * topo.num_se
        for record in self._running.values():
            for se, n in enumerate(record.occupied_per_se):
                occupied[se] += n
        busy = sum(min(n, topo.cus_per_se) for n in occupied)
        active_ses = sum(1 for n in occupied if n > 0)
        self.meter.advance(self.sim.now, busy, active_ses)

    def _recompute_rates(self) -> None:
        now = self.sim.now
        for record in self._running.values():
            latency = self._effective_latency(record)
            if (record.completion_event is not None
                    and not record.completion_event.cancelled
                    and latency == record.eff_latency):
                continue  # rate unchanged; scheduled completion still valid
            if record.completion_event is not None:
                record.completion_event.cancel()
            record.eff_latency = latency
            remaining = 1.0 - record.progress
            delay = 0.0 if remaining <= _PROGRESS_EPS else remaining * latency
            record.completion_event = self.sim.schedule_in(
                delay,
                lambda lid=record.launch.launch_id: self._complete(lid),
            )

    def _complete(self, launch_id: int) -> None:
        record = self._running.get(launch_id)
        if record is None:
            return
        self._advance_progress()
        record.progress = 1.0
        record.end_time = self.sim.now
        del self._running[launch_id]
        self.counters.release(record.mask)
        self._total_demand -= record.demand
        if not self._running:
            self._total_demand = 0.0  # absorb float drift at idle points
        self._commit_state_change()
        self.kernels_completed += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.kernel_retired(record)
        if record.on_complete is not None:
            record.on_complete(record)
        record.done.fire(record)
