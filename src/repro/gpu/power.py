"""CU/SE-level power and energy model.

The paper measures board power with ``rocm-smi`` and reports energy per
inference (Fig. 13c) plus the ~8% single-kernel energy saving of the
*Conserved* distribution policy (Fig. 8).  Both effects come from which
CUs and shader engines are busy, so the model is:

    P = P_static + busy_SEs * P_se + busy_CUs * P_cu_busy
        + idle_CUs * P_cu_idle

integrated piecewise-constantly between simulation events.  The MI50
preset lands at ~300 W fully busy and ~75 W idle, in line with the part's
TDP; absolute watts only shift energy numbers by a constant, the paper's
*relative* savings come from the busy-set differences.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.topology import GpuTopology

__all__ = ["PowerModel", "EnergyMeter"]


@dataclass(frozen=True)
class PowerModel:
    """Static power parameters, in watts.

    The split (large static share, modest per-CU dynamic power) reflects
    how datacentre GPUs behave under ``rocm-smi``: board, HBM, and
    infrastructure power dominate, so masking CUs off saves real but
    bounded power — the regime in which the paper's 29-33% energy-per-
    inference savings arise.
    """

    p_static: float = 140.0
    p_se_active: float = 9.0
    p_cu_busy: float = 1.9
    p_cu_idle: float = 0.5

    def __post_init__(self) -> None:
        for name in ("p_static", "p_se_active", "p_cu_busy", "p_cu_idle"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def power(self, topology: GpuTopology, busy_cus: int,
              active_ses: int) -> float:
        """Instantaneous board power for the given busy set."""
        if busy_cus > topology.total_cus:
            raise ValueError("busy_cus exceeds device size")
        if active_ses > topology.num_se:
            raise ValueError("active_ses exceeds device size")
        idle_cus = topology.total_cus - busy_cus
        return (self.p_static
                + active_ses * self.p_se_active
                + busy_cus * self.p_cu_busy
                + idle_cus * self.p_cu_idle)

    def peak_power(self, topology: GpuTopology) -> float:
        """Power with every CU busy."""
        return self.power(topology, topology.total_cus, topology.num_se)

    def idle_power(self, topology: GpuTopology) -> float:
        """Power with the device idle."""
        return self.power(topology, 0, 0)


class EnergyMeter:
    """Integrates energy between piecewise-constant power segments.

    The device calls :meth:`advance` with the *current* busy set right
    before any state change; the meter accumulates
    ``power(previous segment) * dt``.
    """

    def __init__(self, model: PowerModel, topology: GpuTopology) -> None:
        self.model = model
        self.topology = topology
        self.energy_joules = 0.0
        self.busy_cu_seconds = 0.0
        self._last_time = 0.0
        self._busy_cus = 0
        self._active_ses = 0
        # The busy-set space is tiny (total_cus × num_se levels) and the
        # meter advances on every device state change, so the power
        # formula is memoised per (busy, active) pair.  The cached float
        # is the exact value ``model.power`` computes.
        self._power_cache: dict[tuple[int, int], float] = {}

    def advance(self, now: float, busy_cus: int, active_ses: int) -> None:
        """Close the segment ending at ``now`` and open a new one."""
        if now < self._last_time:
            raise ValueError("time moved backwards")
        dt = now - self._last_time
        if dt > 0:
            key = (self._busy_cus, self._active_ses)
            power = self._power_cache.get(key)
            if power is None:
                power = self.model.power(self.topology, *key)
                self._power_cache[key] = power
            self.energy_joules += power * dt
            self.busy_cu_seconds += self._busy_cus * dt
        self._last_time = now
        self._busy_cus = busy_cus
        self._active_ses = active_ses

    def utilization(self, elapsed: float) -> float:
        """Average fraction of CUs busy over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_cu_seconds / (elapsed * self.topology.total_cus)
