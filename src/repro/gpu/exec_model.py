"""Dispatcher-level kernel timing model.

This module is the analytic heart of the simulator.  It models how AMD
GPUs schedule a kernel's workgroups: the grid is split *equally across the
shader engines that have at least one enabled CU* and each SE's workload
manager then fills its enabled CUs (paper Section IV-C).  The resulting
latency formula,

    latency = flat_time
              + max_se ceil(WGs_se / (cus_se * occupancy)) * wg_duration,

where ``flat_time`` is the kernel's CU-count-independent
(bandwidth/serial) share, produces the first-order effects the paper
measures:

* **minCU plateaus** — latency is flat while the bottleneck wave count is
  unchanged, so each kernel has a smallest CU count matching full-GPU
  latency (the paper's per-kernel right-size, Fig. 4/6);
* **Packed-policy spikes at 16/31/46 active CUs** — a lone CU in a
  freshly-opened SE receives an equal share of the grid and bottlenecks it
  (Fig. 8);
* **Distributed-policy steps at 15/11/7 active CUs** — the per-SE ceil
  makes 15 CUs behave like 12, 11 like 8, 7 like 4 (Fig. 8);
* **shallow restriction curves** — only the compute share grows as CUs
  are removed, which is what lets real models co-locate far beyond their
  kneepoints (Table IV).

When several kernels share CUs, each CU time-slices its residents; a
kernel's *effective* CU capacity is the sum over its CUs of
``(1/residents)^alpha`` where ``alpha >= 1`` adds super-linear intra-CU
interference (cache and scheduler thrash).  A device-wide memory-bandwidth
budget further throttles memory-intensive kernels under co-location.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.gpu.cu_mask import CUMask
from repro.gpu.kernel import KernelDescriptor

__all__ = [
    "ExecutionModelConfig",
    "split_workgroups",
    "isolated_latency",
    "effective_cus_per_se",
    "contended_latency",
    "memory_throttle",
    "bandwidth_demand",
]


@dataclass(frozen=True)
class ExecutionModelConfig:
    """Tunable constants of the timing model.

    Attributes
    ----------
    intra_cu_alpha:
        Exponent on a kernel's per-CU time share.  1.0 is perfectly fair
        time slicing; values above 1 penalise co-residency (the contention
        the paper observes with MPS Default at 4 workers).
    launch_overhead:
        Fixed per-kernel dispatch cost (driver + command processor), in
        seconds.  Bounds the benefit of shrinking already-short kernels.
    mem_bandwidth_budget:
        Device memory bandwidth as a dimensionless budget shared by all
        resident kernels (1.0 = saturated by one full-GPU streaming
        kernel).
    """

    intra_cu_alpha: float = 1.15
    launch_overhead: float = 4e-6
    mem_bandwidth_budget: float = 1.0

    def __post_init__(self) -> None:
        if self.intra_cu_alpha < 1.0:
            raise ValueError("intra_cu_alpha must be >= 1.0")
        if self.launch_overhead < 0:
            raise ValueError("launch_overhead must be >= 0")
        if self.mem_bandwidth_budget <= 0:
            raise ValueError("mem_bandwidth_budget must be > 0")


def split_workgroups(workgroups: int, per_se_cus: Sequence[int]) -> list[int]:
    """Split a grid equally across the SEs that have any enabled CU.

    AMD hardware distributes thread blocks evenly over shader engines and
    only then schedules them to CUs inside each SE; SEs whose mask bits are
    all clear receive nothing.  The remainder is assigned deterministically
    to the lowest-numbered active SEs.
    """
    if workgroups < 0:
        raise ValueError("workgroups must be >= 0")
    active = [se for se, cus in enumerate(per_se_cus) if cus > 0]
    shares = [0] * len(per_se_cus)
    if not active or workgroups == 0:
        return shares
    base, remainder = divmod(workgroups, len(active))
    for rank, se in enumerate(active):
        shares[se] = base + (1 if rank < remainder else 0)
    return shares


def isolated_latency(
    desc: KernelDescriptor,
    mask: CUMask,
    config: ExecutionModelConfig,
) -> float:
    """Latency of one kernel running alone under ``mask``.

    Applies the per-SE wave-quantised formula plus the fixed launch
    overhead.  An empty mask is invalid: the dispatcher can never schedule
    such a kernel.
    """
    if mask.is_empty():
        raise ValueError(f"kernel {desc.name}: empty CU mask")
    per_se = mask.per_se_counts()
    shares = split_workgroups(desc.workgroups, per_se)
    worst_waves = max(
        math.ceil(share / (cus * desc.occupancy))
        for share, cus in zip(shares, per_se)
        if cus > 0
    )
    compute_time = worst_waves * desc.wg_duration
    return desc.flat_time + compute_time + config.launch_overhead


def effective_cus_per_se(
    mask: CUMask,
    residents_per_cu: Mapping[int, int],
    alpha: float,
) -> list[float]:
    """Effective CU capacity available to one kernel in each SE.

    ``residents_per_cu`` maps global CU index to the number of kernels
    currently assigned there (including this one).  Each CU contributes
    ``(1/residents)**alpha`` of a CU.
    """
    topo = mask.topology
    capacity = [0.0] * topo.num_se
    for cu in mask.cus():
        residents = max(1, residents_per_cu.get(cu, 1))
        capacity[topo.se_of(cu)] += (1.0 / residents) ** alpha
    return capacity


def contended_latency(
    desc: KernelDescriptor,
    mask: CUMask,
    residents_per_cu: Mapping[int, int],
    config: ExecutionModelConfig,
) -> float:
    """Latency under CU sharing, before memory-bandwidth throttling.

    Uses the wave-quantised isolated formula as a floor (hardware cannot
    beat its own quantisation) and the continuous shared-capacity formula
    when contention makes it slower.
    """
    floor = isolated_latency(desc, mask, config)
    per_se = mask.per_se_counts()
    shares = split_workgroups(desc.workgroups, per_se)
    capacity = effective_cus_per_se(mask, residents_per_cu,
                                    config.intra_cu_alpha)
    shared = 0.0
    for share, cus, cap in zip(shares, per_se, capacity):
        if cus == 0:
            continue
        se_time = (share / (cap * desc.occupancy)) * desc.wg_duration
        shared = max(shared, se_time)
    return max(floor, desc.flat_time + shared + config.launch_overhead)


def bandwidth_demand(desc: KernelDescriptor, mask: CUMask) -> float:
    """Fraction of peak memory bandwidth this kernel asks for.

    A kernel streaming from memory on every CU (``mem_intensity == 1`` with
    a full mask) demands the whole budget; smaller partitions or more
    compute-bound kernels demand proportionally less.
    """
    return desc.mem_intensity * mask.count() / mask.topology.total_cus


def memory_throttle(
    desc: KernelDescriptor,
    own_demand: float,
    total_demand: float,
    config: ExecutionModelConfig,
) -> float:
    """Rate multiplier in (0, 1] from memory-bandwidth sharing.

    When the sum of all resident kernels' demands exceeds the budget, the
    memory-bound fraction of each kernel slows by the oversubscription
    ratio; the compute-bound fraction is unaffected (roofline-style
    interpolation).
    """
    if total_demand <= config.mem_bandwidth_budget or own_demand == 0.0:
        return 1.0
    bw_share = config.mem_bandwidth_budget / total_demand
    return (1.0 - desc.mem_intensity) + desc.mem_intensity * bw_share
