"""Emulation-bracket audit: the Section V-B correction and mask laws.

Replays the fig12 measurement — the four latencies of the paper's
correction — and checks it as a set of identities rather than a chart:

* the emulation overhead ``L_over = L_emu(Base) - L_real(Base)`` is
  non-negative (the bracket can only cost time);
* the corrected latency satisfies the paper's identity
  ``L_real(KRISP) = L_emu(KRISP) - (L_emu(Base) - L_real(Base))``
  exactly, and lands within 5% of the directly simulated native-KRISP
  latency (the cross-validation only a simulator can perform);
* the bracket accounting balances: exactly two barrier packets per
  kernel launched;
* every kernel dispatched on the emulated stream ran strictly inside
  the queue mask applied for it (recorded at IOCTL retirement via
  ``EmulatedKernelScopedStream(record_masks=True)``, matched in order
  against the device's kernel trace), and no applied mask was empty.
"""

from __future__ import annotations

import math
from typing import Any

from repro.core.krisp import KrispConfig, KrispSystem
from repro.gpu.device import GpuDevice
from repro.models.zoo import get_model
from repro.profiling.kernel_profiler import build_database
from repro.runtime.emulation import (
    EmulatedKernelScopedStream,
    FullGpuAllocator,
    corrected_latency,
    emulation_overhead,
)
from repro.runtime.hsa import HsaRuntime
from repro.runtime.stream import Stream
from repro.sim.engine import Simulator

__all__ = ["check_emulation_correction"]

#: The fig12 benchmark's pinned recovery tolerance.
_CORRECTION_TOL = 0.05


def _run_pass(make_stream, model, passes, record_trace=False):
    sim = Simulator()
    device = GpuDevice(sim, record_trace=record_trace)
    stream = make_stream(sim, device)
    for _ in range(passes):
        for descriptor in model.trace(32):
            stream.launch_kernel(descriptor)
    sim.run()
    return sim.now / passes, stream, device


def check_emulation_correction(
    model_name: str = "squeezenet", passes: int = 2,
) -> tuple[list[str], dict[str, Any]]:
    """Run the four fig12 passes and audit the correction identities."""
    model = get_model(model_name)
    database = build_database(model.trace(32))

    def native_base(sim, device):
        return Stream(HsaRuntime(sim, device))

    def emu_base(sim, device):
        return EmulatedKernelScopedStream(
            HsaRuntime(sim, device), allocator=FullGpuAllocator())

    def emu_krisp(sim, device):
        system = KrispSystem(sim, device, database,
                             config=KrispConfig(overlap_limit=0))
        # Built directly (rather than via create_stream) to switch on
        # mask recording for the audit below.
        return EmulatedKernelScopedStream(
            system.runtime, allocator=system.allocator,
            sizer=system.rightsizer, config=system.emulation_config,
            record_masks=True)

    def native_krisp(sim, device):
        system = KrispSystem(sim, device, database,
                             config=KrispConfig(overlap_limit=0))
        return system.create_stream()

    l_real_base, _, _ = _run_pass(native_base, model, passes)
    l_emu_base, _, _ = _run_pass(emu_base, model, passes)
    l_emu_krisp, emu_stream, emu_device = _run_pass(
        emu_krisp, model, passes, record_trace=True)
    l_native_krisp, _, _ = _run_pass(native_krisp, model, passes)

    violations: list[str] = []

    # The correction: non-negative overhead, exact identity, recovery.
    try:
        l_over = emulation_overhead(l_emu_base, l_real_base)
    except ValueError as exc:
        return ([f"{model_name}: {exc}"],
                {"l_real_base": l_real_base, "l_emu_base": l_emu_base})
    corrected = corrected_latency(l_emu_krisp, l_over)
    identity = max(0.0, l_emu_krisp - (l_emu_base - l_real_base))
    if not math.isclose(corrected, identity, rel_tol=1e-12, abs_tol=1e-15):
        violations.append(
            f"{model_name}: correction identity broken — corrected "
            f"{corrected!r} != L_emu_krisp - L_over = {identity!r}")
    error = abs(corrected - l_native_krisp) / l_native_krisp
    if error >= _CORRECTION_TOL:
        violations.append(
            f"{model_name}: corrected latency {corrected:.6f}s misses the "
            f"native KRISP latency {l_native_krisp:.6f}s by "
            f"{error:.1%} (tolerance {_CORRECTION_TOL:.0%})")

    # Bracket accounting: two barrier packets per kernel.
    expected_kernels = model.kernel_count * passes
    if emu_stream.kernels_launched != expected_kernels:
        violations.append(
            f"{model_name}: stream launched {emu_stream.kernels_launched} "
            f"kernels, expected {expected_kernels}")
    if emu_stream.barriers_injected != 2 * emu_stream.kernels_launched:
        violations.append(
            f"{model_name}: {emu_stream.barriers_injected} barriers for "
            f"{emu_stream.kernels_launched} kernels (expected 2 per kernel)")

    # Mask law: each dispatched kernel ran inside the mask applied for
    # it.  Per-stream B1 serialisation orders dispatches one-to-one with
    # IOCTL retirements, so the device trace and the applied-mask log
    # line up by index.
    applied = emu_stream.masks_applied
    trace = emu_device.trace
    if len(applied) != expected_kernels or len(trace) != expected_kernels:
        violations.append(
            f"{model_name}: recorded {len(applied)} applied masks and "
            f"{len(trace)} dispatches for {expected_kernels} kernels")
    for index, (mask, record) in enumerate(zip(applied, trace)):
        if mask.is_empty():
            violations.append(
                f"{model_name}: kernel {index} had an empty queue mask")
        if record.mask.bits & ~mask.bits:
            violations.append(
                f"{model_name}: kernel {index} "
                f"({record.launch.descriptor.name}) dispatched on CUs "
                "outside its applied queue mask")

    details = {
        "l_real_base": l_real_base,
        "l_over": l_over,
        "l_emu_krisp": l_emu_krisp,
        "corrected": corrected,
        "l_native_krisp": l_native_krisp,
        "recovery_error": error,
        "kernels": expected_kernels,
    }
    return violations, details
