"""Check results and reports for the conservation-law audit subsystem.

Every checker in :mod:`repro.check` returns a list of human-readable
violation strings (empty = clean); the runner wraps each into a
:class:`CheckResult` and collects them into a :class:`CheckReport` the
CLI can print or serialise.  The JSON payload is schema-versioned like
the bench rows, so downstream tooling can detect format changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["CHECK_SCHEMA", "CheckResult", "CheckReport"]

#: Bump when the JSON layout of a report changes shape.
CHECK_SCHEMA = 1


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one named check."""

    name: str
    passed: bool
    violations: tuple[str, ...] = ()
    details: dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "passed": self.passed,
            "violations": list(self.violations),
            "details": self.details,
            "wall_s": round(self.wall_s, 3),
        }


@dataclass
class CheckReport:
    """An ordered collection of check results."""

    results: list[CheckResult] = field(default_factory=list)

    def add(self, result: CheckResult) -> None:
        self.results.append(result)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(result.passed for result in self.results)

    @property
    def violations(self) -> list[str]:
        """Every violation across all checks, prefixed with its check."""
        return [f"{result.name}: {violation}"
                for result in self.results
                for violation in result.violations]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": CHECK_SCHEMA,
            "ok": self.ok,
            "checks": len(self.results),
            "failed": sum(1 for r in self.results if not r.passed),
            "results": [result.to_dict() for result in self.results],
        }

    def summary_lines(self) -> list[str]:
        """One line per check plus a final tally (CLI output shape)."""
        lines = []
        for result in self.results:
            status = "ok" if result.passed else "FAIL"
            lines.append(
                f"  {status:4s} {result.name:<28s} "
                f"{result.wall_s:6.2f}s"
                + (f"  ({len(result.violations)} violations)"
                   if result.violations else ""))
            for violation in result.violations:
                lines.append(f"         - {violation}")
        failed = sum(1 for r in self.results if not r.passed)
        lines.append(
            f"{len(self.results)} checks, {failed} failed, "
            f"{sum(len(r.violations) for r in self.results)} violations")
        return lines
