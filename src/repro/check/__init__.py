"""Conservation-law audit subsystem.

The simulator's credibility rests on invariants no single unit test
states end to end: work is conserved between the per-CU counters and
the per-kernel ledger, every request admission is disposed of exactly
once, Algorithm 1 masks obey the floor/cap/shape/overlap laws, the
emulation correction is the identity the paper claims, and every
execution mode (incremental vs full recompute, serial vs pooled,
cached vs fresh) produces byte-identical results.  This package checks
all of them on demand — ``krisp-repro check`` — and self-tests the
checkers by seeding deliberate faults (``--mutate-smoke``).
"""

from repro.check.attribution import check_attribution_conservation
from repro.check.invariants import (
    MaskLawChecker,
    request_conservation,
    run_device_program,
    run_mask_program,
)
from repro.check.report import CHECK_SCHEMA, CheckReport, CheckResult
from repro.check.runner import (
    DEFAULT_SCENARIOS,
    available_checks,
    run_checks,
    run_mutate_smoke,
)

__all__ = [
    "CHECK_SCHEMA",
    "CheckReport",
    "CheckResult",
    "DEFAULT_SCENARIOS",
    "MaskLawChecker",
    "available_checks",
    "check_attribution_conservation",
    "request_conservation",
    "run_checks",
    "run_device_program",
    "run_mask_program",
    "run_mutate_smoke",
]
