"""Differential replays of the pinned bench scenarios.

Determinism is the simulator's load-bearing property: the incremental
rate recompute, the process-pool sweep, and the content-addressed cache
all promise *byte-identical* results against their slower counterparts.
Each checker here replays one pinned scenario (from
:mod:`repro.bench.scenarios`) through two execution paths and compares
:func:`repro.exp.cache.result_hash` digests:

``modes``
    incremental dirty-set recompute vs the ``REPRO_FULL_RECOMPUTE=1``
    full-sweep oracle (reusing the bench runner's mode toggling).
``pool``
    serial in-process sweep (``jobs=1``) vs a two-process pool over the
    scenario cell plus a seed-perturbed sibling, cache off.
``cache``
    fresh computation vs a result round-tripped through a throwaway
    :class:`~repro.exp.cache.ResultCache` (also exercising the atomic
    write path end to end).
``invariants``
    one audited run: the experiment's ``audit`` hook collects the
    device's structural self-audit and the request-conservation
    identity at end of run.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import replace
from pathlib import Path
from typing import Any

from repro.bench.runner import run_scenario
from repro.bench.scenarios import SCENARIOS, Scenario
from repro.check.invariants import request_conservation
from repro.exp.cache import ResultCache, cached_run_experiment, result_hash
from repro.exp.sweep import run_sweep
from repro.server.experiment import run_experiment
from repro.server.options import RunOptions

__all__ = [
    "check_allocation_modes",
    "check_cache_replay",
    "check_experiment_invariants",
    "check_pool_modes",
    "check_recompute_modes",
]


def _scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from "
            f"{sorted(SCENARIOS)}") from None


def _faults(scenario: Scenario, config):
    return (scenario.faults_for(config)
            if scenario.faults_for is not None else None)


def check_recompute_modes(name: str) -> tuple[list[str], dict[str, Any]]:
    """Incremental vs full-recompute result hashes for one scenario."""
    rows = {mode: run_scenario(name, mode)
            for mode in ("incremental", "full")}
    details = {mode: row.result_hash for mode, row in rows.items()}
    if rows["incremental"].result_hash != rows["full"].result_hash:
        return ([
            f"{name}: incremental hash {rows['incremental'].result_hash} "
            f"!= full-recompute hash {rows['full'].result_hash}"
        ], details)
    return [], details


def check_allocation_modes(name: str, allocation: str,
                           sizing: str = "static"
                           ) -> tuple[list[str], dict[str, Any]]:
    """Incremental vs full recompute under a non-default allocation.

    The pinned ``modes`` check replays a scenario's frozen ``execute``
    closure, which cannot change allocation policy — so this check
    rebuilds the cell with the requested ``allocation``/``sizing`` and
    runs it through both recompute modes directly, asserting the
    bit-identity contract holds for the new policies too.  The run is
    audited (device self-audit + request conservation) on the
    incremental pass.
    """
    from repro.bench.runner import _env

    scenario = _scenario(name)
    if scenario.config is None:
        raise ValueError(f"scenario {name!r} has no experiment config")
    config = replace(scenario.config, allocation=allocation, sizing=sizing)
    faults = _faults(scenario, config)
    violations: list[str] = []
    hashes: dict[str, str] = {}

    def audit(setup, injector) -> None:
        violations.extend(setup.device.audit_state())
        violations.extend(request_conservation(setup, injector))

    for mode in ("incremental", "full"):
        with _env(REPRO_RECOMPUTE=mode):
            result = run_experiment(
                config,
                RunOptions(faults=faults, guard=scenario.guard,
                           audit=audit if mode == "incremental" else None))
        hashes[mode] = result_hash(result)
    if hashes["incremental"] != hashes["full"]:
        violations.append(
            f"{name}/{allocation}: incremental hash "
            f"{hashes['incremental']} != full-recompute hash "
            f"{hashes['full']}")
    return ([f"{name}: {v}" if not v.startswith(name) else v
             for v in violations],
            {"allocation": allocation, "sizing": sizing, **hashes})


def check_pool_modes(name: str) -> tuple[list[str], dict[str, Any]]:
    """Serial vs pooled sweep hashes over the scenario cell.

    A second cell (same config, seed + 1) makes the two-job run actually
    exercise the process pool — a single pending cell would fall back to
    the serial path.
    """
    scenario = _scenario(name)
    if scenario.config is None:
        raise ValueError(f"scenario {name!r} has no experiment config")
    cells = [scenario.config, replace(scenario.config,
                                      seed=scenario.config.seed + 1)]
    faults = _faults(scenario, scenario.config)
    hashes: dict[int, dict[int, str]] = {}
    for jobs in (1, 2):
        report = run_sweep(cells, jobs=jobs, cache=False,
                           options=RunOptions(faults=faults,
                                              guard=scenario.guard))
        report.raise_failures()
        hashes[jobs] = {index: result_hash(report.result(cell))
                        for index, cell in enumerate(cells)}
    violations = []
    for index, cell in enumerate(cells):
        if hashes[1][index] != hashes[2][index]:
            violations.append(
                f"{name} cell {index} (seed {cell.seed}): serial hash "
                f"{hashes[1][index]} != pooled hash {hashes[2][index]}")
    return violations, {"serial": hashes[1], "pooled": hashes[2]}


def check_cache_replay(name: str, allocation: str = "krisp",
                       sizing: str = "static"
                       ) -> tuple[list[str], dict[str, Any]]:
    """Fresh vs cache-round-tripped result hashes for one scenario."""
    scenario = _scenario(name)
    if scenario.config is None:
        raise ValueError(f"scenario {name!r} has no experiment config")
    config = replace(scenario.config, allocation=allocation, sizing=sizing)
    faults = _faults(scenario, config)
    root = Path(tempfile.mkdtemp(prefix="repro-check-cache-"))
    try:
        store = ResultCache(root=root)
        fresh = cached_run_experiment(
            config, cache=store, faults=faults,
            guard=scenario.guard)
        cached = cached_run_experiment(
            config, cache=store, faults=faults,
            guard=scenario.guard)
        violations = []
        fresh_hash, cached_hash = result_hash(fresh), result_hash(cached)
        if fresh_hash != cached_hash:
            violations.append(
                f"{name}: fresh hash {fresh_hash} != cached replay "
                f"hash {cached_hash}")
        if store.stats.hits != 1:
            violations.append(
                f"{name}: expected exactly 1 cache hit on replay, "
                f"saw {store.stats.hits}")
        return violations, {"fresh": fresh_hash, "cached": cached_hash,
                            "hits": store.stats.hits}
    finally:
        shutil.rmtree(root, ignore_errors=True)


def check_experiment_invariants(name: str, allocation: str = "krisp",
                                sizing: str = "static"
                                ) -> tuple[list[str], dict[str, Any]]:
    """One audited scenario run: device audit + request conservation."""
    scenario = _scenario(name)
    if scenario.config is None:
        raise ValueError(f"scenario {name!r} has no experiment config")
    config = replace(scenario.config, allocation=allocation, sizing=sizing)
    faults = _faults(scenario, config)
    violations: list[str] = []
    details: dict[str, Any] = {}

    def audit(setup, injector) -> None:
        violations.extend(setup.device.audit_state())
        violations.extend(request_conservation(setup, injector))
        details["enqueued"] = sum(q.enqueued for q in setup.queues)
        details["completed"] = sum(len(w.stats.completed)
                                   for w in setup.workers)

    result = run_experiment(
        config, RunOptions(faults=faults, guard=scenario.guard,
                           audit=audit))
    details["result_hash"] = result_hash(result)
    return [f"{name}: {violation}" for violation in violations], details
