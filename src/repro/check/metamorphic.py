"""Metamorphic properties of the execution model and the overlap limit.

**Mask growth.**  The issue's naive phrasing — "growing a kernel's CU
mask never increases its isolated latency" — is *false* in this timing
model for arbitrary growth: workgroups split equally across active SEs,
so growing 45 CUs (3 full SEs) to 46 (4 SEs of ~12) narrows every SE
and the max-per-SE wave count can rise.  That is exactly the paper's
Fig. 8 Packed/Distributed spike, which this simulator reproduces on
purpose.  The laws that *do* hold (verified over every kernel of every
zoo model) and are encoded here:

1. Growth **within a fixed active-SE set** never increases latency —
   adding CUs to already-active SEs only widens them.
2. Conserved balanced growth is monotone **within each active-SE-count
   band** (1-15, 16-30, 31-45, 46-60 CUs on the MI50 shape).
3. The full-device mask is a global minimum over every conserved shape.

**Overlap limit.**  A reduced fig16-shaped grid (one heavy model, four
workers, KRISP-O): under heavy contention, full isolation (limit 0)
beats unbounded overlap (limit 60), and no limit setting loses
catastrophically — the direction the repo's pinned Fig. 16 benchmark
asserts (the issue's phrasing had it backwards).
"""

from __future__ import annotations

from typing import Any

from repro.core.allocation import DistributionPolicy, se_distribution
from repro.gpu.cu_mask import CUMask
from repro.gpu.exec_model import ExecutionModelConfig, isolated_latency
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology
from repro.models.zoo import get_model
from repro.server.experiment import ExperimentConfig, run_experiment

__all__ = ["check_mask_growth", "check_overlap_limit_law"]

#: Tolerance for "never increases": pure-float ratios, so only genuine
#: regressions (not re-association noise) trip it.
_GROWTH_TOL = 1e-12

_GROWTH_MODELS = ("squeezenet", "albert", "vgg19")


def _conserved_mask(n: int, topology: GpuTopology) -> CUMask:
    """The conserved-policy balanced shape of size ``n`` on SEs 0..k."""
    counts = se_distribution(n, topology, DistributionPolicy.CONSERVED)
    bits = 0
    for se, count in enumerate(counts):
        base = se * topology.cus_per_se
        for offset in range(count):
            bits |= 1 << (base + offset)
    return CUMask(topology, bits)


def _distinct_descriptors(model_names) -> list[KernelDescriptor]:
    descriptors: dict = {}
    for name in model_names:
        model = get_model(name)
        for descriptor in model.trace(32):
            descriptors[(descriptor.name, descriptor.workgroups)] = descriptor
    return list(descriptors.values())


def check_mask_growth(
    model_names=_GROWTH_MODELS,
) -> tuple[list[str], dict[str, Any]]:
    """Monotonicity laws 1-3 over every distinct kernel descriptor."""
    topology = GpuTopology.mi50()
    config = ExecutionModelConfig()
    descriptors = _distinct_descriptors(model_names)
    violations: list[str] = []

    per_se = topology.cus_per_se
    bands = [range(band_start, min(band_start + per_se - 1,
                                   topology.total_cus) + 1)
             for band_start in range(1, topology.total_cus + 1, per_se)]

    for descriptor in descriptors:
        # Law 1: within-SE growth (packed prefix of SE 0).
        previous = None
        for n in range(1, per_se + 1):
            latency = isolated_latency(
                descriptor, CUMask.first_n(topology, n), config)
            if previous is not None and latency > previous * (1 + _GROWTH_TOL):
                violations.append(
                    f"{descriptor.name}: within-SE growth {n - 1}->{n} CUs "
                    f"raised latency {previous!r} -> {latency!r}")
            previous = latency

        # Law 2: conserved balanced growth, monotone inside each band.
        latencies = {n: isolated_latency(
            descriptor, _conserved_mask(n, topology), config)
            for n in range(1, topology.total_cus + 1)}
        for band in bands:
            previous = None
            for n in band:
                latency = latencies[n]
                if (previous is not None
                        and latency > previous * (1 + _GROWTH_TOL)):
                    violations.append(
                        f"{descriptor.name}: conserved growth "
                        f"{n - 1}->{n} CUs (same SE count) raised latency "
                        f"{previous!r} -> {latency!r}")
                previous = latency

        # Law 3: the full device is never beaten by a conserved shape.
        full = latencies[topology.total_cus]
        for n, latency in latencies.items():
            if latency < full * (1 - _GROWTH_TOL):
                violations.append(
                    f"{descriptor.name}: conserved {n}-CU mask "
                    f"({latency!r}) beat the full device ({full!r})")

    return violations, {"descriptors": len(descriptors)}


def check_overlap_limit_law(
    model: str = "vgg19",
    workers: int = 4,
    limits: tuple[int, ...] = (0, 23, 60),
    requests_scale: float = 0.2,
) -> tuple[list[str], dict[str, Any]]:
    """Fig. 16 direction on a reduced grid: isolation wins under
    contention, and sensitivity to the limit stays bounded."""
    throughput = {}
    for limit in limits:
        result = run_experiment(ExperimentConfig(
            model_names=(model,) * workers,
            policy="krisp-o",
            overlap_limit=limit,
            requests_scale=requests_scale,
        ))
        throughput[limit] = result.total_rps
    violations = []
    lowest, highest = min(limits), max(limits)
    if throughput[lowest] < throughput[highest]:
        violations.append(
            f"{model} x{workers}: overlap limit {lowest} "
            f"({throughput[lowest]:.1f} rps) lost to limit {highest} "
            f"({throughput[highest]:.1f} rps) under contention")
    floor = 0.75 * max(throughput.values())
    for limit, rps in throughput.items():
        if rps <= floor:
            violations.append(
                f"{model} x{workers}: limit {limit} collapsed to "
                f"{rps:.1f} rps (< 75% of the best setting)")
    return violations, {"total_rps": {str(k): v
                                      for k, v in throughput.items()}}
