"""Check registry and execution for ``krisp-repro check``.

Two entry points:

:func:`run_checks`
    Executes the global invariant checks (mask laws, device audits in
    both recompute modes, the emulation correction, the metamorphic
    laws) plus per-scenario differential replays, and returns a
    :class:`~repro.check.report.CheckReport`.

:func:`run_mutate_smoke`
    The audit layer's self-test: seeds each deliberate fault from
    :mod:`repro.check.mutate` and verifies its targeted checker fires.
    A mutation that slips through means the audit layer itself has
    regressed.

The dense scenario only runs its (already ~100 s) incremental-vs-full
replay; the heavier pool/cache/audited-run treatments are reserved for
the sub-second ``colo4``/``chaos`` cells so the default check run stays
CI-smoke sized.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.bench.scenarios import SCENARIOS
from repro.check.attribution import check_attribution_conservation
from repro.check.differential import (
    check_allocation_modes,
    check_cache_replay,
    check_experiment_invariants,
    check_pool_modes,
    check_recompute_modes,
)
from repro.check.emulation import check_emulation_correction
from repro.check.invariants import (
    run_device_program,
    run_mask_program,
    run_pool_program,
)
from repro.check.metamorphic import check_mask_growth, check_overlap_limit_law
from repro.check.mutate import MUTATIONS
from repro.check.report import CheckReport, CheckResult

__all__ = ["DEFAULT_SCENARIOS", "available_checks", "run_checks",
           "run_mutate_smoke"]

#: Scenarios covered by the default (no-flag) check run; ``--all`` adds
#: the rest of the pinned roster.
DEFAULT_SCENARIOS: tuple[str, ...] = ("colo4", "chaos")

#: Scenarios cheap enough for the full differential treatment.
_FULL_TREATMENT: frozenset = frozenset(DEFAULT_SCENARIOS)

CheckFn = Callable[[], "tuple[list[str], dict[str, Any]] | list[str]"]


def _mask_laws() -> tuple[list[str], dict[str, Any]]:
    violations: list[str] = []
    checked = 0
    for overlap_limit in (None, 0, 8):
        for reshape in (True, False):
            violations.extend(run_mask_program(
                seed=0, iterations=300, overlap_limit=overlap_limit,
                reshape=reshape))
            checked += 300
    return violations, {"masks_checked": checked}


def _device_audit() -> tuple[list[str], dict[str, Any]]:
    violations: list[str] = []
    for full_recompute in (False, True):
        for violation in run_device_program(
                seed=0, steps=150, full_recompute=full_recompute):
            mode = "full" if full_recompute else "incremental"
            violations.append(f"[{mode}] {violation}")
    return violations, {"modes": ["incremental", "full"]}


def _pool_laws() -> tuple[list[str], dict[str, Any]]:
    """Pooled allocator under the identical mask-law churn (L1-L4)."""
    violations: list[str] = []
    checked = 0
    stats: dict[str, Any] = {}
    for overlap_limit in (None, 0, 8):
        for contention in (False, True):
            per_run: dict = {}
            violations.extend(run_pool_program(
                seed=0, iterations=300, overlap_limit=overlap_limit,
                contention=contention, stats_out=per_run))
            checked += 300
            for key, value in per_run.items():
                stats[key] = stats.get(key, 0) + value
    stats["masks_checked"] = checked
    return violations, stats


def _global_checks() -> list[tuple[str, CheckFn]]:
    return [
        ("mask-laws", _mask_laws),
        ("pool-laws", _pool_laws),
        ("device-audit", _device_audit),
        ("emulation-correction", check_emulation_correction),
        ("mask-growth", check_mask_growth),
        ("overlap-limit-law", check_overlap_limit_law),
        ("attribution-conservation", check_attribution_conservation),
    ]


def _scenario_checks(names: Iterable[str],
                     allocation: str = "krisp",
                     sizing: str = "static") -> list[tuple[str, CheckFn]]:
    checks: list[tuple[str, CheckFn]] = []
    for name in names:
        if allocation != "krisp" or sizing != "static":
            # The pinned ``modes`` replay runs a frozen scenario closure
            # that cannot change allocation; rebuild the cell instead.
            if SCENARIOS[name].config is None:
                continue
            checks.append(
                (f"alloc-modes:{name}:{allocation}",
                 lambda name=name: check_allocation_modes(
                     name, allocation, sizing)))
            if name in _FULL_TREATMENT:
                checks.append(
                    (f"alloc-cache:{name}:{allocation}",
                     lambda name=name: check_cache_replay(
                         name, allocation=allocation, sizing=sizing)))
                checks.append(
                    (f"alloc-invariants:{name}:{allocation}",
                     lambda name=name: check_experiment_invariants(
                         name, allocation=allocation, sizing=sizing)))
            continue
        checks.append((f"modes:{name}",
                       lambda name=name: check_recompute_modes(name)))
        if name in _FULL_TREATMENT and SCENARIOS[name].config is not None:
            checks.append((f"pool:{name}",
                           lambda name=name: check_pool_modes(name)))
            checks.append((f"cache:{name}",
                           lambda name=name: check_cache_replay(name)))
            checks.append(
                (f"invariants:{name}",
                 lambda name=name: check_experiment_invariants(name)))
    return checks


def _build_checks(scenarios: Optional[Sequence[str]],
                  include_all: bool,
                  allocation: str = "krisp",
                  sizing: str = "static") -> list[tuple[str, CheckFn]]:
    if scenarios is not None:
        unknown = sorted(set(scenarios) - set(SCENARIOS))
        if unknown:
            raise ValueError(
                f"unknown scenarios {unknown}; choose from "
                f"{sorted(SCENARIOS)}")
        names: Sequence[str] = scenarios
    elif include_all:
        names = tuple(SCENARIOS)
    else:
        names = DEFAULT_SCENARIOS
    return _global_checks() + _scenario_checks(names, allocation, sizing)


def available_checks(include_all: bool = True) -> list[str]:
    """Names of every check a run would execute (for ``--list``)."""
    return [name for name, _fn in _build_checks(None, include_all)]


def _execute(name: str, fn: CheckFn) -> CheckResult:
    start = time.perf_counter()
    outcome = fn()
    if isinstance(outcome, tuple):
        violations, details = outcome
    else:
        violations, details = outcome, {}
    return CheckResult(
        name=name,
        passed=not violations,
        violations=tuple(violations),
        details=details,
        wall_s=time.perf_counter() - start,
    )


def run_checks(
    scenarios: Optional[Sequence[str]] = None,
    include_all: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    allocation: str = "krisp",
    sizing: str = "static",
) -> CheckReport:
    """Run the audit suite and return its report.

    ``scenarios`` restricts the differential replays to the named pinned
    scenarios (global checks always run); ``include_all`` widens the
    default roster to every scenario; ``progress`` receives each check
    name as it starts.  A non-default ``allocation``/``sizing`` swaps
    the per-scenario replays for the allocation-policy differentials
    (``alloc-modes``/``alloc-cache``/``alloc-invariants``) so the new
    policies are audited end to end.
    """
    report = CheckReport()
    for name, fn in _build_checks(scenarios, include_all, allocation,
                                  sizing):
        if progress is not None:
            progress(name)
        report.add(_execute(name, fn))
    return report


def run_mutate_smoke(
    progress: Optional[Callable[[str], None]] = None,
) -> tuple[CheckReport, bool]:
    """Seed each deliberate fault and assert its checker catches it.

    Returns ``(report, all_caught)``.  A result is *passed* when the
    mutation was caught; ``all_caught=False`` means the audit layer
    failed its self-test (a seeded bug produced zero violations).
    """
    report = CheckReport()
    for mutation in MUTATIONS:
        if progress is not None:
            progress(mutation.name)
        start = time.perf_counter()
        with mutation.apply():
            violations = mutation.targeted_check()
        caught = bool(violations)
        report.add(CheckResult(
            name=f"mutate:{mutation.name}",
            passed=caught,
            # On a catch, surface a sample of what fired; an escape has
            # nothing to show.
            violations=() if caught else (
                f"seeded fault was NOT caught: {mutation.description}",),
            details={
                "caught": caught,
                "description": mutation.description,
                "violations_observed": len(violations),
                "sample": violations[:3],
            },
            wall_s=time.perf_counter() - start,
        ))
    all_caught = all(result.passed for result in report.results)
    return report, all_caught
