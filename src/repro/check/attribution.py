"""Attribution-conservation audit: recorder purity + exact decomposition.

Two laws, checked on the pinned bench cells:

*Recorder purity.*  Attaching a :class:`~repro.obs.flight.FlightRecorder`
is pure observation — the experiment's
:func:`~repro.exp.cache.result_hash` must be byte-identical with and
without it, on the fault-free ``colo4`` cell and on the fault-churned,
guarded ``chaos`` cell (crashes, retries, storms, sheds).

*Exact conservation.*  Every completed flight's decomposition
(:func:`~repro.obs.attribution.decompose`) must produce non-negative
components that sum — in :class:`fractions.Fraction` arithmetic, with no
tolerance — to its end-to-end latency, and the tail/body cohort
partition's component totals must sum to the population's exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

__all__ = ["check_attribution_conservation"]


def check_attribution_conservation() -> tuple[list[str], dict[str, Any]]:
    """Recorder purity + exact-conservation laws on the pinned cells."""
    from repro.bench.scenarios import (
        CHAOS_CONFIG,
        CHAOS_GUARD,
        COLO4_CONFIG,
        chaos_faults,
    )
    from repro.exp.cache import result_hash
    from repro.obs.attribution import (
        COMPONENTS,
        decompose,
        exact_cohorts,
    )
    from repro.obs.flight import FlightRecorder
    from repro.server.experiment import run_experiment
    from repro.server.options import RunOptions

    violations: list[str] = []
    details: dict[str, Any] = {}
    audited = 0

    cells = (
        ("colo4", COLO4_CONFIG, None, None),
        ("chaos", CHAOS_CONFIG, chaos_faults(CHAOS_CONFIG), CHAOS_GUARD),
    )
    for label, config, faults, guard in cells:
        plain = run_experiment(
            config, RunOptions(faults=faults, guard=guard))
        recorder = FlightRecorder()
        recorded = run_experiment(
            config, RunOptions(recorder=recorder, faults=faults,
                               guard=guard))
        plain_hash = result_hash(plain)
        details[f"{label}_hash"] = plain_hash
        if plain_hash != result_hash(recorded):
            violations.append(
                f"{label}: flight recorder perturbed the result — "
                f"{plain_hash} != {result_hash(recorded)}")

        decomposed: list[tuple[Any, dict]] = []
        for flight in recorder.flights():
            if not flight.completed:
                continue
            try:
                parts = decompose(flight)
            except ValueError as exc:
                violations.append(
                    f"{label} request {flight.index}: decomposition "
                    f"failed: {exc}")
                continue
            audited += 1
            latency = (Fraction(flight.completion_time)
                       - Fraction(flight.arrival_time))
            total = sum(parts.values(), Fraction(0))
            if total != latency:
                violations.append(
                    f"{label} request {flight.index}: components sum to "
                    f"{float(total)!r} != latency {float(latency)!r}")
            negative = sorted(name for name, value in parts.items()
                              if value < 0)
            if negative:
                violations.append(
                    f"{label} request {flight.index}: negative "
                    f"components {negative}")
            decomposed.append((flight, parts))

        if not decomposed:
            violations.append(f"{label}: no completed flights recorded")
            continue
        cohorts = exact_cohorts(decomposed)
        for name in COMPONENTS:
            body = sum((parts[name] for _f, parts in cohorts["body"]),
                       Fraction(0))
            tail = sum((parts[name] for _f, parts in cohorts["tail"]),
                       Fraction(0))
            population = sum((parts[name] for _f, parts in decomposed),
                             Fraction(0))
            if body + tail != population:
                violations.append(
                    f"{label}: cohort totals for {name} do not "
                    f"partition the population "
                    f"({float(body)!r} + {float(tail)!r} != "
                    f"{float(population)!r})")

    details["flights_audited"] = audited
    return violations, details
