"""Deliberate fault seeding for the audit layer's self-test.

An invariant checker that never fires is indistinguishable from one
that works, so ``krisp-repro check --mutate-smoke`` seeds one concrete
bug at a time — each a realistic regression in a load-bearing code path
— and asserts the targeted checker *catches* it.  Every mutation is a
context manager that monkey-patches a live class and restores it on
exit, so the smoke run leaves the process clean.

The roster pairs each mutation with the checker expected to trip:

=========================  ============================================
mutation                   caught by
=========================  ============================================
``drop-dirty-entry``       incremental-mode device audit (stale rate)
``skip-se-load-update``    counter self-audit inside the mask program
``skew-mask-shape``        Algorithm-1 active-SE law (L3)
``tamper-cached-result``   cached-vs-fresh differential hash
``drop-enqueue-count``     request-conservation identity
=========================  ============================================
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.core.allocation import ResourceMaskGenerator
from repro.exp.cache import ResultCache
from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.server.request import RequestQueue

__all__ = ["MUTATIONS", "Mutation"]


@dataclasses.dataclass(frozen=True)
class Mutation:
    """One seeded fault: a name, a patch, and its targeted checker."""

    name: str
    description: str
    apply: Callable[[], object]
    #: Zero-argument callable returning a violations list; must be
    #: non-empty while the mutation is active.
    targeted_check: Callable[[], list[str]]


@contextmanager
def _drop_dirty_entry() -> Iterator[None]:
    """Incremental recompute forgets the newest-launched dirty record."""
    original = GpuDevice._dirty_after_mask_change

    def mutated(self, mask, old_total):
        dirty = original(self, mask, old_total)
        if dirty:
            dirty.discard(max(dirty))
        return dirty

    GpuDevice._dirty_after_mask_change = mutated
    try:
        yield
    finally:
        GpuDevice._dirty_after_mask_change = original


@contextmanager
def _skip_se_load_update() -> Iterator[None]:
    """Counter release stops maintaining the per-SE load aggregate."""
    original = CUKernelCounters.release

    def mutated(self, mask):
        counts = self._counts
        for cu in mask.cu_tuple:
            remaining = counts[cu] - 1
            if remaining < 0:
                raise ValueError(f"CU {cu} released below zero")
            counts[cu] = remaining
            if remaining == 0:
                self._busy -= 1
        self._total -= mask.count()
        # Bug under test: self._se_loads is never decremented.

    CUKernelCounters.release = mutated
    try:
        yield
    finally:
        CUKernelCounters.release = original


@contextmanager
def _skew_mask_shape() -> Iterator[None]:
    """Masks come back round-robined over every SE, breaking the
    conserved policy's fewest-SEs shape."""
    original = ResourceMaskGenerator.generate

    def mutated(self, num_cus, counters):
        mask = original(self, num_cus, counters)
        topology = self.topology
        per_se = topology.cus_per_se
        offsets = [0] * topology.num_se
        cus = []
        se = 0
        for _ in range(mask.count()):
            while offsets[se] >= per_se:
                se = (se + 1) % topology.num_se
            cus.append(se * per_se + offsets[se])
            offsets[se] += 1
            se = (se + 1) % topology.num_se
        return CUMask.from_cus(topology, cus)

    ResourceMaskGenerator.generate = mutated
    try:
        yield
    finally:
        ResourceMaskGenerator.generate = original


@contextmanager
def _tamper_cached_result() -> Iterator[None]:
    """Cache hits come back with a perturbed throughput float."""
    original = ResultCache.get

    def mutated(self, config, faults=None, guard=None):
        result = original(self, config, faults=faults, guard=guard)
        if result is None:
            return None
        return dataclasses.replace(
            result, total_rps=result.total_rps + 1e-6)

    ResultCache.get = mutated
    try:
        yield
    finally:
        ResultCache.get = original


@contextmanager
def _drop_enqueue_count() -> Iterator[None]:
    """Queue puts stop incrementing the admission counter."""
    original = RequestQueue.put

    def mutated(self, request):
        original(self, request)
        self.enqueued -= 1

    RequestQueue.put = mutated
    try:
        yield
    finally:
        RequestQueue.put = original


def _device_check() -> list[str]:
    # Incremental mode pinned explicitly: the dropped dirty entry only
    # exists on the incremental path.
    from repro.check.invariants import run_device_program
    return run_device_program(seed=7, steps=120, full_recompute=False,
                              with_faults=False)


def _mask_law_check() -> list[str]:
    from repro.check.invariants import run_mask_program
    return run_mask_program(seed=7, iterations=120)


def _cache_check() -> list[str]:
    from repro.check.differential import check_cache_replay
    return check_cache_replay("colo4")[0]


def _conservation_check() -> list[str]:
    from repro.check.differential import check_experiment_invariants
    return check_experiment_invariants("colo4")[0]


MUTATIONS: tuple[Mutation, ...] = (
    Mutation(
        "drop-dirty-entry",
        "incremental recompute skips the newest dirty record",
        _drop_dirty_entry,
        _device_check,
    ),
    Mutation(
        "skip-se-load-update",
        "counter release leaks the per-SE load aggregate",
        _skip_se_load_update,
        _mask_law_check,
    ),
    Mutation(
        "skew-mask-shape",
        "allocator spreads conserved masks over every SE",
        _skew_mask_shape,
        _mask_law_check,
    ),
    Mutation(
        "tamper-cached-result",
        "cache hits return a perturbed throughput",
        _tamper_cached_result,
        _cache_check,
    ),
    Mutation(
        "drop-enqueue-count",
        "queue admissions go uncounted",
        _drop_enqueue_count,
        _conservation_check,
    ),
)
