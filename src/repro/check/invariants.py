"""Conservation-law and structural invariant checkers.

Three families of invariants, each derived from the code paths they
audit rather than restated from the paper:

**Algorithm 1 mask laws** (:class:`MaskLawChecker`) — every mask the
allocator produces must be non-empty, sized between the fair-share
floor and the (isolation-capped) request, equal-split across its active
SEs under the balanced policies, and must respect the overlap limit
unless the allocation was legitimately shrunk or floored.

**Device/counters audits** — randomized launch/retire/fault programs
against a live :class:`~repro.gpu.device.GpuDevice`, calling its
:meth:`~repro.gpu.device.GpuDevice.audit_state` at quiescent points.
That method cross-checks every incrementally maintained structure
(reverse indices, demand sets, meter aggregates, per-CU counters,
cached rates) against fresh rescans and balances the work-conservation
ledger: Σ per-CU assigned time == Σ per-kernel mask-size × residency.

**Request accounting** (:func:`request_conservation`) — at the end of a
serving run, every queue admission is accounted for exactly once:

    Σ enqueued == completed + shed_deadline + in_flight + still_queued
                  + retry_shed + retries_scheduled

Retries that land back in a queue count on both sides (a re-put is a
new enqueue and its orphaning crash was a ``retried``), so the identity
holds with or without fault injection, including retries still in
backoff when the run ends.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.allocation import (
    DistributionPolicy,
    ResourceMaskGenerator,
    fair_share_floor,
)
from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.topology import GpuTopology
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

__all__ = [
    "MaskLawChecker",
    "request_conservation",
    "run_device_program",
    "run_mask_program",
    "run_pool_program",
]


class MaskLawChecker:
    """Wraps a :class:`ResourceMaskGenerator` and validates every mask.

    The laws are stated against the *pre-allocation* counter state (the
    same state Algorithm 1 read), so the checker snapshots the counters
    before delegating.  Violations accumulate in :attr:`violations`.
    """

    def __init__(self, generator: ResourceMaskGenerator,
                 counters: CUKernelCounters) -> None:
        self.generator = generator
        self.counters = counters
        self.checked = 0
        self.violations: list[str] = []

    def generate(self, num_cus: int) -> CUMask:
        """Generate a mask through the wrapped generator and audit it."""
        counters = self.counters
        pre_counts = counters.snapshot()
        pre_total = counters.total_assigned()
        pre_busy = counters.busy_cus()
        mask = self.generator.generate(num_cus, counters)
        self._check(num_cus, mask, pre_counts, pre_total, pre_busy)
        self.checked += 1
        return mask

    def _check(self, num_cus: int, mask: CUMask, pre_counts: list[int],
               pre_total: int, pre_busy: int) -> None:
        gen = self.generator
        topo = gen.topology
        label = f"mask #{self.checked} (request {num_cus})"

        # L1: never empty, always on this device.
        if mask.is_empty():
            self.violations.append(f"{label}: empty mask")
            return
        if mask.topology != topo:
            self.violations.append(f"{label}: foreign topology")
            return

        # L2: grant bounded by the fair-share floor and the
        # (isolation-capped) effective request.
        requested = max(1, min(num_cus, topo.total_cus))
        floor = fair_share_floor(topo.total_cus, pre_total)
        effective = requested
        if gen.overlap_limit == 0:
            free = topo.total_cus - pre_busy
            effective = min(requested, max(floor, free))
        floor_capped = min(floor, effective)
        count = mask.count()
        if not floor_capped <= count <= effective:
            self.violations.append(
                f"{label}: grant {count} outside "
                f"[{floor_capped}, {effective}]")

        # L3: balanced policies under reshape produce equal-split masks
        # on exactly the number of SEs the distribution targets demand.
        # (A completed selection pass grants each chosen SE its full
        # target, so the per-SE counts match the balanced divmod shape.)
        if gen.reshape and gen.policy is not DistributionPolicy.PACKED:
            active = [n for n in mask.per_se_counts() if n]
            if max(active) - min(active) > 1:
                self.violations.append(
                    f"{label}: per-SE split {active} not within +/-1")
            if gen.policy is DistributionPolicy.CONSERVED:
                want_ses = -(-count // topo.cus_per_se)
            else:  # DISTRIBUTED spreads over every SE it can reach
                want_ses = min(count, topo.num_se)
            if len(active) != want_ses:
                self.violations.append(
                    f"{label}: {gen.policy.value} grant of {count} CUs on "
                    f"{len(active)} SEs, expected {want_ses}")

        # L4: the overlap limit binds unless the allocation was shrunk
        # below the effective request or pinned at the floor (the two
        # legitimate "we may allow them to overlap" escapes).
        occupied = sum(1 for cu in mask.cu_tuple if pre_counts[cu] > 0)
        if not (occupied <= gen.overlap_limit
                or count < effective
                or count <= floor_capped):
            self.violations.append(
                f"{label}: full-size grant overlaps {occupied} occupied "
                f"CUs > limit {gen.overlap_limit}")


def run_mask_program(
    seed: int,
    iterations: int = 400,
    policy: DistributionPolicy = DistributionPolicy.CONSERVED,
    overlap_limit: Optional[int] = None,
    reshape: bool = True,
    topology: Optional[GpuTopology] = None,
    audit_every: int = 50,
) -> list[str]:
    """Randomized Algorithm-1 churn under the mask-law checker.

    Generates, assigns, and retires masks against live counters with a
    seeded request-size stream, auditing the counters periodically and
    after full drain.  Returns every violation observed.
    """
    topo = topology or GpuTopology.mi50()
    generator = ResourceMaskGenerator(
        topo, policy=policy, overlap_limit=overlap_limit, reshape=reshape)
    counters = CUKernelCounters(topo)
    checker = MaskLawChecker(generator, counters)
    rng = RngRegistry(seed=seed).stream(
        f"check/maskgen/{policy.value}/{overlap_limit}")
    live: deque = deque()
    violations: list[str] = []
    for i in range(iterations):
        mask = checker.generate(int(rng.integers(1, topo.total_cus + 1)))
        counters.assign(mask)
        live.append(mask)
        # Vary residency between near-idle and heavily loaded so the
        # floor, the isolation cap, and the overlap budget all bind.
        keep = int(rng.integers(0, 28))
        while len(live) > keep:
            counters.release(live.popleft())
        if i % audit_every == 0:
            violations.extend(counters.audit())
    while live:
        counters.release(live.popleft())
    violations.extend(counters.audit())
    return checker.violations + violations


def run_pool_program(
    seed: int,
    iterations: int = 400,
    policy: DistributionPolicy = DistributionPolicy.CONSERVED,
    overlap_limit: Optional[int] = None,
    reshape: bool = True,
    topology: Optional[GpuTopology] = None,
    audit_every: int = 50,
    contention: bool = False,
    stats_out: Optional[dict] = None,
) -> list[str]:
    """:func:`run_mask_program`, but through the pooled allocator.

    The pooled policy's lawfulness contract says every pool-served mask
    satisfies L1-L4 at the original request, so the identical checker
    and churn program apply — same RNG stream, same residency pattern —
    and any divergence from the contract surfaces as a violation.
    ``stats_out`` (when given) receives the allocator's
    :meth:`~repro.core.pools.PooledMaskAllocator.pool_stats`.
    """
    from repro.core.pools import PooledMaskAllocator

    topo = topology or GpuTopology.mi50()
    generator = ResourceMaskGenerator(
        topo, policy=policy, overlap_limit=overlap_limit, reshape=reshape)
    allocator = PooledMaskAllocator(generator, contention=contention)
    counters = CUKernelCounters(topo)
    checker = MaskLawChecker(allocator, counters)
    rng = RngRegistry(seed=seed).stream(
        f"check/poolgen/{policy.value}/{overlap_limit}")
    live: deque = deque()
    violations: list[str] = []
    for i in range(iterations):
        mask = checker.generate(int(rng.integers(1, topo.total_cus + 1)))
        counters.assign(mask)
        live.append(mask)
        keep = int(rng.integers(0, 28))
        while len(live) > keep:
            counters.release(live.popleft())
        if i % audit_every == 0:
            violations.extend(counters.audit())
    while live:
        counters.release(live.popleft())
    violations.extend(counters.audit())
    if stats_out is not None:
        stats_out.update(allocator.pool_stats())
    return checker.violations + violations


def _program_descriptors(rng) -> list[KernelDescriptor]:
    """A seeded handful of kernel shapes spanning the model regimes."""
    descriptors = []
    for index in range(6):
        descriptors.append(KernelDescriptor(
            name=f"check_kernel_{index}",
            workgroups=int(rng.integers(1, 400)),
            wg_duration=float(rng.uniform(1e-6, 2e-5)),
            occupancy=int(rng.integers(1, 6)),
            mem_intensity=float(rng.uniform(0.0, 1.0)),
            flat_time=float(rng.uniform(0.0, 5e-5)),
        ))
    return descriptors


def run_device_program(
    seed: int,
    steps: int = 150,
    full_recompute: Optional[bool] = None,
    with_faults: bool = True,
    audit_every: int = 25,
    topology: Optional[GpuTopology] = None,
) -> list[str]:
    """Randomized launch/retire/fault program with periodic full audits.

    Drives a :class:`GpuDevice` through a seeded schedule of kernel
    launches (masks from a live Algorithm-1 generator), fault-scale and
    bandwidth-pressure changes, and partial drains, calling
    :meth:`GpuDevice.audit_state` at quiescent points and after the
    final drain.  ``full_recompute`` pins the recompute mode regardless
    of the ``REPRO_FULL_RECOMPUTE`` environment, so differential tests
    can audit both paths explicitly.
    """
    sim = Simulator()
    device = GpuDevice(sim, topology=topology, full_recompute=full_recompute)
    topo = device.topology
    generator = ResourceMaskGenerator(topo)
    rng = RngRegistry(seed=seed).stream("check/device")
    descriptors = _program_descriptors(rng)
    violations: list[str] = []
    bandwidth_injected = 0.0

    for step in range(steps):
        sim.run(until=sim.now + float(rng.uniform(0.0, 3e-4)))
        op = float(rng.random())
        if op < 0.62 or not device.busy():
            descriptor = descriptors[int(rng.integers(0, len(descriptors)))]
            mask = generator.generate(
                int(rng.integers(1, topo.total_cus + 1)), device.counters)
            device.launch(KernelLaunch(descriptor=descriptor,
                                       tag=f"check-{step % 3}"), mask)
        elif with_faults and op < 0.72:
            device.set_fault_latency_scale(float(rng.uniform(0.5, 3.0)))
        elif with_faults and op < 0.78:
            device.set_fault_latency_scale(1.0)
        elif with_faults and op < 0.88:
            amount = float(rng.uniform(0.05, 0.6))
            device.add_fault_bandwidth_demand(amount)
            bandwidth_injected += amount
        elif with_faults and bandwidth_injected > 0.0:
            device.add_fault_bandwidth_demand(-bandwidth_injected)
            bandwidth_injected = 0.0
        if step % audit_every == 0:
            violations.extend(device.audit_state())

    sim.run()
    device.finalize()
    violations.extend(device.audit_state())
    if device.busy():
        violations.append(
            f"device program: {device.running_count()} kernels still "
            "resident after drain")
    return violations


def request_conservation(setup, injector=None) -> list[str]:
    """End-of-run request-accounting identity for one serving cell.

    ``setup`` is the live :class:`~repro.server.setup.ServingSetup`
    after the run; ``injector`` the
    :class:`~repro.faults.injector.FaultInjector` or ``None``.  Every
    queue admission must be disposed of exactly once; see the module
    docstring for why retry re-puts balance.
    """
    enqueued = sum(queue.enqueued for queue in setup.queues)
    still_queued = sum(len(queue) for queue in setup.queues)
    completed = sum(len(worker.stats.completed) for worker in setup.workers)
    shed_deadline = sum(worker.stats.shed_deadline
                        for worker in setup.workers)
    in_flight = sum(1 for worker in setup.workers
                    if worker.in_flight is not None)
    retried = injector.retried if injector is not None else 0
    retry_shed = injector.shed_retries if injector is not None else 0
    accounted = (completed + shed_deadline + in_flight + still_queued
                 + retried + retry_shed)
    if enqueued != accounted:
        return [
            "request conservation broken: "
            f"enqueued {enqueued} != completed {completed} "
            f"+ shed_deadline {shed_deadline} + in_flight {in_flight} "
            f"+ queued {still_queued} + retried {retried} "
            f"+ retry_shed {retry_shed} = {accounted}"
        ]
    return []
