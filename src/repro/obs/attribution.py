"""Latency attribution: exact decomposition and tail-cohort analysis.

:func:`decompose` splits one completed :class:`~repro.obs.flight
.RequestFlight`'s end-to-end latency into the conserved components KRISP
argues about:

``queue_wait``
    First dequeue minus arrival — time spent waiting for a worker.
``retry_wait``
    Last dequeue minus first dequeue — crash/retry churn (backoff plus
    any aborted service time); exactly zero for untouched requests.
``host_pre`` / ``host_post``
    The worker's jittered host-side processing phases.
``gpu_ideal``
    Sum of per-kernel isolated-ideal floors (the perf-DB/solo time of
    each kernel on the mask it was actually granted).
``interference``
    Kernel wall time minus ideal — the slowdown co-residents, bandwidth
    throttling, and fault injection actually caused.
``dispatch_overhead``
    Burst span not covered by kernel execution — in-order dispatch,
    barrier packets, and the emulation path's B1/B2 overhead.
``phase_gap``
    The model's inter-segment host gaps (token sampling for LLMs).

All arithmetic is done in :class:`fractions.Fraction` over the recorded
float timestamps.  Floats are dyadic rationals, so this is *exact*: the
components provably sum to ``completion - arrival`` with no tolerance,
and each is provably non-negative (kernel windows are clamped to their
floor at ulp level — see :func:`decompose`).  The float views exported
for JSON are rounded once, at the edge.

On top of the per-request decomposition, :func:`summarize` builds the
cohort analysis ("what is p99 made of"): component totals and shares for
the tail cohort (the top ⌈5 %⌉ of requests by latency) against the body
and the median cohort, per model and per queue, plus a knee diagnosis
labelling the dominant tail component — the queueing-dominated vs
contention-dominated distinction an operator acts on.

Standard-library-only at import time; the LLM prefill/decode split
lazily imports the model zoo only when asked for.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "COMPONENTS",
    "SERVICE_COMPONENTS",
    "decompose",
    "diagnose",
    "exact_cohorts",
    "export_attribution_metrics",
    "render_markdown_report",
    "summarize",
]

#: Every latency component, in reporting order.  The values of one
#: decomposition sum exactly to the request's end-to-end latency.
COMPONENTS: tuple[str, ...] = (
    "queue_wait",
    "retry_wait",
    "host_pre",
    "gpu_ideal",
    "interference",
    "dispatch_overhead",
    "phase_gap",
    "host_post",
)

#: The components that tile the service span (everything but queueing).
SERVICE_COMPONENTS: tuple[str, ...] = COMPONENTS[2:]

#: Components attributed to waiting for a worker.
QUEUEING_COMPONENTS: tuple[str, ...] = ("queue_wait", "retry_wait")

#: Components attributed to sharing the GPU (the KRISP story).
CONTENTION_COMPONENTS: tuple[str, ...] = ("interference",
                                          "dispatch_overhead")


def decompose(flight: Any) -> dict[str, Fraction]:
    """Exact component decomposition of one completed flight.

    Returns ``{component: Fraction}`` over :data:`COMPONENTS`.  Each
    value is non-negative and the sum equals
    ``Fraction(completion_time) - Fraction(arrival_time)`` exactly.

    Raises :class:`ValueError` for flights that did not complete or
    whose recording is inconsistent (a conservation violation — the
    audit layer turns this into a check failure).
    """
    if flight.completion_time is None:
        raise ValueError(f"flight {flight.index} did not complete")
    if not flight.dequeues:
        raise ValueError(f"flight {flight.index} completed without a "
                         "recorded dequeue")
    arrival = Fraction(flight.arrival_time)
    completion = Fraction(flight.completion_time)
    first_dequeue = Fraction(flight.dequeues[0][0])
    last_dequeue = Fraction(flight.dequeues[-1][0])

    components = {name: Fraction(0) for name in COMPONENTS}
    components["queue_wait"] = first_dequeue - arrival
    components["retry_wait"] = last_dequeue - first_dequeue

    burst_total = Fraction(0)
    expected = last_dequeue
    for mark in flight.phases:
        start, end = Fraction(mark.start), Fraction(mark.end)
        if start != expected or end < start:
            raise ValueError(
                f"flight {flight.index}: phase {mark.phase} "
                f"[{mark.start}, {mark.end}] does not tile the service "
                f"span (expected start {float(expected)})")
        duration = end - start
        if mark.phase == "host_pre":
            components["host_pre"] += duration
        elif mark.phase == "burst":
            burst_total += duration
        elif mark.phase == "gap":
            components["phase_gap"] += duration
        elif mark.phase == "host_post":
            components["host_post"] += duration
        else:
            raise ValueError(
                f"flight {flight.index}: unknown phase {mark.phase!r}")
        expected = end
    if expected != completion:
        raise ValueError(
            f"flight {flight.index}: phases end at {float(expected)}, "
            f"completion at {flight.completion_time}")

    # Kernel windows of the completing attempt.  Each wall time is
    # clamped to its floor from below at ulp level: the device schedules
    # ``start + floor`` in float arithmetic, so an uncontended window
    # can round a few ulps under the floor; ``min`` keeps both the ideal
    # and the interference provably non-negative without breaking the
    # exact sum (ideal + interference == wall, always).
    gpu_actual = Fraction(0)
    gpu_ideal = Fraction(0)
    for kernel in flight.final_kernels():
        wall = Fraction(kernel.end) - Fraction(kernel.start)
        if wall < 0:
            raise ValueError(
                f"flight {flight.index}: kernel {kernel.name} has "
                f"negative wall time")
        gpu_actual += wall
        gpu_ideal += min(Fraction(kernel.floor), wall)
    if gpu_actual > burst_total:
        raise ValueError(
            f"flight {flight.index}: kernel time {float(gpu_actual)} "
            f"exceeds burst span {float(burst_total)}")
    components["gpu_ideal"] = gpu_ideal
    components["interference"] = gpu_actual - gpu_ideal
    components["dispatch_overhead"] = burst_total - gpu_actual
    return components


def phase_split(flight: Any, prefill_names: Iterable[str],
                decode_names: Iterable[str]) -> dict[str, Fraction]:
    """Prefill/decode wall-time split of one flight's final attempt.

    ``prefill + decode + other`` equals the flight's total kernel wall
    time exactly (it partitions the same windows).
    """
    prefill = frozenset(prefill_names)
    decode = frozenset(decode_names)
    out = {"prefill": Fraction(0), "decode": Fraction(0),
           "other": Fraction(0)}
    for kernel in flight.final_kernels():
        wall = Fraction(kernel.end) - Fraction(kernel.start)
        if kernel.name in prefill:
            out["prefill"] += wall
        elif kernel.name in decode:
            out["decode"] += wall
        else:
            out["other"] += wall
    return out


# -- cohorts ---------------------------------------------------------------
def _sorted_by_latency(decomposed: Sequence[tuple[Any, dict]]) -> list:
    """Ascending by exact latency; flight index breaks ties stably."""
    return sorted(
        decomposed,
        key=lambda pair: (Fraction(pair[0].completion_time)
                          - Fraction(pair[0].arrival_time),
                          pair[0].index))


def exact_cohorts(
    decomposed: Sequence[tuple[Any, dict]],
    tail_fraction: float = 0.05,
) -> dict[str, list]:
    """Partition ``(flight, components)`` pairs into body and tail.

    The tail is the top ``ceil(tail_fraction * n)`` requests by exact
    end-to-end latency (the p95+ cohort at the default fraction); body
    and tail partition the population, so their component totals sum to
    the population's exactly — the cohort conservation law the audit
    layer checks.  The ``median`` cohort (bottom ⌈50 %⌉) is a view into
    the same list, reported for contrast.
    """
    ordered = _sorted_by_latency(decomposed)
    n = len(ordered)
    tail_n = math.ceil(tail_fraction * n) if n else 0
    return {
        "body": ordered[:n - tail_n],
        "tail": ordered[n - tail_n:],
        "median": ordered[:math.ceil(n / 2)] if n else [],
    }


def _cohort_totals(cohort: Sequence[tuple[Any, dict]]
                   ) -> tuple[dict[str, Fraction], Fraction]:
    totals = {name: Fraction(0) for name in COMPONENTS}
    latency = Fraction(0)
    for flight, components in cohort:
        for name in COMPONENTS:
            totals[name] += components[name]
        latency += (Fraction(flight.completion_time)
                    - Fraction(flight.arrival_time))
    return totals, latency


def _cohort_payload(cohort: Sequence[tuple[Any, dict]]) -> dict[str, Any]:
    totals, latency = _cohort_totals(cohort)
    payload: dict[str, Any] = {
        "count": len(cohort),
        "latency_s": float(latency),
        "components_s": {name: float(totals[name]) for name in COMPONENTS},
    }
    if latency > 0:
        payload["shares"] = {name: float(totals[name] / latency)
                             for name in COMPONENTS}
    else:
        payload["shares"] = {name: 0.0 for name in COMPONENTS}
    return payload


def diagnose(decomposed: Sequence[tuple[Any, dict]],
             tail_fraction: float = 0.05) -> str:
    """Label what the latency tail is made of.

    Compares the tail cohort's queueing share (``queue_wait`` +
    ``retry_wait``) against its contention share (``interference`` +
    ``dispatch_overhead``): the knee of a load curve is
    *queueing-dominated* when arrivals outpace service and requests age
    in the queue, *contention-dominated* when spatial sharing itself
    slows kernels down.  ``service-dominated`` means neither — the tail
    is the model's own service time (host jitter, ideal GPU time).
    """
    if not decomposed:
        return "no-traffic"
    tail = exact_cohorts(decomposed, tail_fraction)["tail"]
    totals, latency = _cohort_totals(tail)
    queueing = sum((totals[name] for name in QUEUEING_COMPONENTS),
                   Fraction(0))
    contention = sum((totals[name] for name in CONTENTION_COMPONENTS),
                     Fraction(0))
    service = latency - queueing - contention
    if queueing >= contention and queueing >= service:
        return "queueing-dominated"
    if contention >= queueing and contention >= service:
        return "contention-dominated"
    return "service-dominated"


def _llm_name_sets(model: str) -> Optional[tuple[frozenset, frozenset]]:
    """(prefill, decode) kernel-name sets when ``model`` is LLM-shaped."""
    from repro.models.zoo import LlmModelSpec, get_model
    spec = get_model(model)
    if not isinstance(spec, LlmModelSpec):
        return None
    return (frozenset(s.name for s in spec.prefill),
            frozenset(s.name for s in spec.decode))


def summarize(
    flights: Sequence[Any],
    *,
    window: Optional[tuple[float, float]] = None,
    tail_fraction: float = 0.05,
) -> dict[str, Any]:
    """The attribution summary of a run: JSON-native, deterministic.

    ``flights`` come from a :class:`~repro.obs.flight.FlightRecorder`;
    ``window`` restricts the population to completions (and sheds)
    inside ``[start, end]`` — pass the measurement window to exclude
    warmup.  The output carries population/tail/body/median cohorts
    (overall, per model, and per queue), shed counts by reason, the
    retry tally, and the tail :func:`diagnose` label.
    """
    completed = [f for f in flights if f.completed
                 and (window is None
                      or window[0] <= f.completion_time <= window[1])]
    shed = [f for f in flights if f.shed_reason is not None
            and (window is None
                 or window[0] <= f.shed_time <= window[1])]
    decomposed = [(f, decompose(f)) for f in completed]

    def block(pairs: Sequence[tuple[Any, dict]]) -> dict[str, Any]:
        cohorts = exact_cohorts(pairs, tail_fraction)
        return {
            "population": _cohort_payload(pairs),
            "tail": _cohort_payload(cohorts["tail"]),
            "body": _cohort_payload(cohorts["body"]),
            "median_cohort": _cohort_payload(cohorts["median"]),
            "diagnosis": diagnose(pairs, tail_fraction),
        }

    summary: dict[str, Any] = {
        "components": list(COMPONENTS),
        "tail_fraction": tail_fraction,
        "requests": len(completed),
        "retried": sum(1 for f in completed if f.retries > 0),
        "shed": {
            "total": len(shed),
            "by_reason": {
                reason: sum(1 for f in shed if f.shed_reason == reason)
                for reason in sorted({f.shed_reason for f in shed})
            },
        },
        **block(decomposed),
    }

    by_model: dict[str, list] = {}
    by_queue: dict[str, list] = {}
    for pair in decomposed:
        by_model.setdefault(pair[0].model, []).append(pair)
        by_queue.setdefault(pair[0].queue or "unknown", []).append(pair)
    summary["per_model"] = {model: block(pairs)
                            for model, pairs in sorted(by_model.items())}
    summary["per_queue"] = {queue: block(pairs)
                            for queue, pairs in sorted(by_queue.items())}

    # Prefill/decode split for LLM-shaped models (wall seconds over the
    # tail and the population; partitions kernel wall time exactly).
    llm: dict[str, Any] = {}
    for model, pairs in sorted(by_model.items()):
        names = _llm_name_sets(model)
        if names is None:
            continue
        tail_pairs = exact_cohorts(pairs, tail_fraction)["tail"]

        def split_total(subset: Sequence[tuple[Any, dict]]) -> dict:
            totals = {"prefill": Fraction(0), "decode": Fraction(0),
                      "other": Fraction(0)}
            for flight, _comp in subset:
                for phase, value in phase_split(flight, *names).items():
                    totals[phase] += value
            return {phase: float(value)
                    for phase, value in totals.items()}

        llm[model] = {"population": split_total(pairs),
                      "tail": split_total(tail_pairs)}
    if llm:
        summary["llm_phase_split"] = llm
    return summary


# -- metrics export --------------------------------------------------------
def export_attribution_metrics(flights: Sequence[Any], registry: Any,
                               prefix: str = "krisp") -> int:
    """Record per-request components into ``registry`` histograms.

    One ``{prefix}_attribution_seconds`` histogram series per component
    (labelled ``component=...``), a per-model end-to-end latency
    histogram, and shed/retry counters.  Returns the number of flights
    exported.  Deterministic given the same flights (the golden
    Prometheus test pins the output bytes).
    """
    from repro.obs.metrics import exponential_buckets

    buckets = exponential_buckets(1e-6, 4.0, 12)
    exported = 0
    for flight in flights:
        if flight.shed_reason is not None:
            registry.counter(
                f"{prefix}_attribution_shed_total",
                "requests dropped by guard rails",
                reason=flight.shed_reason).inc()
            continue
        if not flight.completed:
            continue
        components = decompose(flight)
        for name, value in components.items():
            registry.histogram(
                f"{prefix}_attribution_seconds",
                "per-request latency components",
                buckets=buckets, component=name).observe(float(value))
        registry.histogram(
            f"{prefix}_attribution_latency_seconds",
            "end-to-end latency of attributed requests",
            buckets=buckets, model=flight.model).observe(flight.latency)
        if flight.retries > 0:
            registry.counter(
                f"{prefix}_attribution_retried_total",
                "completed requests that were retried").inc()
        exported += 1
    return exported


# -- human-readable rendering ---------------------------------------------
def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def render_markdown_report(payload: dict[str, Any]) -> str:
    """Markdown view of a ``krisp-repro report`` JSON payload."""
    lines: list[str] = []
    config = payload.get("config", {})
    models = "+".join(config.get("model_names", ())) or "?"
    lines.append(f"# Latency attribution report — {models}")
    lines.append("")
    lines.append(f"- policy: `{config.get('policy', '?')}`, batch "
                 f"{config.get('batch_size', '?')}, seed "
                 f"{config.get('seed', '?')}")
    result = payload.get("result", {})
    if result:
        lines.append(f"- total throughput: {result.get('total_rps', 0):.0f} "
                     f"rps, max p95 {result.get('max_p95_ms', 0):.2f} ms")
    attribution = payload.get("attribution", {})
    lines.append(f"- requests attributed: {attribution.get('requests', 0)} "
                 f"(shed {attribution.get('shed', {}).get('total', 0)}, "
                 f"retried {attribution.get('retried', 0)})")
    lines.append(f"- tail diagnosis: "
                 f"**{attribution.get('diagnosis', 'n/a')}**")
    conservation = payload.get("conservation", {})
    if conservation:
        status = "exact" if conservation.get("exact") else "VIOLATED"
        lines.append(f"- conservation audit: {status} over "
                     f"{conservation.get('requests', 0)} requests")
    lines.append("")

    lines.append("## What the tail is made of")
    lines.append("")
    lines.append("| component | population share | tail (p95+) share | "
                 "median cohort share |")
    lines.append("|---|---|---|---|")
    population = attribution.get("population", {}).get("shares", {})
    tail = attribution.get("tail", {}).get("shares", {})
    median = attribution.get("median_cohort", {}).get("shares", {})
    for name in attribution.get("components", ()):
        lines.append(
            f"| {name} | {population.get(name, 0):.1%} "
            f"| {tail.get(name, 0):.1%} | {median.get(name, 0):.1%} |")
    lines.append("")

    per_model = attribution.get("per_model", {})
    if per_model:
        lines.append("## Per model")
        lines.append("")
        lines.append("| model | requests | mean latency (ms) | "
                     "tail diagnosis |")
        lines.append("|---|---|---|---|")
        for model, entry in per_model.items():
            pop = entry.get("population", {})
            count = pop.get("count", 0)
            mean = pop.get("latency_s", 0.0) / count if count else 0.0
            lines.append(f"| {model} | {count} | {_ms(mean)} "
                         f"| {entry.get('diagnosis', 'n/a')} |")
        lines.append("")

    slo = payload.get("slo", {})
    if slo:
        lines.append("## SLO attainment and burn rate")
        lines.append("")
        lines.append(f"- objective: {slo.get('objective', 0):.0%} within "
                     "the per-model threshold")
        lines.append("")
        lines.append("| model | threshold (ms) | attainment | burn rate | "
                     "budget consumed |")
        lines.append("|---|---|---|---|---|")
        for model, entry in slo.get("models", {}).items():
            attainment = entry.get("attainment")
            burn = entry.get("burn_rate")
            budget = entry.get("budget_consumed")
            lines.append(
                f"| {model} | {_ms(entry.get('threshold_s', 0.0))} "
                f"| {attainment:.1%} "
                f"| {burn:.2f} | {budget:.2f} |"
                if attainment is not None and burn is not None
                and budget is not None else
                f"| {model} | {_ms(entry.get('threshold_s', 0.0))} "
                f"| n/a | n/a | n/a |")
        lines.append("")
    return "\n".join(lines) + "\n"
