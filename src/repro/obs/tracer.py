"""Sim-clock tracer: typed spans, instants, counters, and flow events.

The tracer is the observability substrate the rest of the stack reports
into.  Components never construct trace events themselves — they call
*typed* hooks (``request_dequeued``, ``kernel_retired``,
``mask_decision``, ``barrier_injected``, ...) and the tracer turns those
into :class:`TraceRecord` entries stamped with the simulated clock it is
bound to.  Export produces Chrome Trace Event Format JSON that Perfetto
(or ``chrome://tracing``) loads directly:

* one *process* row group per stack layer (``server``, ``gpu``,
  ``runtime``, ``counters``) with one *thread* row per worker / stream /
  command processor;
* request lifecycle as complete spans (queue wait + service) on the
  worker's server row;
* kernel execution as complete spans on the worker's GPU row;
* command-processor mask-generation decisions and emulation barrier
  injections as instant events;
* **flow arrows** (``ph: s``/``f``) linking each request span to every
  kernel span it launched — the per-kernel visibility KRISP's analysis
  (paper Fig. 1/5, Algorithm 1) is built on.

Disabled tracing is the :data:`NULL_TRACER` singleton: every hook is a
no-op method and ``enabled`` is ``False``, so instrumentation sites guard
their argument construction with ``if tracer.enabled:`` and a disabled
run pays only an attribute read per hook site.

Determinism: exported traces contain no process-global identifiers —
requests and flows are renumbered in first-appearance order — so two
runs of the same seeded experiment serialise to byte-identical JSON
(pinned by ``tests/test_obs_tracer.py``).

This module depends only on the standard library (it is imported by
:mod:`repro.sim.engine`, the bottom of the stack); device, request, and
kernel objects are duck-typed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "TraceRecord",
    "Tracer",
    "events_from_kernel_records",
]


@dataclass
class TraceRecord:
    """One typed trace entry, timestamped in simulated seconds.

    ``kind`` is ``"span"`` (complete event with ``dur``), ``"instant"``,
    ``"counter"``, or ``"flow"`` (``flow_phase`` ``"s"``/``"f"``, paired
    by ``flow_id``).  ``process``/``thread`` name the timeline row; pids
    and tids are assigned at export time in first-appearance order.
    """

    kind: str
    process: str
    thread: str
    name: str
    ts: float
    dur: float = 0.0
    args: dict = field(default_factory=dict)
    flow_id: int = 0
    flow_phase: str = ""


class NullTracer:
    """Disabled tracing: every hook is a no-op.

    Kept deliberately free of any bookkeeping so the instrumented hot
    paths (kernel launch/retire, queue put/pop) cost one attribute read
    when tracing is off.
    """

    enabled = False

    def bind_clock(self, clock: Callable[[], float]) -> None: ...

    def request_arrival(self, request: Any) -> None: ...

    def request_enqueued(self, request: Any, queue_name: str) -> None: ...

    def request_dequeued(self, request: Any, worker: str) -> None: ...

    def service_phase(self, request: Any, worker: str, phase: str,
                      start: float, end: float) -> None: ...

    def request_completed(self, request: Any, worker: str) -> None: ...

    def kernel_launched(self, record: Any) -> None: ...

    def kernel_retired(self, record: Any) -> None: ...

    def mask_decision(self, launch: Any, mask: Any, device: Any) -> None: ...

    def barrier_injected(self, stream: str, kind: str,
                         kernel_name: str) -> None: ...

    def queue_depth(self, queue_name: str, depth: int) -> None: ...

    def counter_sample(self, name: str, value: float) -> None: ...

    def fault_injected(self, kind: str, args: Any = None) -> None: ...

    def fault_window(self, kind: str, start: float, end: float,
                     args: Any = None) -> None: ...

    def request_shed(self, request: Any, reason: str) -> None: ...

    def request_requeued(self, request: Any, worker: str) -> None: ...

    def worker_crashed(self, worker: str) -> None: ...

    def worker_restarted(self, worker: str) -> None: ...


#: The process-wide disabled tracer every :class:`~repro.sim.engine.
#: Simulator` starts with.
NULL_TRACER = NullTracer()


class Tracer:
    """Records typed spans, instants, counters, and request→kernel flows.

    Bind it to a simulator with
    :meth:`repro.sim.engine.Simulator.attach_tracer`; thereafter every
    instrumented component found through ``sim.tracer`` reports into it.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock: Callable[[], float] = clock if clock is not None \
            else (lambda: 0.0)
        self.records: list[TraceRecord] = []
        # Stable local renumbering of process-global request ids.
        self._request_local: dict[int, int] = {}
        # worker name -> (local request id, dequeue ts) for flow binding
        # at launch and in-flight span synthesis at export.
        self._active_request: dict[str, tuple[int, float]] = {}
        # launch_id -> (worker tag, local request id or None).
        self._open_kernels: dict[int, tuple[str, Optional[int]]] = {}
        self._next_flow = 0
        self.mask_decisions = 0
        self.barriers = 0
        self.requests_traced = 0
        self.kernels_traced = 0
        self.faults_traced = 0
        self.requests_shed = 0

    # -- clock -------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Read timestamps from ``clock`` (the simulator's ``now``)."""
        self._clock = clock

    @property
    def now(self) -> float:
        """Current trace timestamp in simulated seconds."""
        return self._clock()

    # -- generic recording -------------------------------------------------
    def span(self, process: str, thread: str, name: str, start: float,
             end: float, args: Optional[dict] = None) -> None:
        """Record a complete span on row (``process``, ``thread``)."""
        self.records.append(TraceRecord(
            "span", process, thread, name, start, end - start,
            args or {},
        ))

    def instant(self, process: str, thread: str, name: str,
                args: Optional[dict] = None) -> None:
        """Record an instant event at the current clock."""
        self.records.append(TraceRecord(
            "instant", process, thread, name, self.now, 0.0, args or {},
        ))

    def counter_sample(self, name: str, value: float) -> None:
        """Record one sample of a counter track at the current clock."""
        self.records.append(TraceRecord(
            "counter", "counters", name, name, self.now, 0.0,
            {"value": value},
        ))

    def _flow(self, process: str, thread: str, name: str, ts: float,
              flow_id: int, phase: str) -> None:
        self.records.append(TraceRecord(
            "flow", process, thread, name, ts, 0.0, {}, flow_id, phase,
        ))

    # -- request lifecycle (server layer) ----------------------------------
    def _local_request(self, request: Any) -> int:
        local = self._request_local.get(request.request_id)
        if local is None:
            local = len(self._request_local)
            self._request_local[request.request_id] = local
        return local

    def request_arrival(self, request: Any) -> None:
        """A client enqueued ``request`` (frontend instant)."""
        self.instant("server", "arrivals", request.model_name, {
            "request": self._local_request(request),
            "batch": request.batch_size,
        })

    def request_enqueued(self, request: Any, queue_name: str) -> None:
        """``request`` entered ``queue_name``.

        The Chrome trace already carries arrivals and queue-depth
        counters, so this hook records nothing here — it exists for the
        :class:`~repro.obs.flight.FlightRecorder`, which needs the
        per-request queue identity.  Deliberately a no-op to keep pinned
        trace exports byte-stable.
        """

    def request_dequeued(self, request: Any, worker: str) -> None:
        """``worker`` popped ``request``; emits its queue-wait span."""
        local = self._local_request(request)
        now = self.now
        self.span("server", worker, "queued", request.arrival_time, now,
                  {"request": local})
        self._active_request[worker] = (local, now)

    def service_phase(self, request: Any, worker: str, phase: str,
                      start: float, end: float) -> None:
        """A worker service phase boundary (``host_pre``/``burst``/
        ``gap``/``host_post``).

        No-op here for the same reason as :meth:`request_enqueued`: the
        request span already covers the service window in the Chrome
        view, and the phase decomposition belongs to the
        :class:`~repro.obs.flight.FlightRecorder`.
        """

    def request_completed(self, request: Any, worker: str) -> None:
        """``worker`` finished ``request``; emits its service span."""
        local = self._local_request(request)
        start = request.start_time if request.start_time is not None \
            else request.arrival_time
        self.span("server", worker, request.model_name, start, self.now, {
            "request": local,
            "batch": request.batch_size,
        })
        active = self._active_request.get(worker)
        if active is not None and active[0] == local:
            del self._active_request[worker]
        self.requests_traced += 1

    # -- kernel execution (GPU layer) --------------------------------------
    def kernel_launched(self, record: Any) -> None:
        """The device started executing a kernel (``KernelRecord``)."""
        launch = record.launch
        tag = launch.tag or "untagged"
        active = self._active_request.get(tag)
        self._open_kernels[launch.launch_id] = (
            tag, active[0] if active is not None else None,
        )

    def kernel_retired(self, record: Any) -> None:
        """The device retired a kernel: span + request→kernel flow arrow."""
        launch = record.launch
        tag, request_local = self._open_kernels.pop(
            launch.launch_id, (launch.tag or "untagged", None))
        start = record.start_time
        end = record.end_time if record.end_time is not None else self.now
        desc = launch.descriptor
        args: dict = {
            "cus": record.mask.count(),
            "per_se": list(record.mask.per_se_counts()),
            "workgroups": desc.workgroups,
            "requested_cus": launch.requested_cus,
        }
        if request_local is not None:
            args["request"] = request_local
        self.span("gpu", tag, desc.name, start, end, args)
        self.kernels_traced += 1
        if request_local is not None:
            # Arrow from the request span (worker server row, bound at
            # the kernel's dispatch time, which lies inside the span) to
            # the kernel span (worker GPU row, bound at its start).
            flow_id = self._next_flow
            self._next_flow += 1
            name = f"req{request_local}"
            self._flow("server", tag, name, start, flow_id, "s")
            self._flow("gpu", tag, name, start, flow_id, "f")

    # -- command processor / runtime ---------------------------------------
    def mask_decision(self, launch: Any, mask: Any, device: Any) -> None:
        """Resource-mask generation chose ``mask`` for ``launch``."""
        topology = device.topology
        counters = device.counters
        requested = launch.requested_cus
        if requested is None:
            requested = topology.total_cus
        granted = mask.count()
        self.instant("gpu", "command-processor", "mask-gen", {
            "kernel": launch.descriptor.name,
            "requested_cus": requested,
            "granted_cus": granted,
            "per_se": list(mask.per_se_counts()),
            "se_loads": [counters.se_load(se)
                         for se in range(topology.num_se)],
            "busy_cus": counters.busy_cus(),
            "short": granted < min(requested, topology.total_cus),
        })
        self.mask_decisions += 1

    def barrier_injected(self, stream: str, kind: str,
                         kernel_name: str) -> None:
        """The emulation path injected a barrier packet (``B1``/``B2``)."""
        self.instant("runtime", stream, kind, {"kernel": kernel_name})
        self.barriers += 1

    def queue_depth(self, queue_name: str, depth: int) -> None:
        """The request queue's depth changed (counter track)."""
        self.counter_sample(f"queue:{queue_name}", depth)

    # -- faults and SLO guard rails ------------------------------------------
    def fault_injected(self, kind: str, args: Optional[dict] = None) -> None:
        """A fault-schedule event fired (instant on the ``faults`` row)."""
        self.instant("faults", "injector", kind, args or {})
        self.faults_traced += 1

    def fault_window(self, kind: str, start: float, end: float,
                     args: Optional[dict] = None) -> None:
        """A windowed fault (straggler, spike, storm) as a span."""
        self.span("faults", "injector", kind, start, end, args or {})
        self.faults_traced += 1

    def request_shed(self, request: Any, reason: str) -> None:
        """A guard rail dropped ``request`` (``reason``: admission /
        deadline / retries)."""
        self.instant("server", "shed", reason, {
            "request": self._local_request(request),
            "model": request.model_name,
            "retries": request.retries,
        })
        self.requests_shed += 1

    def request_requeued(self, request: Any, worker: str) -> None:
        """``request`` was re-queued after ``worker`` crashed under it."""
        self.instant("server", worker, "requeued", {
            "request": self._local_request(request),
            "retries": request.retries,
        })

    def worker_crashed(self, worker: str) -> None:
        """``worker`` crashed (fault injection)."""
        self.instant("server", worker, "crashed")
        active = self._active_request.get(worker)
        if active is not None:
            del self._active_request[worker]

    def worker_restarted(self, worker: str) -> None:
        """``worker`` finished reloading and is serving again."""
        self.instant("server", worker, "restarted")

    # -- export ------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Record counts by kind (for summaries and tests)."""
        out = {"span": 0, "instant": 0, "counter": 0, "flow": 0}
        for record in self.records:
            out[record.kind] += 1
        return out

    def to_chrome_trace(self) -> dict:
        """The whole trace as a Chrome Trace Event Format object."""
        pid_of: dict[str, int] = {}
        tid_of: dict[tuple[str, str], int] = {}
        events: list[dict] = []

        def row(process: str, thread: str) -> tuple[int, int]:
            pid = pid_of.get(process)
            if pid is None:
                pid = len(pid_of) + 1
                pid_of[process] = pid
                events.append({"name": "process_name", "ph": "M",
                               "pid": pid, "tid": 0,
                               "args": {"name": process}})
            key = (process, thread)
            tid = tid_of.get(key)
            if tid is None:
                tid = sum(1 for p, _t in tid_of if p == process) + 1
                tid_of[key] = tid
                events.append({"name": "thread_name", "ph": "M",
                               "pid": pid, "tid": tid,
                               "args": {"name": thread}})
            return pid, tid

        for record in self.records:
            ts = record.ts * 1e6
            if record.kind == "span":
                pid, tid = row(record.process, record.thread)
                events.append({"name": record.name, "ph": "X", "pid": pid,
                               "tid": tid, "ts": ts,
                               "dur": record.dur * 1e6,
                               "args": record.args})
            elif record.kind == "instant":
                pid, tid = row(record.process, record.thread)
                events.append({"name": record.name, "ph": "i", "s": "t",
                               "pid": pid, "tid": tid, "ts": ts,
                               "args": record.args})
            elif record.kind == "counter":
                pid, _tid = row(record.process, record.thread)
                events.append({"name": record.name, "ph": "C", "pid": pid,
                               "tid": 0, "ts": ts, "args": record.args})
            else:  # flow
                pid, tid = row(record.process, record.thread)
                event = {"name": record.name, "cat": "flow",
                         "ph": record.flow_phase, "id": record.flow_id,
                         "pid": pid, "tid": tid, "ts": ts}
                if record.flow_phase == "f":
                    event["bp"] = "e"
                events.append(event)

        # Requests still being serviced when recording stopped have no
        # completion span yet; synthesize a truncated one so their flow
        # arrows (and queue-wait spans) still have a slice to bind to.
        if self._active_request:
            end = max((r.ts + r.dur for r in self.records), default=0.0)
            for worker in sorted(self._active_request):
                local, start = self._active_request[worker]
                pid, tid = row("server", worker)
                events.append({"name": "in-flight", "ph": "X", "pid": pid,
                               "tid": tid, "ts": start * 1e6,
                               "dur": max(0.0, end - start) * 1e6,
                               "args": {"request": local,
                                        "truncated": True}})
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: Union[str, Path]) -> int:
        """Write the Perfetto-loadable JSON; returns the event count."""
        payload = self.to_chrome_trace()
        Path(path).write_text(json.dumps(payload, separators=(",", ":")))
        return len(payload["traceEvents"])


def events_from_kernel_records(trace: Sequence[Any]) -> list[dict]:
    """Chrome trace events for a device kernel trace (``device.trace``).

    The pre-tracer export path: one thread row per worker tag, complete
    ``X`` events for finished kernels with their CU-mask metadata.
    :mod:`repro.analysis.trace_export` wraps this for backward
    compatibility; new code should record through :class:`Tracer`.
    """
    tags = sorted({record.launch.tag or "untagged" for record in trace})
    tid_of = {tag: index + 1 for index, tag in enumerate(tags)}
    events: list[dict] = [
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
         "args": {"name": tag}}
        for tag, tid in tid_of.items()
    ]
    for record in trace:
        if record.end_time is None:
            continue
        desc = record.launch.descriptor
        events.append({
            "name": desc.name,
            "ph": "X",
            "pid": 1,
            "tid": tid_of[record.launch.tag or "untagged"],
            "ts": record.start_time * 1e6,
            "dur": (record.end_time - record.start_time) * 1e6,
            "args": {
                "cus": record.mask.count(),
                "per_se": record.mask.per_se_counts(),
                "workgroups": desc.workgroups,
                "requested_cus": record.launch.requested_cus,
            },
        })
    return events
