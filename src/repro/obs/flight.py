"""Per-request flight recording: the raw material of latency attribution.

A :class:`FlightRecorder` is a tracer-protocol observer (it plugs into
``sim.tracer`` exactly like :class:`~repro.obs.tracer.Tracer`, alone or
fanned out through :class:`TeeTracer`) that captures one
:class:`RequestFlight` per request: every enqueue, every dequeue, the
worker's service-phase boundaries (host pre-processing, each kernel
burst, inter-segment gaps, host post-processing), and the execution
window plus isolated-ideal floor of every kernel the request launched.

The recorder is pure observation — it never schedules events, draws
random numbers, or mutates any simulation object — so a recorded run is
bit-identical to an unrecorded one, and when it is absent the
instrumentation sites cost one ``tracer.enabled`` attribute read
(:data:`~repro.obs.tracer.NULL_TRACER` semantics).

Timestamps are the simulator's own floats, captured once per boundary
and threaded so that consecutive phases share their boundary *bitwise*:
``host_pre.end is burst[0].start`` and so on.  That construction is what
lets :mod:`repro.obs.attribution` decompose end-to-end latency into
components that sum *exactly* (as rationals over the recorded floats —
every float is a dyadic rational, so ``fractions.Fraction`` arithmetic
on them is exact) with no tolerance.

Crash/retry semantics: each dequeue starts a new *attempt*; phase marks
of an aborted attempt are discarded on the next dequeue, and kernels are
bound to the attempt that launched them, so attribution always describes
the attempt that actually completed while ``retry_wait`` absorbs the
aborted time.  Like the tracer, this module is standard-library-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs.tracer import NullTracer

__all__ = [
    "FlightRecorder",
    "KernelWindow",
    "PhaseMark",
    "RequestFlight",
    "TeeTracer",
    "compose_tracers",
]


@dataclass(frozen=True)
class KernelWindow:
    """One kernel execution window attributed to a request attempt.

    ``floor`` is the kernel's isolated-ideal latency for the mask it was
    actually granted (``KernelRecord.floor_latency``) — the time it
    would have taken with no co-resident contention, no bandwidth
    throttling, and no fault slowdown.
    """

    name: str
    start: float
    end: float
    floor: float
    attempt: int


@dataclass(frozen=True)
class PhaseMark:
    """One worker service phase: ``host_pre``/``burst``/``gap``/
    ``host_post``, with bitwise-shared boundaries."""

    phase: str
    start: float
    end: float


@dataclass
class RequestFlight:
    """The full observed timeline of one inference request."""

    index: int
    model: str
    batch_size: int
    arrival_time: float
    output_tokens: Optional[int] = None
    injected: bool = False
    #: First queue the request entered (``wl-{model}`` under the
    #: workload engine, ``q{i}``/``shared`` on the legacy paths).
    queue: str = ""
    #: ``(time, queue_name)`` per admission (retries re-enqueue).
    enqueues: list = field(default_factory=list)
    #: ``(time, worker_name)`` per dequeue; each one starts an attempt.
    dequeues: list = field(default_factory=list)
    #: Service-phase marks of the *latest* attempt only.
    phases: list = field(default_factory=list)
    #: Kernel windows across every attempt (see ``KernelWindow.attempt``).
    kernels: list = field(default_factory=list)
    completion_time: Optional[float] = None
    shed_reason: Optional[str] = None
    shed_time: Optional[float] = None
    retries: int = 0
    attempts: int = 0

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def latency(self) -> float:
        """End-to-end latency (arrival to completion), in seconds."""
        if self.completion_time is None:
            raise ValueError(f"flight {self.index} did not complete")
        return self.completion_time - self.arrival_time

    def final_kernels(self) -> list:
        """Kernel windows of the attempt that completed."""
        return [k for k in self.kernels if k.attempt == self.attempts]


class FlightRecorder(NullTracer):
    """Tracer-protocol recorder building one flight per request.

    Subclasses :class:`~repro.obs.tracer.NullTracer` so every protocol
    hook exists; only the request/kernel/phase hooks are overridden.
    Attach it as the ``recorder`` keyword of ``run_experiment`` /
    ``run_rate_experiment`` / ``ServingSetup.build`` (composable with a
    :class:`~repro.obs.tracer.Tracer` via :class:`TeeTracer`).
    """

    enabled = True

    def __init__(self) -> None:
        self._clock: Callable[[], float] = lambda: 0.0
        #: request_id -> flight (request ids are process-global; flights
        #: carry their own first-appearance ``index`` instead).
        self._flights: dict[int, RequestFlight] = {}
        self._order: list[RequestFlight] = []
        #: worker name -> in-service flight (for kernel binding).
        self._active: dict[str, RequestFlight] = {}
        #: launch_id -> (flight, attempt) bound at kernel launch.
        self._open: dict[int, tuple[RequestFlight, int]] = {}

    # -- clock -------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    # -- flight store ------------------------------------------------------
    def _flight(self, request: Any) -> RequestFlight:
        flight = self._flights.get(request.request_id)
        if flight is None:
            flight = RequestFlight(
                index=len(self._order),
                model=request.model_name,
                batch_size=request.batch_size,
                arrival_time=request.arrival_time,
                output_tokens=request.output_tokens,
                injected=request.injected,
            )
            self._flights[request.request_id] = flight
            self._order.append(flight)
        return flight

    def flights(self) -> list[RequestFlight]:
        """Every observed flight, in first-appearance order."""
        return list(self._order)

    def completed_flights(self) -> list[RequestFlight]:
        """Flights that completed, in first-appearance order."""
        return [f for f in self._order if f.completed]

    def shed_flights(self) -> list[RequestFlight]:
        """Flights dropped by a guard rail, in first-appearance order."""
        return [f for f in self._order if f.shed_reason is not None]

    # -- request lifecycle -------------------------------------------------
    def request_arrival(self, request: Any) -> None:
        self._flight(request)

    def request_enqueued(self, request: Any, queue_name: str) -> None:
        flight = self._flight(request)
        flight.enqueues.append((self.now, queue_name))
        if not flight.queue:
            flight.queue = queue_name

    def request_dequeued(self, request: Any, worker: str) -> None:
        flight = self._flight(request)
        flight.attempts += 1
        flight.dequeues.append((self.now, worker))
        flight.retries = request.retries
        # A fresh attempt invalidates any marks from an aborted one.
        flight.phases = []
        self._active[worker] = flight

    def service_phase(self, request: Any, worker: str, phase: str,
                      start: float, end: float) -> None:
        self._flight(request).phases.append(PhaseMark(phase, start, end))

    def request_completed(self, request: Any, worker: str) -> None:
        flight = self._flight(request)
        flight.completion_time = request.completion_time \
            if request.completion_time is not None else self.now
        active = self._active.get(worker)
        if active is flight:
            del self._active[worker]

    def request_shed(self, request: Any, reason: str) -> None:
        flight = self._flight(request)
        flight.shed_reason = reason
        flight.shed_time = self.now
        flight.retries = request.retries

    def request_requeued(self, request: Any, worker: str) -> None:
        self._flight(request).retries = request.retries

    def worker_crashed(self, worker: str) -> None:
        self._active.pop(worker, None)

    # -- kernel execution --------------------------------------------------
    def kernel_launched(self, record: Any) -> None:
        launch = record.launch
        flight = self._active.get(launch.tag or "")
        if flight is not None:
            self._open[launch.launch_id] = (flight, flight.attempts)

    def kernel_retired(self, record: Any) -> None:
        launch = record.launch
        bound = self._open.pop(launch.launch_id, None)
        if bound is None:
            return
        flight, attempt = bound
        end = record.end_time if record.end_time is not None else self.now
        flight.kernels.append(KernelWindow(
            name=launch.descriptor.name,
            start=record.start_time,
            end=end,
            floor=record.floor_latency,
            attempt=attempt,
        ))


class TeeTracer:
    """Fan one instrumentation stream out to several tracer-protocol
    observers (e.g. a :class:`~repro.obs.tracer.Tracer` *and* a
    :class:`FlightRecorder` on the same run).

    Hook methods are synthesized on first use and cached; each fans the
    call out to every live observer in construction order.
    """

    enabled = True

    def __init__(self, *tracers: Any) -> None:
        self._tracers = tuple(
            t for t in tracers
            if t is not None and getattr(t, "enabled", False))

    def bind_clock(self, clock: Callable[[], float]) -> None:
        for tracer in self._tracers:
            tracer.bind_clock(clock)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        targets = [getattr(tracer, name) for tracer in self._tracers]

        def fan_out(*args: Any, **kwargs: Any) -> None:
            for target in targets:
                target(*args, **kwargs)

        fan_out.__name__ = name
        setattr(self, name, fan_out)
        return fan_out


def compose_tracers(*tracers: Any) -> Optional[Any]:
    """The cheapest tracer covering every live observer.

    ``None`` and disabled tracers are dropped; zero live observers
    composes to ``None`` (the caller keeps :data:`~repro.obs.tracer
    .NULL_TRACER` semantics), one passes through unchanged, several tee.
    """
    live = [t for t in tracers
            if t is not None and getattr(t, "enabled", False)]
    if not live:
        return None
    if len(live) == 1:
        return live[0]
    return TeeTracer(*live)
