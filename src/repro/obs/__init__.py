"""Unified observability layer: tracing, metrics, sampling, attribution.

* :mod:`repro.obs.tracer` — typed spans/instants/counters/flows driven
  by the simulator clock, exported as Perfetto-loadable Chrome traces;
  :data:`~repro.obs.tracer.NULL_TRACER` is the zero-overhead disabled
  default every :class:`~repro.sim.engine.Simulator` starts with.
* :mod:`repro.obs.metrics` — counter/gauge/streaming-histogram registry
  with JSON and Prometheus text export.
* :mod:`repro.obs.sampler` — periodic sampling of CU occupancy, per-SE
  load, queue depth, and bandwidth pressure into a registry.
* :mod:`repro.obs.flight` — per-request flight recording (enqueue →
  dequeue → service phases → per-kernel windows), the raw material of
  latency attribution; :class:`~repro.obs.flight.TeeTracer` composes it
  with the Chrome tracer on one run.
* :mod:`repro.obs.attribution` — exact (Fraction-arithmetic, zero
  tolerance) latency decomposition, tail-cohort analysis, and the
  queueing- vs contention-dominated diagnosis.
* :mod:`repro.obs.slo_report` — windowed SLO attainment, burn rate,
  and error-budget accounting over sim time.

The core modules are standard-library-only so any layer of the stack
(including :mod:`repro.sim.engine`) can import them without cycles;
attribution/slo_report lazily reach into the model zoo / SLO targets
only when asked to.
"""

from repro.obs.attribution import (
    COMPONENTS,
    decompose,
    diagnose,
    export_attribution_metrics,
    render_markdown_report,
    summarize,
)
from repro.obs.flight import (
    FlightRecorder,
    KernelWindow,
    PhaseMark,
    RequestFlight,
    TeeTracer,
    compose_tracers,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    linear_buckets,
)
from repro.obs.sampler import SimSampler
from repro.obs.slo_report import build_slo_report
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceRecord, Tracer

__all__ = [
    "COMPONENTS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KernelWindow",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PhaseMark",
    "RequestFlight",
    "SimSampler",
    "TeeTracer",
    "TraceRecord",
    "Tracer",
    "build_slo_report",
    "compose_tracers",
    "decompose",
    "diagnose",
    "export_attribution_metrics",
    "exponential_buckets",
    "linear_buckets",
    "render_markdown_report",
    "summarize",
]
