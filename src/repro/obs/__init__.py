"""Unified observability layer: tracing, metrics, and sim-time sampling.

* :mod:`repro.obs.tracer` — typed spans/instants/counters/flows driven
  by the simulator clock, exported as Perfetto-loadable Chrome traces;
  :data:`~repro.obs.tracer.NULL_TRACER` is the zero-overhead disabled
  default every :class:`~repro.sim.engine.Simulator` starts with.
* :mod:`repro.obs.metrics` — counter/gauge/streaming-histogram registry
  with JSON and Prometheus text export.
* :mod:`repro.obs.sampler` — periodic sampling of CU occupancy, per-SE
  load, queue depth, and bandwidth pressure into a registry.

All three modules are standard-library-only so any layer of the stack
(including :mod:`repro.sim.engine`) can import them without cycles.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    linear_buckets,
)
from repro.obs.sampler import SimSampler
from repro.obs.tracer import NULL_TRACER, NullTracer, TraceRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SimSampler",
    "TraceRecord",
    "Tracer",
    "exponential_buckets",
    "linear_buckets",
]
