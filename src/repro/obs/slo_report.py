"""Windowed SLO attainment, burn rate, and error-budget accounting.

Takes the flights of a :class:`~repro.obs.flight.FlightRecorder` and
reports SRE-style service-level accounting over *simulated* time:

* **attainment** — the fraction of disposed requests (completions plus
  sheds) whose end-to-end latency met the per-model threshold; a shed
  request never met anything and counts as a miss at its shed time;
* **burn rate** — miss fraction over the allowed miss fraction
  ``1 - objective``; a burn rate of 1.0 consumes the error budget
  exactly as fast as the objective allows, 2.0 twice as fast;
* **error budget** — ``budget_consumed`` is the fraction of the run's
  allowed misses already spent (may exceed 1.0 when the SLO is blown).

The report is windowed (``window_count`` equal slices of the accounting
span) so a fault window or a load knee shows up as a burn-rate spike
rather than disappearing into the run-wide average, and broken down per
model (per-model thresholds default to the repo's standard
``slo_target`` — 2x the isolated p95 — but any mapping can be passed,
which the unit tests use to stay hermetic).

Everything returned is JSON-native and deterministic given the same
flights: dict keys are sorted, floats are untouched simulator floats.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

__all__ = ["DEFAULT_OBJECTIVE", "build_slo_report"]

#: Default SLO objective: 95% of requests within the threshold.
DEFAULT_OBJECTIVE = 0.95


def _default_threshold(model: str, batch_size: int) -> float:
    from repro.server.experiment import slo_target
    return slo_target(model, batch_size)


def build_slo_report(
    flights: Sequence[Any],
    *,
    objective: float = DEFAULT_OBJECTIVE,
    span: Optional[tuple[float, float]] = None,
    window_count: int = 8,
    threshold_for: Optional[Callable[[str, int], float]] = None,
) -> dict[str, Any]:
    """SLO attainment / burn-rate / error-budget report over ``flights``.

    ``span`` bounds the accounting to dispositions (completion or shed)
    inside ``[start, end]``; the default covers every disposition.
    ``threshold_for(model, batch_size)`` supplies the latency threshold
    per model (default: the repo's 2x-isolated ``slo_target``).
    """
    if not 0.0 < objective < 1.0:
        raise ValueError("objective must be in (0, 1)")
    if window_count < 1:
        raise ValueError("window_count must be >= 1")
    threshold_for = threshold_for or _default_threshold

    # (time, model, met) per disposed request, in flight order.
    disposed: list[tuple[float, str, bool]] = []
    thresholds: dict[str, float] = {}
    for flight in flights:
        if flight.model not in thresholds:
            thresholds[flight.model] = threshold_for(flight.model,
                                                     flight.batch_size)
        if flight.completed:
            time = flight.completion_time
            met = flight.latency <= thresholds[flight.model]
        elif flight.shed_reason is not None:
            time = flight.shed_time
            met = False
        else:
            continue
        if span is not None and not span[0] <= time <= span[1]:
            continue
        disposed.append((time, flight.model, met))

    if span is None:
        times = [time for time, _model, _met in disposed]
        span = (min(times), max(times)) if times else (0.0, 0.0)
    start, end = span
    width = (end - start) / window_count if end > start else 0.0
    allowed = 1.0 - objective

    def rates(total: int, missed: int) -> dict[str, Optional[float]]:
        if total == 0:
            return {"attainment": None, "burn_rate": None,
                    "budget_consumed": None}
        miss_fraction = missed / total
        return {
            "attainment": 1.0 - miss_fraction,
            "burn_rate": miss_fraction / allowed,
            "budget_consumed": missed / (allowed * total),
        }

    windows: list[dict[str, Any]] = []
    for index in range(window_count):
        window_start = start + index * width
        # The final window is end-inclusive so every disposition lands
        # in exactly one window and totals conserve.
        window_end = end if index == window_count - 1 \
            else start + (index + 1) * width
        in_window = [
            (model, met) for time, model, met in disposed
            if (window_start <= time < window_end
                or (index == window_count - 1
                    and window_start <= time <= window_end))
        ]
        total = len(in_window)
        missed = sum(1 for _model, met in in_window if not met)
        windows.append({
            "start": window_start,
            "end": window_end,
            "total": total,
            "missed": missed,
            **rates(total, missed),
        })

    models: dict[str, Any] = {}
    for model in sorted({model for _time, model, _met in disposed}
                        | set(thresholds)):
        rows = [met for _time, m, met in disposed if m == model]
        total = len(rows)
        missed = sum(1 for met in rows if not met)
        models[model] = {
            "threshold_s": thresholds.get(model),
            "total": total,
            "missed": missed,
            **rates(total, missed),
        }

    total = len(disposed)
    missed = sum(1 for _time, _model, met in disposed if not met)
    return {
        "objective": objective,
        "span": [start, end],
        "window_s": width,
        "overall": {"total": total, "missed": missed,
                    **rates(total, missed)},
        "models": models,
        "windows": windows,
    }
