"""Metrics registry: counters, gauges, and streaming histograms.

A :class:`MetricsRegistry` is the numeric half of the observability
layer (the tracer being the event half): components and the sim-time
sampler record into named metric families — optionally labelled, in the
Prometheus data-model sense — and the registry exports everything as
JSON or as Prometheus text exposition format.

Histograms are *streaming*: fixed bucket bounds chosen at creation plus
running count/sum/min/max, so memory stays O(buckets) regardless of how
many samples a long simulation feeds in.  Percentiles are bucket-bound
estimates (exact for values landing on bounds, otherwise the bucket's
upper bound capped at the observed maximum).

Standard-library only, like the tracer, so any layer of the stack may
import it without cycles.
"""

from __future__ import annotations

import bisect
import math
import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exponential_buckets",
    "linear_buckets",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = tuple[tuple[str, str], ...]


def exponential_buckets(start: float, factor: float,
                        count: int) -> tuple[float, ...]:
    """``count`` geometric bucket bounds starting at ``start``."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor ** i for i in range(count))


def linear_buckets(start: float, width: float,
                   count: int) -> tuple[float, ...]:
    """``count`` evenly spaced bucket bounds starting at ``start``."""
    if width <= 0 or count < 1:
        raise ValueError("need width > 0, count >= 1")
    return tuple(start + width * i for i in range(count))


#: Default histogram bounds: 1 µs .. ~67 s, factor 2 (latency-shaped).
DEFAULT_BUCKETS = exponential_buckets(1e-6, 2.0, 27)


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Histogram:
    """A streaming histogram over fixed bucket bounds.

    ``bounds`` are inclusive upper bounds; one overflow bucket catches
    everything above the last bound (Prometheus ``+Inf`` semantics).
    """

    name: str
    labels: LabelKey = ()
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("bucket bounds must be ascending")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Bucket-bound estimate of the ``pct``-th percentile."""
        if self.count == 0:
            raise ValueError(f"histogram {self.name} has no samples")
        if not 0 < pct <= 100:
            raise ValueError(f"pct={pct} out of (0, 100]")
        target = max(1, math.ceil(pct / 100.0 * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(self.bounds):
                    return min(self.bounds[index], self.max)
                return self.max
        return self.max  # pragma: no cover - cumulative always reaches count

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
        out.append((math.inf, self.count))
        return out


@dataclass
class _Family:
    """One named metric family: a type, help text, and labelled series."""

    kind: str
    help: str
    buckets: Optional[tuple[float, ...]] = None
    series: dict[LabelKey, Any] = field(default_factory=dict)


def _label_key(labels: dict[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    """Label-value escaping per the text-format spec (version 0.0.4).

    Order matters: the backslash must be doubled *first*, or the
    backslashes introduced for quotes/newlines would themselves be
    re-escaped.  Label values escape all three of backslash, quote, and
    newline.
    """
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    """HELP-text escaping: backslash and newline only (quotes stay raw
    in HELP lines per the spec), backslash first for the same reason as
    :func:`_escape`."""
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_labels(labels: LabelKey, extra: Iterable[tuple[str, str]] = ()
                   ) -> str:
    pairs = [f'{k}="{_escape(v)}"' for k, v in (*labels, *extra)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Get-or-create registry of counters, gauges, and histograms.

    Metric families are keyed by name; calling the factory again with
    the same name and labels returns the existing series, so call sites
    do not need to share metric handles explicitly.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # -- factories ---------------------------------------------------------
    def _family(self, name: str, kind: str, help: str,
                buckets: Optional[tuple[float, ...]] = None) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(kind=kind, help=help, buckets=buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}"
            )
        if help and not family.help:
            family.help = help
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        family = self._family(name, "counter", help)
        key = _label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = Counter(name, key)
            family.series[key] = series
        return series

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        family = self._family(name, "gauge", help)
        key = _label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = Gauge(name, key)
            family.series[key] = series
        return series

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  **labels: str) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``.

        ``buckets`` is honoured on first creation of the family; later
        calls reuse the family's bounds.
        """
        bounds = tuple(buckets) if buckets is not None else None
        family = self._family(name, "histogram", help, buckets=bounds)
        if family.buckets is None:
            family.buckets = bounds if bounds is not None else DEFAULT_BUCKETS
        key = _label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = Histogram(name, key, bounds=family.buckets)
            family.series[key] = series
        return series

    # -- export ------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        """JSON-native dump of every family and series."""
        out: dict[str, Any] = {}
        for name, family in sorted(self._families.items()):
            series_payload = []
            for key, series in sorted(family.series.items()):
                entry: dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry.update(
                        count=series.count,
                        sum=series.sum,
                        min=None if series.count == 0 else series.min,
                        max=None if series.count == 0 else series.max,
                        buckets=[
                            [None if math.isinf(bound) else bound, cum]
                            for bound, cum in series.cumulative_buckets()
                        ],
                    )
                else:
                    entry["value"] = series.value
                series_payload.append(entry)
            out[name] = {"type": family.kind, "help": family.help,
                         "series": series_payload}
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name, family in sorted(self._families.items()):
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, series in sorted(family.series.items()):
                if family.kind == "histogram":
                    for bound, cumulative in series.cumulative_buckets():
                        labels = _format_labels(
                            key, [("le", _format_value(bound))])
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    suffix = _format_labels(key)
                    lines.append(
                        f"{name}_sum{suffix} {_format_value(series.sum)}")
                    lines.append(f"{name}_count{suffix} {series.count}")
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} "
                        f"{_format_value(series.value)}"
                    )
        return "\n".join(lines) + "\n"

    def summary_lines(self) -> list[str]:
        """Short human-readable lines (for CLI output)."""
        lines: list[str] = []
        for name, family in sorted(self._families.items()):
            for key, series in sorted(family.series.items()):
                labels = _format_labels(key)
                if family.kind == "histogram":
                    if series.count == 0:
                        lines.append(f"{name}{labels}: no samples")
                        continue
                    lines.append(
                        f"{name}{labels}: n={series.count} "
                        f"mean={series.mean:.4g} "
                        f"p50~{series.percentile(50):.4g} "
                        f"p99~{series.percentile(99):.4g} "
                        f"max={series.max:.4g}"
                    )
                else:
                    lines.append(
                        f"{name}{labels}: {_format_value(series.value)}")
        return lines

    def __len__(self) -> int:
        return sum(len(f.series) for f in self._families.values())
