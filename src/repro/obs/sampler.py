"""Sim-time sampling of device and server state into a metrics registry.

A :class:`SimSampler` is a recurring simulator event that snapshots the
observable state of one experiment cell at a fixed simulated interval:

* CU occupancy (busy CUs, plus a streaming histogram of its
  distribution — the Fig. 5 under-utilisation view);
* per-SE kernel load (Algorithm 1's decision input);
* running kernel count;
* memory-bandwidth pressure (total resident demand over the device
  budget);
* request-queue depths.

Samples land in gauges/histograms of a :class:`~repro.obs.metrics.
MetricsRegistry` and — when tracing is enabled on the simulator — as
Chrome counter tracks, so Perfetto shows occupancy and bandwidth
pressure directly under the kernel timeline.

Sampling is read-only: it never mutates device, queue, or RNG state, so
a sampled run produces bit-identical experiment results to an unsampled
one.  Device and queues are duck-typed (standard-library-only module).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, linear_buckets

__all__ = ["SimSampler"]

#: Default sampling period in simulated seconds (250 µs: ~4k samples per
#: second of simulated serving, fine enough to catch per-kernel phases).
DEFAULT_INTERVAL = 250e-6

#: Sampling runs at low priority so a tick scheduled at the same instant
#: as a launch/retire observes the post-transition state.
_SAMPLE_PRIORITY = 100


class SimSampler:
    """Periodic sim-clock sampler for one device (plus request queues)."""

    def __init__(
        self,
        sim: Any,
        device: Any,
        registry: MetricsRegistry,
        queues: Sequence[Any] = (),
        interval: float = DEFAULT_INTERVAL,
        prefix: str = "krisp",
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be > 0")
        self.sim = sim
        self.device = device
        self.registry = registry
        #: Live view of the cell's queues: the sequence the caller owns
        #: (``ServingSetup.queues``), NOT a copy, so queues created
        #: after the sampler — per-model ``wl-{model}`` queues of a
        #: workload attached later, autoscaler pools — are sampled too.
        self.queues = queues
        self.interval = interval
        self.prefix = prefix
        self.stop_time: Optional[float] = None
        # Lazy import: repro.profiling's package init pulls in the model
        # profiler, which imports the engine (circular at module level).
        from repro.profiling import simprofile
        self._simprofile = simprofile

        topology = device.topology
        self._occupancy = registry.gauge(
            f"{prefix}_cu_occupancy", "CUs with at least one resident kernel")
        self._occupancy_hist = registry.histogram(
            f"{prefix}_cu_occupancy_hist",
            "sampled distribution of busy CUs",
            buckets=linear_buckets(4.0, 4.0, topology.total_cus // 4),
        )
        self._running = registry.gauge(
            f"{prefix}_running_kernels", "kernels currently executing")
        self._se_load = [
            registry.gauge(f"{prefix}_se_load",
                           "sum of per-CU kernel counts in the SE",
                           se=str(se))
            for se in range(topology.num_se)
        ]
        self._bw_pressure = registry.gauge(
            f"{prefix}_mem_bw_pressure",
            "total resident bandwidth demand over the device budget")
        self._bw_hist = registry.histogram(
            f"{prefix}_mem_bw_pressure_hist",
            "sampled distribution of bandwidth pressure",
            buckets=linear_buckets(0.25, 0.25, 16),
        )
        # Queue-depth gauges are created lazily in :meth:`sample` so a
        # queue named after construction still gets its series on the
        # next tick.
        self._queue_depth: dict[str, Any] = {}
        self._samples = registry.counter(
            f"{prefix}_samples_total", "sim-time samples taken")

    def start(self, stop_time: Optional[float] = None) -> None:
        """Begin sampling now; stop after ``stop_time`` (None = never).

        The sampler re-arms itself while the simulation has events, so a
        bounded ``stop_time`` keeps ``sim.run(until=...)`` loops from
        ticking forever on sampler events alone.
        """
        self.stop_time = stop_time
        self.sim.schedule(self.sim.now, self._tick, priority=_SAMPLE_PRIORITY)

    def _tick(self) -> None:
        self.sample()
        next_time = self.sim.now + self.interval
        if self.stop_time is None or next_time <= self.stop_time:
            self.sim.schedule(next_time, self._tick,
                              priority=_SAMPLE_PRIORITY)

    def sample(self) -> None:
        """Take one snapshot at the current simulated time."""
        profiler = self._simprofile._ACTIVE
        if profiler is not None:
            from time import perf_counter
            t0 = perf_counter()
        device = self.device
        counters = device.counters
        busy = counters.busy_cus()
        self._occupancy.set(busy)
        self._occupancy_hist.observe(busy)
        self._running.set(device.running_count())
        for se, gauge in enumerate(self._se_load):
            gauge.set(counters.se_load(se))
        pressure = (device.bandwidth_demand
                    / device.exec_config.mem_bandwidth_budget)
        self._bw_pressure.set(pressure)
        self._bw_hist.observe(pressure)
        for queue in self.queues:
            gauge = self._queue_depth.get(queue.name)
            if gauge is None:
                gauge = self.registry.gauge(
                    f"{self.prefix}_queue_depth",
                    "pending requests in the queue", queue=queue.name)
                self._queue_depth[queue.name] = gauge
            gauge.set(len(queue))
        self._samples.inc()

        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.counter_sample("cu_occupancy", busy)
            tracer.counter_sample("running_kernels", device.running_count())
            tracer.counter_sample("mem_bw_pressure", round(pressure, 6))
        if profiler is not None:
            profiler.add("observability", perf_counter() - t0)
