"""Reconfiguration-path latency comparison (paper Table I).

Measures, on the simulated stack, the end-to-end latency of resizing a
spatial partition through each mechanism:

* **process-scoped** (MPS/MIG): full instance reload
  (:class:`~repro.baselines.process_scoped.ProcessScopedInstance`);
* **stream-scoped** (AMD CU-masking API): one serialised IOCTL;
* **kernel-scoped** (KRISP): firmware mask generation inside the packet
  processor — no runtime round-trip at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.process_scoped import ProcessScopedInstance, ReloadCostModel
from repro.gpu.command_processor import CommandProcessorConfig
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.topology import GpuTopology
from repro.runtime.hsa import HsaRuntime
from repro.runtime.ioctl import IoctlModel
from repro.sim.engine import Simulator

__all__ = ["ResizeMechanism", "RESIZE_MECHANISMS", "resize_latency"]


@dataclass(frozen=True)
class ResizeMechanism:
    """One row of the Table I comparison."""

    name: str
    scope: str
    programmer_transparent: bool
    allows_oversubscription: bool


RESIZE_MECHANISMS: tuple[ResizeMechanism, ...] = (
    ResizeMechanism("mps", "process", True, True),
    ResizeMechanism("mig", "process", True, False),
    ResizeMechanism("cu-masking", "stream", False, True),
    ResizeMechanism("kernel-scoped", "kernel", True, True),
)


def resize_latency(mechanism: str,
                   costs: Optional[ReloadCostModel] = None) -> float:
    """Simulated latency of one partition resize through ``mechanism``.

    Returns seconds from the resize request until the new partition can
    serve kernels.
    """
    sim = Simulator()
    topology = GpuTopology.mi50()
    if mechanism in ("mps", "mig"):
        instance = ProcessScopedInstance(sim, costs or ReloadCostModel(),
                                         partition_size=60)
        sim.run()  # initial boot
        start = sim.now
        instance.resize(30)
        sim.run()
        return sim.now - start
    if mechanism == "cu-masking":
        device = GpuDevice(sim, topology)
        runtime = HsaRuntime(sim, device, ioctl=IoctlModel(sim))
        queue = runtime.create_queue("q")
        start = sim.now
        done = []
        runtime.set_queue_cu_mask(queue, CUMask.first_n(topology, 30),
                                  on_done=lambda: done.append(sim.now))
        sim.run()
        if not done:
            raise RuntimeError("IOCTL never completed")
        return done[0] - start
    if mechanism == "kernel-scoped":
        # The mask is generated in firmware while the packet is processed;
        # the incremental resize cost is the mask-generation latency.
        return CommandProcessorConfig().mask_gen_latency
    raise KeyError(f"unknown mechanism {mechanism!r}")
