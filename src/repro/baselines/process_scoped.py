"""Process-scoped partition instances and shadow-instance masking.

Models the Fig. 2 timelines: resizing an MPS/MIG partition requires
(1) configuring the new instance, (2) starting a new ML backend process,
and (3) loading the model onto the GPU, before requests can be served.
:class:`ShadowInstanceServer` reproduces the GSLICE/Gpulet mitigation —
reconfigure a shadow in the background, then hot-swap — whose remaining
downtime is only the swap, but which limits *how often* repartitioning
can happen (e.g. every 20 s in Gpulet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.sim.engine import Simulator
from repro.sim.process import Process, Signal

__all__ = ["ReloadCostModel", "ProcessScopedInstance", "ShadowInstanceServer"]


@dataclass(frozen=True)
class ReloadCostModel:
    """Reconfiguration cost components, in seconds.

    Defaults land inside the ranges prior work reports: 2-15 s total for
    GSLICE, 10-15 s for Gpulet, ~10 s for PARIS/ELSA; the hot-swap
    downtime is the 50-60 microseconds GSLICE measures.
    """

    partition_config: float = 1.0
    backend_start: float = 3.0
    model_load: float = 6.0
    swap_downtime: float = 55e-6

    @property
    def total_reload(self) -> float:
        """Full cold-resize time (the Table II "resize overhead")."""
        return self.partition_config + self.backend_start + self.model_load


class ProcessScopedInstance:
    """One MPS/MIG-style instance serving a fixed-size partition.

    The instance is ``ready`` only after its configure/start/load
    sequence completes; resizing tears it down and repeats the sequence
    (the Fig. 2 top timeline).
    """

    def __init__(self, sim: Simulator, costs: Optional[ReloadCostModel] = None,
                 partition_size: int = 60, name: str = "instance") -> None:
        self.sim = sim
        self.costs = costs or ReloadCostModel()
        self.partition_size = partition_size
        self.name = name
        self.ready = Signal(sim, name=f"{name}.ready")
        self.reloads = 0
        self.downtime_total = 0.0
        self._boot()

    def _boot(self) -> None:
        def sequence() -> Iterator:
            yield self.costs.partition_config
            yield self.costs.backend_start
            yield self.costs.model_load
            self.ready.fire(self)

        Process(self.sim, sequence(), name=f"{self.name}.boot")

    def resize(self, new_size: int) -> Signal:
        """Cold resize: the instance is down for the whole reload."""
        down_since = self.sim.now
        self.partition_size = new_size
        self.ready = Signal(self.sim, name=f"{self.name}.ready")
        self.reloads += 1
        self.ready.on_fire(
            lambda _v: self._account_downtime(down_since)
        )
        self._boot()
        return self.ready

    def _account_downtime(self, down_since: float) -> None:
        self.downtime_total += self.sim.now - down_since


class ShadowInstanceServer:
    """GSLICE-style masking: reconfigure a shadow, then hot-swap.

    ``resize`` returns a signal firing when the new partition serves
    traffic; the *active* instance keeps serving during the shadow's
    reload, so downtime is only ``swap_downtime``.  ``min_resize_period``
    enforces the epoch limit (the reason prior work can only right-size
    every ~10-20 s).
    """

    def __init__(
        self,
        sim: Simulator,
        costs: Optional[ReloadCostModel] = None,
        partition_size: int = 60,
        min_resize_period: float = 20.0,
        name: str = "server",
    ) -> None:
        self.sim = sim
        self.costs = costs or ReloadCostModel()
        self.name = name
        self.min_resize_period = min_resize_period
        self.active = ProcessScopedInstance(
            sim, self.costs, partition_size, name=f"{name}.active"
        )
        self.downtime_total = 0.0
        self.resizes_completed = 0
        self.resizes_rejected = 0
        self._last_resize = -float("inf")
        self._resizing = False

    @property
    def partition_size(self) -> int:
        """Partition size currently serving traffic."""
        return self.active.partition_size

    def resize(self, new_size: int) -> Optional[Signal]:
        """Request a resize; ``None`` when rejected by the epoch limit."""
        if self._resizing:
            self.resizes_rejected += 1
            return None
        if self.sim.now - self._last_resize < self.min_resize_period:
            self.resizes_rejected += 1
            return None
        self._resizing = True
        shadow = ProcessScopedInstance(
            self.sim, self.costs, new_size, name=f"{self.name}.shadow"
        )
        swapped = Signal(self.sim, name=f"{self.name}.swapped")

        def swap(_value) -> None:
            def do_swap() -> Iterator:
                yield self.costs.swap_downtime  # brief serving gap
                self.downtime_total += self.costs.swap_downtime
                self.active = shadow
                self.resizes_completed += 1
                self._last_resize = self.sim.now
                self._resizing = False
                swapped.fire(shadow)

            Process(self.sim, do_swap(), name=f"{self.name}.swap")

        shadow.ready.on_fire(swap)
        return swapped
