"""Process-scoped baselines (paper Tables I and II).

Prior spatially partitioned inference servers (GSLICE, Gpulet,
PARIS/ELSA) build on MPS/MIG, whose partitions are *process-scoped*:
resizing means configuring a new instance, starting a new ML backend
process, and reloading the model onto the GPU — tens of seconds — which
they mask with shadow/background instances.  This package models those
reconfiguration timelines so the overhead comparison of Tables I/II can
be regenerated, and contrasts them with stream-scoped CU masking
(milliseconds of IOCTL) and KRISP's kernel-scoped resize (microseconds of
firmware).
"""

from repro.baselines.process_scoped import (
    ProcessScopedInstance,
    ReloadCostModel,
    ShadowInstanceServer,
)
from repro.baselines.resize_paths import (
    RESIZE_MECHANISMS,
    ResizeMechanism,
    resize_latency,
)

__all__ = [
    "ProcessScopedInstance",
    "ReloadCostModel",
    "ShadowInstanceServer",
    "RESIZE_MECHANISMS",
    "ResizeMechanism",
    "resize_latency",
]
