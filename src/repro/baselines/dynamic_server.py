"""Dynamic multi-model serving: epoch-based repartitioning vs KRISP.

This module reproduces the *dynamics* of paper Fig. 2.  Two servers share
an interface — "start serving model M now" — and differ in how partitions
come to exist:

* :class:`ModelWiseDynamicServer` (Gpulet/GSLICE-style): each model runs
  in a process-scoped instance.  Admitting or right-sizing a model means
  booting a (shadow) instance — partition config, backend start, model
  load — and repartitioning decisions are only taken at epoch boundaries
  (e.g. every 20 s).  Existing models keep serving on their old
  partitions while shadows boot (the masking techniques of Table II).

* :class:`KrispDynamicServer`: models share one KRISP-enabled runtime;
  a newly admitted model simply starts launching kernels, each
  right-sized and allocated in microseconds.  There is nothing to reload
  and no epoch.

The measurable difference is *time-to-first-inference* for a newly
admitted model and the repartitioning lag for existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.baselines.process_scoped import ReloadCostModel
from repro.core.krisp import KrispConfig, KrispSystem
from repro.core.perfdb import PerfDatabase
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.models.zoo import get_model
from repro.profiling.kernel_profiler import build_database
from repro.runtime.hsa import HsaRuntime
from repro.runtime.stream import Stream
from repro.server.profiles import model_right_size
from repro.sim.engine import Simulator
from repro.sim.process import Process

__all__ = ["ServedModel", "ModelWiseDynamicServer", "KrispDynamicServer"]


@dataclass
class ServedModel:
    """Bookkeeping for one admitted model."""

    name: str
    admitted_at: float
    first_response_at: Optional[float] = None
    completed_passes: int = 0
    stream: Optional[Stream] = None
    partition: Optional[CUMask] = None
    serving: bool = False
    stop: bool = field(default=False, repr=False)

    @property
    def time_to_first_inference(self) -> float:
        """Seconds from admission until the first inference completes."""
        if self.first_response_at is None:
            raise ValueError(f"{self.name} never responded")
        return self.first_response_at - self.admitted_at


class _DynamicServerBase:
    """Shared closed-loop serving machinery."""

    def __init__(self, sim: Simulator, device: GpuDevice,
                 batch_size: int = 32) -> None:
        self.sim = sim
        self.device = device
        self.batch_size = batch_size
        self.models: dict[str, ServedModel] = {}

    def _serve_loop(self, served: ServedModel) -> Iterator:
        """Closed-loop inference passes on the model's stream."""
        trace = get_model(served.name).trace(self.batch_size,
                                             self.device.topology)
        served.serving = True
        while not served.stop:
            for desc in trace:
                served.stream.launch_kernel(desc, tag=served.name)
            yield served.stream.synchronize_signal()
            served.completed_passes += 1
            if served.first_response_at is None:
                served.first_response_at = self.sim.now
        served.serving = False

    def stop_all(self) -> None:
        """Ask every serve loop to exit after its current pass."""
        for served in self.models.values():
            served.stop = True


class ModelWiseDynamicServer(_DynamicServerBase):
    """Process-scoped instances, resized only at epoch boundaries."""

    def __init__(
        self,
        sim: Simulator,
        device: GpuDevice,
        epoch: float = 20.0,
        reload_costs: Optional[ReloadCostModel] = None,
        batch_size: int = 32,
    ) -> None:
        super().__init__(sim, device, batch_size)
        if epoch <= 0:
            raise ValueError("epoch must be > 0")
        self.epoch = epoch
        self.reload_costs = reload_costs or ReloadCostModel()
        self.runtime = HsaRuntime(sim, device)
        self.reconfigurations = 0
        self._pending_admissions: list[ServedModel] = []
        self._next_epoch = 0.0
        self._schedule_epoch()

    def _schedule_epoch(self) -> None:
        self._next_epoch = self.sim.now + self.epoch
        self.sim.schedule(self._next_epoch, self._epoch_boundary)

    def admit(self, model_name: str) -> ServedModel:
        """Request serving of a model; honoured at the next epoch."""
        served = ServedModel(name=model_name, admitted_at=self.sim.now)
        self.models[model_name] = served
        self._pending_admissions.append(served)
        return served

    def _epoch_boundary(self) -> None:
        admissions, self._pending_admissions = self._pending_admissions, []
        if admissions:
            self._repartition(admissions)
        self._schedule_epoch()

    def _repartition(self, admissions: list[ServedModel]) -> None:
        """Boot shadow instances for the new partition layout, then swap.

        All active models are re-right-sized; existing ones keep serving
        on their old masks until the shadows are ready (downtime masking).
        """
        self.reconfigurations += 1
        active = [s for s in self.models.values() if not s.stop]
        sizes = {s.name: model_right_size(s.name, self.batch_size)
                 for s in active}
        total = sum(sizes.values())
        scale = min(1.0, self.device.topology.total_cus / max(1, total))
        layout: dict[str, CUMask] = {}
        offset = 0
        for served in active:
            width = max(1, int(sizes[served.name] * scale))
            width = min(width, self.device.topology.total_cus - offset)
            layout[served.name] = CUMask.from_cus(
                self.device.topology, range(offset, offset + width))
            offset += width

        def boot_and_swap() -> Iterator:
            # Shadow instances boot serially on the host (config + backend
            # start + model load per instance needing a reload).
            for _served in admissions:
                yield self.reload_costs.total_reload
            yield self.reload_costs.swap_downtime
            for served in active:
                if served.stream is None:
                    served.stream = Stream(self.runtime, name=served.name)
                    Process(self.sim, self._serve_loop(served),
                            name=f"{served.name}.serve")
                served.partition = layout[served.name]
                served.stream.queue.set_cu_mask(layout[served.name])

        Process(self.sim, boot_and_swap(), name="repartition")


class KrispDynamicServer(_DynamicServerBase):
    """One KRISP runtime; admission is instantaneous."""

    def __init__(
        self,
        sim: Simulator,
        device: GpuDevice,
        database: Optional[PerfDatabase] = None,
        config: Optional[KrispConfig] = None,
        batch_size: int = 32,
    ) -> None:
        super().__init__(sim, device, batch_size)
        self.database = database if database is not None else PerfDatabase()
        self.system = KrispSystem(
            sim, device, self.database,
            config=config or KrispConfig(overlap_limit=0))

    def admit(self, model_name: str) -> ServedModel:
        """Start serving immediately: profile-on-admission is a database
        merge (install-time in practice), partition sizing is per kernel."""
        served = ServedModel(name=model_name, admitted_at=self.sim.now)
        self.models[model_name] = served
        trace = get_model(model_name).trace(self.batch_size,
                                            self.device.topology)
        self.database.merge(build_database(trace))
        served.stream = self.system.create_stream(model_name)
        Process(self.sim, self._serve_loop(served),
                name=f"{model_name}.serve")
        return served
