"""Generality tests: the stack works on non-MI50 topologies.

The paper argues kernel-scoped partition instances generalise beyond one
part (Section IV-D4); these tests run the core machinery on an
MI100-like 120-CU device and on a deliberately odd 3x7 topology.
"""

import pytest

from repro.core.allocation import (
    DistributionPolicy,
    ResourceMaskGenerator,
    se_distribution,
)
from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.topology import GpuTopology
from repro.models.kernels import compute_kernel, full_gpu_kernel
from repro.profiling.kernel_profiler import KernelProfiler
from repro.sim.engine import Simulator

MI100 = GpuTopology.mi100()
ODD = GpuTopology(num_se=3, cus_per_se=7, name="odd-3x7")


@pytest.mark.parametrize("topo", [MI100, ODD])
def test_allocation_on_other_topologies(topo):
    gen = ResourceMaskGenerator(topo, policy=DistributionPolicy.CONSERVED)
    counters = CUKernelCounters(topo)
    for n in (1, topo.cus_per_se, topo.total_cus // 2, topo.total_cus):
        mask = gen.generate(n, counters)
        assert mask.count() == n
        active = [c for c in mask.per_se_counts() if c > 0]
        assert max(active) - min(active) <= 1


@pytest.mark.parametrize("topo", [MI100, ODD])
def test_profiler_finds_mincu_on_other_topologies(topo):
    profiler = KernelProfiler(topology=topo)
    target = topo.cus_per_se + 2
    desc = compute_kernel("k", target, 1e-4, topology=topo)
    assert abs(profiler.min_cus(desc) - target) <= 1
    full = full_gpu_kernel("f", 1e-3, topology=topo)
    assert profiler.min_cus(full) == topo.total_cus


@pytest.mark.parametrize("topo", [MI100, ODD])
def test_device_executes_on_other_topologies(topo):
    sim = Simulator()
    device = GpuDevice(sim, topo,
                       exec_config=ExecutionModelConfig(launch_overhead=0.0))
    desc = KernelDescriptor(name="k", workgroups=topo.total_cus,
                            occupancy=1, wg_duration=1e-4,
                            mem_intensity=0.0)
    record = device.launch(KernelLaunch(desc), CUMask.all_cus(topo))
    sim.run()
    assert record.end_time == pytest.approx(1e-4)


def test_se_distribution_conserved_on_odd_topology():
    # 10 CUs over 3 SEs of 7: conserved needs 2 SEs, split 5/5.
    assert se_distribution(10, ODD, DistributionPolicy.CONSERVED) == [5, 5, 0]
    assert se_distribution(21, ODD, DistributionPolicy.CONSERVED) == [7, 7, 7]
