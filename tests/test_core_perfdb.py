"""Unit tests for the performance database and right-sizer."""

import pytest

from repro.core.perfdb import KernelKey, PerfDatabase
from repro.core.rightsizing import KernelRightSizer
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.topology import GpuTopology

TOPO = GpuTopology.mi50()


def kernel(name="k", workgroups=24, bytes_in=1000):
    return KernelDescriptor(name=name, workgroups=workgroups,
                            bytes_in=bytes_in)


def test_record_and_lookup():
    db = PerfDatabase()
    db.record(kernel(), 12)
    assert db.lookup(kernel()) == 12
    assert len(db) == 1


def test_key_includes_name_size_and_input():
    db = PerfDatabase()
    db.record(kernel("a", 24, 1000), 12)
    assert db.lookup(kernel("b", 24, 1000)) is None       # different name
    assert db.lookup(kernel("a", 48, 1000)) is None       # different size
    assert db.lookup(kernel("a", 24, 2000)) is None       # different input
    assert db.misses == 3


def test_rejects_invalid_min_cus():
    db = PerfDatabase()
    with pytest.raises(ValueError):
        db.record(kernel(), 0)


def test_json_round_trip(tmp_path):
    db = PerfDatabase()
    db.record(kernel("gemm|odd", 24, 10), 12)  # name containing separator
    db.record(kernel("conv", 480, 999), 60)
    path = tmp_path / "db.json"
    db.save(path)
    loaded = PerfDatabase.load(path)
    assert loaded.lookup(kernel("gemm|odd", 24, 10)) == 12
    assert loaded.lookup(kernel("conv", 480, 999)) == 60
    assert len(loaded) == 2


def test_kernel_key_encode_decode():
    key = KernelKey("name|with|pipes", 6144, 12345)
    assert KernelKey.decode(key.encode()) == key


def test_merge_other_wins():
    a, b = PerfDatabase(), PerfDatabase()
    a.record(kernel(), 10)
    b.record(kernel(), 20)
    a.merge(b)
    assert a.lookup(kernel()) == 20


def test_contains():
    db = PerfDatabase()
    assert kernel() not in db
    db.record(kernel(), 5)
    assert kernel() in db


# -- right-sizer -------------------------------------------------------------

def test_rightsizer_returns_profiled_value():
    db = PerfDatabase()
    db.record(kernel(), 12)
    sizer = KernelRightSizer(db, TOPO)
    assert sizer(kernel()) == 12


def test_rightsizer_unprofiled_falls_back_to_full_device():
    sizer = KernelRightSizer(PerfDatabase(), TOPO)
    assert sizer(kernel("mystery")) == 60
    assert "mystery" in sizer.unprofiled


def test_rightsizer_margin():
    db = PerfDatabase()
    db.record(kernel(), 12)
    sizer = KernelRightSizer(db, TOPO, margin_cus=4)
    assert sizer(kernel()) == 16


def test_rightsizer_margin_capped_at_device():
    db = PerfDatabase()
    db.record(kernel(), 59)
    sizer = KernelRightSizer(db, TOPO, margin_cus=10)
    assert sizer(kernel()) == 60


def test_rightsizer_rejects_negative_margin():
    with pytest.raises(ValueError):
        KernelRightSizer(PerfDatabase(), TOPO, margin_cus=-1)
