"""The ``krisp-repro report`` CLI, ``load`` attribution/metrics flags,
and per-model queue sampling.

The acceptance contract: two uncached ``report`` runs of the same
pinned scenario emit byte-identical JSON, and the payload's own
conservation audit is clean.
"""

import json

import pytest

from repro.cli import main
from repro.server.options import RunOptions

SPEC_YAML = """\
arrivals:
  kind: poisson
  rate: 50.0
batch_size: 4
kind: homogeneous
model: squeezenet
"""

MIX_YAML = """\
arrivals:
  kind: poisson
  rate: 100.0
classes:
- batch_size: 4
  model: squeezenet
  weight: 3.0
- batch_size: 4
  model: mobilenet
  weight: 1.0
kind: heterogeneous
"""


def test_report_runs_twice_byte_identical(tmp_path, capsys):
    first = tmp_path / "r1.json"
    second = tmp_path / "r2.json"
    base = ["report", "squeezenet", "-n", "2", "--scale", "0.25"]
    assert main(base + ["--json-out", str(first)]) == 0
    assert main(base + ["--json-out", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()

    payload = json.loads(first.read_text())
    assert payload["schema"] == 1
    assert payload["conservation"]["exact"] is True
    assert payload["conservation"]["requests"] > 0
    assert payload["attribution"]["components"][0] == "queue_wait"
    assert payload["slo"]["objective"] == 0.95
    assert "squeezenet" in payload["slo"]["models"]

    out = capsys.readouterr().out
    assert "Latency attribution report" in out
    assert "conservation audit: exact" in out


def test_report_markdown_and_faulted_run(tmp_path, capsys):
    md = tmp_path / "report.md"
    code = main(["report", "squeezenet", "-n", "4", "--batch", "8",
                 "--scale", "0.25", "--faults", "mixed",
                 "--deadline", "250", "--admission", "8",
                 "--retries", "2", "--md-out", str(md)])
    assert code == 0
    text = md.read_text()
    assert "## What the tail is made of" in text
    assert "burn rate" in text
    out = capsys.readouterr().out
    assert "conservation audit: exact" in out


def test_load_attribute_and_metrics_out(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec = tmp_path / "poisson.yaml"
    spec.write_text(SPEC_YAML)
    metrics = tmp_path / "metrics.prom"
    curve = tmp_path / "curve.json"
    code = main(["load", str(spec), "--scales", "0.5", "1.0",
                 "--duration", "0.5", "--no-cache", "--attribute",
                 "--metrics-out", str(metrics),
                 "--json-out", str(curve)])
    assert code == 0
    out = capsys.readouterr().out
    assert "knee diagnosis:" in out

    rows = json.loads(curve.read_text())["rows"]
    assert len(rows) == 2
    for row in rows:
        assert {"goodput_rps", "shed", "shed_admission", "shed_deadline",
                "retried"} <= row.keys()
        assert row["diagnosis"] in {"queueing-dominated",
                                    "contention-dominated",
                                    "service-dominated"}
        assert row["attribution"]["requests"] > 0

    prom = metrics.read_text()
    assert "# TYPE krisp_attribution_seconds histogram" in prom
    assert 'component="queue_wait"' in prom
    assert 'krisp_queue_depth{queue="shared"}' in prom


def test_sampler_covers_per_model_workload_queues():
    from repro.obs.metrics import MetricsRegistry
    from repro.server.experiment import ExperimentConfig
    from repro.server.rate_experiment import run_rate_experiment
    from repro.workload import workload_from_yaml

    spec = workload_from_yaml(MIX_YAML)
    config = ExperimentConfig(("squeezenet", "mobilenet"),
                              policy="krisp-i", batch_size=4)
    registry = MetricsRegistry()
    run_rate_experiment(config, duration=0.25,
                        options=RunOptions(workload=spec,
                                           metrics=registry))
    prom = registry.to_prometheus()
    # The wl-{model} queues are created *after* the sampler starts; the
    # live queue view + lazy gauge registration still samples them.
    assert 'krisp_queue_depth{queue="wl-squeezenet"}' in prom
    assert 'krisp_queue_depth{queue="wl-mobilenet"}' in prom


def test_report_parser_rejects_unknown_fault():
    with pytest.raises(SystemExit):
        main(["report", "squeezenet", "--faults", "earthquake"])
