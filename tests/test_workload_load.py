"""Integration tests for the open-loop workload engine: the workload=
path of run_rate_experiment, ServingSetup.add_workload routing, the
load-curve runner, and the ``krisp-repro load`` CLI.

The two load-bearing contracts:

* a homogeneous Poisson spec is *bit-identical* to the legacy
  ``add_open_loop`` path at the same rate — the workload engine
  perturbs nothing (the fig13a result-sha pin is re-asserted here after
  workload runs to prove the legacy harness is untouched);
* load curves are bit-identical across repeated runs, serial vs pooled
  execution, and cache hits vs recomputation.
"""

import json

import pytest

from repro.exp.cache import (
    RateResultCache,
    rate_result_to_dict,
    result_hash,
)
from repro.exp.load import run_load_curve
from repro.server.experiment import ExperimentConfig, run_experiment
from repro.server.options import RunOptions
from repro.server.rate_experiment import run_rate_experiment
from repro.server.setup import ServingSetup
from repro.server.slo import SloGuard
from repro.workload import (
    HeterogeneousWorkloadSpec,
    HomogeneousWorkloadSpec,
    PoissonArrivals,
    RequestClass,
    workload_to_yaml,
)

CONFIG = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                          batch_size=4)

#: fig13a pin (same constants as tests/test_serving_setup.py): the
#: workload engine must not move the legacy closed-loop harness.
FIG13A = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                          batch_size=32, seed=0, requests_scale=0.5)
FIG13A_RESULT_SHA = (
    "586c866e8d4b92e20d04807e15adf3e875a658afdd5b75efc7161732ebb6ee5f")


def poisson_spec(offered_rps, batch=4, model="squeezenet"):
    """The open-loop-equivalent spec: ``offered_rps`` requests/s arriving
    as batches of ``batch`` (the PoissonClient parameterisation)."""
    return HomogeneousWorkloadSpec(
        model, PoissonArrivals(rate=offered_rps / batch), batch_size=batch)


# -- differential: workload path vs legacy open loop -------------------------

def test_poisson_spec_is_bit_identical_to_legacy_open_loop():
    legacy = run_rate_experiment(CONFIG, offered_rps=100.0, duration=0.5)
    spec = poisson_spec(100.0)
    via_spec = run_rate_experiment(CONFIG, offered_rps=100.0,
                                   duration=0.5,
                                   options=RunOptions(workload=spec))
    assert via_spec == legacy  # full float-for-float equality
    assert rate_result_to_dict(via_spec) == rate_result_to_dict(legacy)


def test_fig13a_pin_survives_workload_runs():
    """Running the workload engine perturbs nothing: the legacy
    closed-loop cell still reproduces its pinned result sha."""
    run_rate_experiment(CONFIG, duration=0.3,
                        options=RunOptions(workload=poisson_spec(80.0)))
    assert result_hash(run_experiment(FIG13A)) == FIG13A_RESULT_SHA


def test_workload_runs_are_repeatable():
    spec = poisson_spec(120.0)
    a = run_rate_experiment(CONFIG, duration=0.4,
                            options=RunOptions(workload=spec))
    b = run_rate_experiment(CONFIG, duration=0.4,
                            options=RunOptions(workload=spec))
    assert a == b


def test_workload_offered_rps_defaults_to_spec_rate():
    result = run_rate_experiment(
        CONFIG, duration=0.3, options=RunOptions(workload=poisson_spec(80.0)))
    assert result.offered_rps == pytest.approx(80.0)


def test_workload_batch_size_must_match_config():
    with pytest.raises(ValueError, match="batch size"):
        run_rate_experiment(
            CONFIG, duration=0.3,
            options=RunOptions(workload=poisson_spec(80.0, batch=8)))


def test_workload_models_must_be_configured():
    setup = ServingSetup.build(CONFIG, rng_label="rate/1.0")
    with pytest.raises(ValueError, match="mobilenet"):
        setup.add_workload(poisson_spec(80.0, model="mobilenet"),
                           stop_time=0.1)


# -- heterogeneous routing ---------------------------------------------------

MIX = HeterogeneousWorkloadSpec(
    classes=(RequestClass("squeezenet", batch_size=4, weight=3.0),
             RequestClass("mobilenet", batch_size=4, weight=1.0)),
    arrivals=PoissonArrivals(rate=100.0))


def test_heterogeneous_mix_routes_to_per_model_queues():
    config = ExperimentConfig(("squeezenet", "mobilenet"),
                              policy="krisp-i", batch_size=4)
    setup = ServingSetup.build(config, rng_label="rate/400.0")
    client = setup.add_workload(MIX, stop_time=0.5)
    assert sorted(q.name for q in setup.queues) == \
        ["wl-mobilenet", "wl-squeezenet"]
    setup.sim.run(until=0.5)
    # Both classes were drawn, roughly at their 3:1 weights.
    assert set(client.issued_per_model) == {"squeezenet", "mobilenet"}
    ratio = (client.issued_per_model["squeezenet"]
             / client.issued_per_model["mobilenet"])
    assert 1.5 < ratio < 6.0
    # Workers only ever served their own model.
    for worker in setup.workers:
        models = {r.model_name for r in worker.stats.completed}
        assert len(models) <= 1


def test_unused_configured_model_idles():
    config = ExperimentConfig(("squeezenet", "mobilenet"),
                              policy="krisp-i", batch_size=4)
    setup = ServingSetup.build(config, rng_label="rate/80.0")
    setup.add_workload(poisson_spec(80.0), stop_time=0.3)
    setup.sim.run(until=0.3)
    names = sorted(q.name for q in setup.queues)
    assert names == ["idle-mobilenet", "wl-squeezenet"]
    served = [w for w in setup.workers if w.stats.completed]
    assert all(r.model_name == "squeezenet"
               for w in served for r in w.stats.completed)


# -- LLM phases end-to-end ---------------------------------------------------

def test_llm_workload_serves_variable_output_lengths():
    config = ExperimentConfig(("llm-tiny",) * 2, policy="krisp-i",
                              batch_size=8)
    spec = HomogeneousWorkloadSpec(
        "llm-tiny", PoissonArrivals(rate=40.0), batch_size=8,
        output_tokens=(1, 6))
    setup = ServingSetup.build(config, rng_label="rate/320.0")
    setup.add_workload(spec, stop_time=0.5)
    setup.sim.run(until=0.5)
    completed = [r for w in setup.workers for r in w.stats.completed]
    assert len(completed) > 10
    tokens = {r.output_tokens for r in completed}
    assert len(tokens) > 1  # lengths were actually drawn per request
    assert all(1 <= t <= 6 for t in tokens)
    # More decode tokens -> strictly more GPU work -> higher latency.
    by_tokens = {}
    for r in completed:
        by_tokens.setdefault(r.output_tokens, []).append(r.service_latency)
    means = {t: sum(v) / len(v) for t, v in by_tokens.items()}
    assert means[max(means)] > means[min(means)]


def test_llm_workload_is_repeatable():
    config = ExperimentConfig(("llm-tiny",) * 2, policy="krisp-i",
                              batch_size=8)
    spec = HomogeneousWorkloadSpec(
        "llm-tiny", PoissonArrivals(rate=40.0), batch_size=8,
        output_tokens=(1, 6))
    a = run_rate_experiment(config, duration=0.4,
                            options=RunOptions(workload=spec))
    b = run_rate_experiment(config, duration=0.4,
                            options=RunOptions(workload=spec))
    assert a == b


# -- SLO guard composition ---------------------------------------------------

def test_guard_sheds_under_workload_overload():
    guard = SloGuard(admission_depth=4, deadline=0.05)
    result = run_rate_experiment(
        CONFIG, duration=0.5,
        options=RunOptions(workload=poisson_spec(5000.0), guard=guard))
    assert result.resilience is not None
    assert result.resilience.shed > 0
    assert result.resilience.goodput_rps <= result.achieved_rps + 1e-9


# -- load curves -------------------------------------------------------------

def test_load_curve_serial_and_pooled_are_identical(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    spec = poisson_spec(200.0)
    serial = run_load_curve(CONFIG, spec, scales=(0.5, 1.0), duration=0.4,
                            jobs=1, use_cache=False)
    pooled = run_load_curve(CONFIG, spec, scales=(0.5, 1.0), duration=0.4,
                            jobs=2, use_cache=False)
    assert serial.points == pooled.points
    assert serial.cache_hits == pooled.cache_hits == 0


def test_load_curve_cache_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = RateResultCache()
    spec = poisson_spec(200.0)
    first = run_load_curve(CONFIG, spec, scales=(0.5, 1.0), duration=0.4,
                           cache=cache)
    assert first.cache_hits == 0
    second = run_load_curve(CONFIG, spec, scales=(0.5, 1.0), duration=0.4,
                            cache=cache)
    assert second.cache_hits == len(second.points) == 2
    assert second.points == first.points
    assert cache.stats.hits == 2


def test_load_curve_latency_rises_with_rate(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = run_load_curve(CONFIG, poisson_spec(200.0),
                            scales=(0.25, 1.0, 4.0), duration=0.5,
                            use_cache=False)
    p95s = [p.latency.p95 for p in report.points]
    assert p95s[0] <= p95s[-1]
    assert report.points[-1].offered_rps == pytest.approx(800.0)
    rows = report.to_rows()
    assert len(rows) == 3 and all(r["p95_ms"] > 0 for r in rows)
    assert report.to_text()  # renders without raising


def test_load_curve_rejects_empty_or_nonpositive_rates():
    with pytest.raises(ValueError):
        run_load_curve(CONFIG, poisson_spec(100.0), rates=(0.0, 10.0))
    with pytest.raises(ValueError):
        run_load_curve(CONFIG, poisson_spec(100.0), rates=(),
                       scales=())


# -- CLI ---------------------------------------------------------------------

def test_cli_load_smoke(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    spec_path = tmp_path / "spec.yaml"
    spec_path.write_text(workload_to_yaml(poisson_spec(200.0)))
    out = tmp_path / "curve.json"
    code = main(["load", str(spec_path), "--scales", "0.5", "1.0",
                 "--duration", "0.4", "--no-cache",
                 "--json-out", str(out)])
    assert code == 0
    captured = capsys.readouterr()
    assert "load curve over 2 rates" in captured.out
    payload = json.loads(out.read_text())
    assert payload["schema"] == 1
    assert payload["workload"]["kind"] == "homogeneous"
    assert len(payload["rows"]) == 2
    assert all(row["p95_ms"] > 0 for row in payload["rows"])
