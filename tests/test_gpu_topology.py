"""Unit tests for GPU topology."""

import pytest

from repro.gpu.topology import GpuTopology


def test_mi50_shape():
    topo = GpuTopology.mi50()
    assert topo.num_se == 4
    assert topo.cus_per_se == 15
    assert topo.total_cus == 60
    assert topo.threads_per_cu == 2560
    assert topo.max_threads == 153600  # the paper's stated GPU thread limit


def test_mi100_shape():
    topo = GpuTopology.mi100()
    assert topo.total_cus == 120


def test_cu_index_round_trip():
    topo = GpuTopology.mi50()
    for se in range(topo.num_se):
        for cu in range(topo.cus_per_se):
            idx = topo.cu_index(se, cu)
            assert topo.se_of(idx) == se


def test_cus_in_se():
    topo = GpuTopology.mi50()
    assert list(topo.cus_in_se(0)) == list(range(0, 15))
    assert list(topo.cus_in_se(3)) == list(range(45, 60))


def test_bounds_checking():
    topo = GpuTopology.mi50()
    with pytest.raises(ValueError):
        topo.cu_index(4, 0)
    with pytest.raises(ValueError):
        topo.cu_index(0, 15)
    with pytest.raises(ValueError):
        topo.se_of(60)
    with pytest.raises(ValueError):
        topo.cus_in_se(-1)


def test_invalid_topology_rejected():
    with pytest.raises(ValueError):
        GpuTopology(num_se=0, cus_per_se=15)
    with pytest.raises(ValueError):
        GpuTopology(num_se=4, cus_per_se=0)
