"""Unit tests for the device execution engine, counters, and energy."""

import pytest

from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.power import EnergyMeter, PowerModel
from repro.gpu.topology import GpuTopology
from repro.sim.engine import Simulator

TOPO = GpuTopology.mi50()
CFG = ExecutionModelConfig(launch_overhead=0.0, intra_cu_alpha=1.0)


def make_device(sim, **kwargs):
    kwargs.setdefault("exec_config", CFG)
    return GpuDevice(sim, TOPO, **kwargs)


def launch_of(workgroups=60, occupancy=1, wg_duration=1e-3, mem=0.0, name="k"):
    return KernelLaunch(KernelDescriptor(
        name=name, workgroups=workgroups, occupancy=occupancy,
        wg_duration=wg_duration, mem_intensity=mem,
    ))


def test_single_kernel_completes_at_isolated_latency():
    sim = Simulator()
    device = make_device(sim)
    done = []
    record = device.launch(launch_of(), CUMask.all_cus(TOPO),
                           on_complete=lambda r: done.append(sim.now))
    sim.run()
    # 60 WGs over 4 SEs = 15 per SE on 15 CUs, occupancy 1 -> 1 wave of 1ms
    assert done == [pytest.approx(1e-3)]
    assert record.end_time == pytest.approx(1e-3)
    assert device.kernels_completed == 1
    assert not device.busy()


def test_counters_track_launch_and_retire():
    sim = Simulator()
    device = make_device(sim)
    mask = CUMask.first_n(TOPO, 10)
    device.launch(launch_of(), mask)
    assert device.counters.busy_cus() == 10
    assert device.counters.total_assigned() == 10
    sim.run()
    assert device.counters.busy_cus() == 0


def test_counters_keep_high_water_marks():
    counters = CUKernelCounters(TOPO)
    a = CUMask.first_n(TOPO, 10)
    b = CUMask.first_n(TOPO, 6)
    counters.assign(a)
    counters.assign(b)          # overlaps a on CUs 0-5
    assert counters.busy_cus() == 10
    assert counters.peak_busy_cus == 10
    counters.release(a)
    counters.release(b)
    assert counters.busy_cus() == 0
    # Peaks survive the drain back to idle.
    assert counters.peak_busy_cus == 10
    peaks = counters.peak_counts()
    assert peaks[:6] == [2] * 6
    assert peaks[6:10] == [1] * 4
    assert all(p == 0 for p in peaks[10:])


def test_experiment_result_surfaces_peak_occupancy():
    from repro.server.experiment import ExperimentConfig, run_experiment
    result = run_experiment(ExperimentConfig(
        model_names=("squeezenet",), policy="mps-default",
        requests_scale=0.1,
    ))
    assert 0 < result.peak_cu_occupancy <= TOPO.total_cus


def test_two_kernels_disjoint_masks_do_not_interfere():
    sim = Simulator()
    device = make_device(sim)
    ends = {}
    mask_a = CUMask.from_cus(TOPO, [TOPO.cu_index(se, c) for se in range(4) for c in range(7)])
    mask_b = CUMask.from_cus(TOPO, [TOPO.cu_index(se, c) for se in range(4) for c in range(7, 14)])
    # 28 WGs on 28 CUs (7/SE): 1 wave each.
    device.launch(launch_of(workgroups=28, name="a"), mask_a,
                  on_complete=lambda r: ends.setdefault("a", sim.now))
    device.launch(launch_of(workgroups=28, name="b"), mask_b,
                  on_complete=lambda r: ends.setdefault("b", sim.now))
    sim.run()
    assert ends["a"] == pytest.approx(1e-3)
    assert ends["b"] == pytest.approx(1e-3)


def test_two_kernels_sharing_cus_slow_down_fairly():
    sim = Simulator()
    device = make_device(sim)
    ends = {}
    mask = CUMask.all_cus(TOPO)
    # 600 WGs -> 10 waves alone (10ms); sharing all CUs with alpha=1 -> 20ms.
    device.launch(launch_of(workgroups=600, name="a"), mask,
                  on_complete=lambda r: ends.setdefault("a", sim.now))
    device.launch(launch_of(workgroups=600, name="b"), mask,
                  on_complete=lambda r: ends.setdefault("b", sim.now))
    sim.run()
    assert ends["a"] == pytest.approx(20e-3, rel=1e-6)
    assert ends["b"] == pytest.approx(20e-3, rel=1e-6)


def test_rate_rescaling_on_mid_flight_contention():
    """A kernel that runs half its work alone then shares finishes at
    t = half_alone + half_shared, exercising progress re-accounting."""
    sim = Simulator()
    device = make_device(sim)
    ends = {}
    mask = CUMask.all_cus(TOPO)
    device.launch(launch_of(workgroups=600, name="a"), mask,
                  on_complete=lambda r: ends.setdefault("a", sim.now))
    # At t=5ms kernel a is 50% done; b joins and both run at half rate.
    sim.schedule(5e-3, lambda: device.launch(
        launch_of(workgroups=600, name="b"), mask,
        on_complete=lambda r: ends.setdefault("b", sim.now)))
    sim.run()
    # a: 5ms alone (50%) + 10ms shared (50%) -> ends at 15ms.
    assert ends["a"] == pytest.approx(15e-3, rel=1e-6)
    # b: shares for 10ms (50% done at t=15ms), then runs alone 5ms.
    assert ends["b"] == pytest.approx(20e-3, rel=1e-6)


def test_memory_bound_kernels_throttle_each_other():
    sim = Simulator()
    device = make_device(sim)
    ends = {}
    half_a = CUMask.from_cus(TOPO, [TOPO.cu_index(se, c) for se in range(4) for c in range(7)])
    half_b = CUMask.from_cus(TOPO, [TOPO.cu_index(se, c) for se in range(4) for c in range(8, 15)])
    # Each demands mem_intensity * 28/60 = 0.7 * 0.466 = 0.326; two -> 0.65 < 1
    # so no throttle; with intensity 1.0 -> demand 0.933 total ... make both 1.0
    # and masks of 45 CUs to oversubscribe.
    big_a = CUMask.first_n(TOPO, 45)
    device.launch(launch_of(workgroups=4500, mem=1.0, name="a"), big_a,
                  on_complete=lambda r: ends.setdefault("a", sim.now))
    device.launch(launch_of(workgroups=4500, mem=1.0, name="b"), big_a,
                  on_complete=lambda r: ends.setdefault("b", sim.now))
    sim.run()
    # Demand 2 * 0.75 = 1.5 > 1. CU sharing alone gives 2x; BW gives extra 1.5x.
    # Without BW model both end at 2 * alone; check they end strictly later.
    alone_sim = Simulator()
    alone_dev = make_device(alone_sim)
    alone_end = []
    alone_dev.launch(launch_of(workgroups=4500, mem=1.0), big_a,
                     on_complete=lambda r: alone_end.append(alone_sim.now))
    alone_sim.run()
    assert ends["a"] > 2.0 * alone_end[0] * 1.2


def test_empty_mask_rejected():
    sim = Simulator()
    device = make_device(sim)
    with pytest.raises(ValueError):
        device.launch(launch_of(), CUMask.none(TOPO))


def test_wrong_topology_mask_rejected():
    sim = Simulator()
    device = make_device(sim)
    with pytest.raises(ValueError):
        device.launch(launch_of(), CUMask.all_cus(GpuTopology.mi100()))


def test_energy_integrates_busy_and_idle():
    sim = Simulator()
    power = PowerModel(p_static=10.0, p_se_active=0.0, p_cu_busy=1.0,
                       p_cu_idle=0.0)
    device = make_device(sim, power_model=power)
    # 15 WGs on SE0's 15 CUs -> 1 wave of 1ms; 15 CUs busy for 1ms.
    device.launch(launch_of(workgroups=15), CUMask.first_n(TOPO, 15))
    sim.run(until=2e-3)
    device.finalize()
    # busy segment: (10 + 15) * 1ms ; idle segment: 10 * 1ms
    assert device.meter.energy_joules == pytest.approx(25e-3 + 10e-3)
    assert device.meter.utilization(2e-3) == pytest.approx(15 * 1e-3 / (2e-3 * 60))


def test_trace_recording():
    sim = Simulator()
    device = make_device(sim, record_trace=True)
    device.launch(launch_of(name="traced"), CUMask.all_cus(TOPO))
    sim.run()
    assert len(device.trace) == 1
    assert device.trace[0].launch.descriptor.name == "traced"
    assert device.trace[0].end_time is not None


def test_counters_overflow_guard():
    counters = CUKernelCounters(TOPO)
    mask = CUMask.first_n(TOPO, 1)
    for _ in range(TOPO.max_kernels_per_cu):
        counters.assign(mask)
    with pytest.raises(OverflowError):
        counters.assign(mask)


def test_counters_underflow_guard():
    counters = CUKernelCounters(TOPO)
    with pytest.raises(ValueError):
        counters.release(CUMask.first_n(TOPO, 1))


def test_counters_se_load():
    counters = CUKernelCounters(TOPO)
    counters.assign(CUMask.from_cus(TOPO, [0, 1, 15]))
    assert counters.se_load(0) == 2
    assert counters.se_load(1) == 1
    assert counters.se_load(2) == 0


def test_power_model_mi50_range():
    power = PowerModel()
    assert power.peak_power(TOPO) == pytest.approx(290.0)
    assert power.idle_power(TOPO) == pytest.approx(170.0)


def test_energy_meter_rejects_time_reversal():
    meter = EnergyMeter(PowerModel(), TOPO)
    meter.advance(1.0, 0, 0)
    with pytest.raises(ValueError):
        meter.advance(0.5, 0, 0)
