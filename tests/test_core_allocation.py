"""Unit and property tests for Algorithm 1 and the distribution policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.allocation import (
    DistributionPolicy,
    ResourceMaskGenerator,
    se_distribution,
)
from repro.gpu.counters import CUKernelCounters
from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology

TOPO = GpuTopology.mi50()

PACKED = DistributionPolicy.PACKED
DISTRIBUTED = DistributionPolicy.DISTRIBUTED
CONSERVED = DistributionPolicy.CONSERVED


# -- se_distribution (Fig. 7 example: 19 CUs across 4 SEs) -----------------

def test_fig7_example_19_cus():
    assert se_distribution(19, TOPO, PACKED) == [15, 4, 0, 0]
    assert se_distribution(19, TOPO, DISTRIBUTED) == [5, 5, 5, 4]
    assert se_distribution(19, TOPO, CONSERVED) == [10, 9, 0, 0]


def test_conserved_uses_minimum_ses():
    assert se_distribution(15, TOPO, CONSERVED) == [15, 0, 0, 0]
    assert se_distribution(16, TOPO, CONSERVED) == [8, 8, 0, 0]
    assert se_distribution(31, TOPO, CONSERVED) == [11, 10, 10, 0]
    assert se_distribution(46, TOPO, CONSERVED) == [12, 12, 11, 11]
    assert se_distribution(60, TOPO, CONSERVED) == [15, 15, 15, 15]


def test_distribution_bounds_checked():
    with pytest.raises(ValueError):
        se_distribution(0, TOPO, CONSERVED)
    with pytest.raises(ValueError):
        se_distribution(61, TOPO, CONSERVED)


@given(st.integers(min_value=1, max_value=60),
       st.sampled_from(list(DistributionPolicy)))
def test_distribution_conserves_total(n, policy):
    counts = se_distribution(n, TOPO, policy)
    assert sum(counts) == n
    assert all(0 <= c <= TOPO.cus_per_se for c in counts)


@given(st.integers(min_value=1, max_value=60))
def test_conserved_is_balanced(n):
    counts = [c for c in se_distribution(n, TOPO, CONSERVED) if c > 0]
    assert max(counts) - min(counts) <= 1


# -- ResourceMaskGenerator ---------------------------------------------------

def test_generate_on_idle_device():
    gen = ResourceMaskGenerator(TOPO, policy=CONSERVED)
    mask = gen.generate(19, CUKernelCounters(TOPO))
    assert mask.count() == 19
    assert sorted(mask.per_se_counts(), reverse=True)[:2] == [10, 9]


def test_generate_prefers_least_loaded_se():
    gen = ResourceMaskGenerator(TOPO, policy=CONSERVED)
    counters = CUKernelCounters(TOPO)
    counters.assign(CUMask.from_cus(TOPO, TOPO.cus_in_se(0)))
    mask = gen.generate(10, counters)
    # SE0 is busy; the 10 CUs must come from another SE.
    assert mask.per_se_counts()[0] == 0


def test_generate_prefers_least_loaded_cus_within_se():
    gen = ResourceMaskGenerator(TOPO, policy=CONSERVED)
    counters = CUKernelCounters(TOPO)
    # Occupy CUs 0..4 in every SE so SE loads tie.
    for se in range(4):
        counters.assign(CUMask.from_cus(
            TOPO, list(TOPO.cus_in_se(se))[:5]))
    mask = gen.generate(10, counters)
    assert all(counters.count(cu) == 0 for cu in mask.cus())


def test_overlap_limit_zero_shrinks_allocation():
    gen = ResourceMaskGenerator(TOPO, policy=CONSERVED, overlap_limit=0)
    counters = CUKernelCounters(TOPO)
    first = gen.generate(40, counters)
    counters.assign(first)
    second = gen.generate(40, counters)
    # Only 20 CUs are free; isolation caps the grant at the fair-share
    # floor (60 // 2 = 30), and the regranted mask keeps a balanced
    # conserved shape (no straggler SEs).
    assert second.count() == 30
    active = [c for c in second.per_se_counts() if c > 0]
    assert max(active) - min(active) <= 1


def test_unlimited_overlap_gives_full_request():
    gen = ResourceMaskGenerator(TOPO, policy=CONSERVED, overlap_limit=None)
    counters = CUKernelCounters(TOPO)
    counters.assign(gen.generate(60, counters))
    mask = gen.generate(60, counters)
    assert mask.count() == 60


def test_fair_share_floor_prevents_starvation():
    gen = ResourceMaskGenerator(TOPO, policy=CONSERVED, overlap_limit=0)
    counters = CUKernelCounters(TOPO)
    counters.assign(CUMask.all_cus(TOPO))  # everything occupied
    mask = gen.generate(30, counters)
    assert mask.count() == 30  # floor = 60 // 2


def test_never_returns_empty_mask():
    gen = ResourceMaskGenerator(TOPO, policy=CONSERVED, overlap_limit=0)
    counters = CUKernelCounters(TOPO)
    counters.assign(CUMask.all_cus(TOPO))
    mask = gen.generate(10, counters)
    assert mask.count() >= 1


def test_request_clamped_to_device():
    gen = ResourceMaskGenerator(TOPO)
    counters = CUKernelCounters(TOPO)
    assert gen.generate(500, counters).count() == 60
    assert gen.generate(-3, counters).count() == 1


def test_negative_overlap_limit_rejected():
    with pytest.raises(ValueError):
        ResourceMaskGenerator(TOPO, overlap_limit=-1)


@given(st.integers(min_value=1, max_value=60),
       st.sampled_from(list(DistributionPolicy)))
def test_idle_allocation_exact_and_isolated(n, policy):
    gen = ResourceMaskGenerator(TOPO, policy=policy, overlap_limit=0)
    mask = gen.generate(n, CUKernelCounters(TOPO))
    assert mask.count() == n


@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=30))
def test_two_isolated_allocations_do_not_overlap_when_they_fit(n1, n2):
    """Two half-device-or-smaller requests land on disjoint whole SEs."""
    gen = ResourceMaskGenerator(TOPO, policy=CONSERVED, overlap_limit=0)
    counters = CUKernelCounters(TOPO)
    first = gen.generate(n1, counters)
    counters.assign(first)
    second = gen.generate(n2, counters)
    assert first.intersect(second).is_empty()


@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=1, max_value=60))
def test_masks_keep_balanced_shape_under_load(n1, n2):
    """Regranted masks never leave a straggler SE (the Fig. 8 pathology)."""
    gen = ResourceMaskGenerator(TOPO, policy=CONSERVED, overlap_limit=0)
    counters = CUKernelCounters(TOPO)
    counters.assign(gen.generate(n1, counters))
    second = gen.generate(n2, counters)
    active = [c for c in second.per_se_counts() if c > 0]
    assert max(active) - min(active) <= 1


def test_generation_is_deterministic():
    gen1 = ResourceMaskGenerator(TOPO)
    gen2 = ResourceMaskGenerator(TOPO)
    counters = CUKernelCounters(TOPO)
    counters.assign(CUMask.from_cus(TOPO, [3, 17, 45]))
    assert gen1.generate(23, counters) == gen2.generate(23, counters)
