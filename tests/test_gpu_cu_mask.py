"""Unit and property tests for CU masks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology

TOPO = GpuTopology.mi50()

cu_sets = st.sets(st.integers(min_value=0, max_value=TOPO.total_cus - 1))


def test_all_and_none():
    full = CUMask.all_cus(TOPO)
    empty = CUMask.none(TOPO)
    assert full.count() == 60
    assert empty.count() == 0
    assert empty.is_empty()
    assert not full.is_empty()


def test_first_n():
    mask = CUMask.first_n(TOPO, 17)
    assert mask.count() == 17
    assert list(mask.cus()) == list(range(17))
    assert mask.per_se_counts() == [15, 2, 0, 0]


def test_from_cus_and_has():
    mask = CUMask.from_cus(TOPO, [0, 15, 30, 45])
    assert mask.per_se_counts() == [1, 1, 1, 1]
    assert mask.active_ses() == [0, 1, 2, 3]
    assert mask.has(15) and not mask.has(16)


def test_rejects_out_of_range():
    with pytest.raises(ValueError):
        CUMask.from_cus(TOPO, [60])
    with pytest.raises(ValueError):
        CUMask(TOPO, 1 << 60)
    with pytest.raises(ValueError):
        CUMask(TOPO, -1)
    with pytest.raises(ValueError):
        CUMask.first_n(TOPO, 61)


def test_set_algebra():
    a = CUMask.from_cus(TOPO, [0, 1, 2])
    b = CUMask.from_cus(TOPO, [2, 3])
    assert list(a.union(b).cus()) == [0, 1, 2, 3]
    assert list(a.intersect(b).cus()) == [2]
    assert list(a.subtract(b).cus()) == [0, 1]
    assert a.invert().count() == 57


def test_cross_topology_rejected():
    other = GpuTopology.mi100()
    with pytest.raises(ValueError):
        CUMask.all_cus(TOPO).union(CUMask.all_cus(other))


def test_masks_hashable_and_equal_by_value():
    a = CUMask.from_cus(TOPO, [1, 2])
    b = CUMask.from_cus(TOPO, [2, 1])
    assert a == b
    assert len({a, b}) == 1


@given(cu_sets)
def test_from_cus_round_trips(cus):
    mask = CUMask.from_cus(TOPO, cus)
    assert set(mask.cus()) == cus
    assert mask.count() == len(cus)


@given(cu_sets, cu_sets)
def test_algebra_matches_set_semantics(a_set, b_set):
    a = CUMask.from_cus(TOPO, a_set)
    b = CUMask.from_cus(TOPO, b_set)
    assert set(a.union(b).cus()) == a_set | b_set
    assert set(a.intersect(b).cus()) == a_set & b_set
    assert set(a.subtract(b).cus()) == a_set - b_set


@given(cu_sets)
def test_per_se_counts_sum_to_count(cus):
    mask = CUMask.from_cus(TOPO, cus)
    assert sum(mask.per_se_counts()) == mask.count()


@given(cu_sets)
def test_invert_is_involution(cus):
    mask = CUMask.from_cus(TOPO, cus)
    assert mask.invert().invert() == mask
    assert mask.union(mask.invert()) == CUMask.all_cus(TOPO)
