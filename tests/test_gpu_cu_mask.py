"""Unit and property tests for CU masks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology

TOPO = GpuTopology.mi50()

cu_sets = st.sets(st.integers(min_value=0, max_value=TOPO.total_cus - 1))


def test_all_and_none():
    full = CUMask.all_cus(TOPO)
    empty = CUMask.none(TOPO)
    assert full.count() == 60
    assert empty.count() == 0
    assert empty.is_empty()
    assert not full.is_empty()


def test_first_n():
    mask = CUMask.first_n(TOPO, 17)
    assert mask.count() == 17
    assert list(mask.cus()) == list(range(17))
    assert mask.per_se_counts() == [15, 2, 0, 0]


def test_from_cus_and_has():
    mask = CUMask.from_cus(TOPO, [0, 15, 30, 45])
    assert mask.per_se_counts() == [1, 1, 1, 1]
    assert mask.active_ses() == [0, 1, 2, 3]
    assert mask.has(15) and not mask.has(16)


def test_rejects_out_of_range():
    with pytest.raises(ValueError):
        CUMask.from_cus(TOPO, [60])
    with pytest.raises(ValueError):
        CUMask(TOPO, 1 << 60)
    with pytest.raises(ValueError):
        CUMask(TOPO, -1)
    with pytest.raises(ValueError):
        CUMask.first_n(TOPO, 61)


def test_set_algebra():
    a = CUMask.from_cus(TOPO, [0, 1, 2])
    b = CUMask.from_cus(TOPO, [2, 3])
    assert list(a.union(b).cus()) == [0, 1, 2, 3]
    assert list(a.intersect(b).cus()) == [2]
    assert list(a.subtract(b).cus()) == [0, 1]
    assert a.invert().count() == 57


def test_cross_topology_rejected():
    other = GpuTopology.mi100()
    with pytest.raises(ValueError):
        CUMask.all_cus(TOPO).union(CUMask.all_cus(other))


def test_masks_hashable_and_equal_by_value():
    a = CUMask.from_cus(TOPO, [1, 2])
    b = CUMask.from_cus(TOPO, [2, 1])
    assert a == b
    assert len({a, b}) == 1


@given(cu_sets)
def test_from_cus_round_trips(cus):
    mask = CUMask.from_cus(TOPO, cus)
    assert set(mask.cus()) == cus
    assert mask.count() == len(cus)


@given(cu_sets, cu_sets)
def test_algebra_matches_set_semantics(a_set, b_set):
    a = CUMask.from_cus(TOPO, a_set)
    b = CUMask.from_cus(TOPO, b_set)
    assert set(a.union(b).cus()) == a_set | b_set
    assert set(a.intersect(b).cus()) == a_set & b_set
    assert set(a.subtract(b).cus()) == a_set - b_set


@given(cu_sets)
def test_per_se_counts_sum_to_count(cus):
    mask = CUMask.from_cus(TOPO, cus)
    assert sum(mask.per_se_counts()) == mask.count()


@given(cu_sets)
def test_invert_is_involution(cus):
    mask = CUMask.from_cus(TOPO, cus)
    assert mask.invert().invert() == mask
    assert mask.union(mask.invert()) == CUMask.all_cus(TOPO)


@given(cu_sets, st.sampled_from([8, 16, 32, 64]))
def test_to_words_round_trips(cus, word_bits):
    mask = CUMask.from_cus(TOPO, cus)
    words = mask.to_words(word_bits)
    assert CUMask.from_words(TOPO, words, word_bits) == mask


def test_from_words_rejects_bits_beyond_device():
    # CU 60 on a 60-CU device lives in word 1 of the 32-bit encoding,
    # inside the encoding's slack; it must be rejected, not dropped.
    with pytest.raises(ValueError, match="CU 60"):
        CUMask.from_words(TOPO, [0, 1 << 28])
    # A whole extra word beyond the device is equally invalid.
    with pytest.raises(ValueError, match="CU 64"):
        CUMask.from_words(TOPO, [0, 0, 1])
    # The highest stray bit is the one named.
    with pytest.raises(ValueError, match="CU 63"):
        CUMask.from_words(TOPO, [0, 0b1111 << 28])


def test_from_words_rejects_out_of_range_words():
    with pytest.raises(ValueError, match="out of 32-bit range"):
        CUMask.from_words(TOPO, [1 << 32])
    with pytest.raises(ValueError, match="out of 32-bit range"):
        CUMask.from_words(TOPO, [-1])
    with pytest.raises(ValueError):
        CUMask.from_words(TOPO, [1], word_bits=0)


def test_from_words_accepts_full_last_word_up_to_device_bound():
    # All 28 legal bits of the last 32-bit word (CUs 32..59).
    words = CUMask.all_cus(TOPO).to_words(32)
    assert CUMask.from_words(TOPO, words) == CUMask.all_cus(TOPO)
