"""Tests for the utilization-timeline analysis."""

import pytest

from repro.analysis.utilization import utilization_timeline
from repro.gpu.cu_mask import CUMask
from repro.gpu.device import GpuDevice
from repro.gpu.exec_model import ExecutionModelConfig
from repro.gpu.kernel import KernelDescriptor, KernelLaunch
from repro.gpu.topology import GpuTopology
from repro.sim.engine import Simulator

TOPO = GpuTopology.mi50()
CFG = ExecutionModelConfig(launch_overhead=0.0)


def run_device(launches):
    sim = Simulator()
    device = GpuDevice(sim, TOPO, exec_config=CFG, record_trace=True)
    for delay, desc, mask in launches:
        sim.schedule(delay, lambda d=desc, m=mask: device.launch(
            KernelLaunch(d), m))
    sim.run()
    return device


def small_kernel(workgroups=15, duration=1e-3):
    return KernelDescriptor(name="k", workgroups=workgroups, occupancy=1,
                            wg_duration=duration, mem_intensity=0.0)


def test_timeline_counts_allocated_and_occupied():
    # 15 WGs, mask of 60 CUs: 60 allocated but only ~16 occupied (equal
    # split puts ceil(15/4)=4 per SE).
    device = run_device([(0.0, small_kernel(), CUMask.all_cus(TOPO))])
    timeline = utilization_timeline(device.trace, TOPO, samples=50)
    assert timeline.mean_allocated() == pytest.approx(60, abs=1)
    assert timeline.mean_occupied() == pytest.approx(16, abs=1)
    assert timeline.over_allocation() > 0.5
    assert 0 < timeline.under_utilization() < 1


def test_timeline_idle_gap_lowers_means():
    busy = run_device([(0.0, small_kernel(), CUMask.first_n(TOPO, 15))])
    t_busy = utilization_timeline(busy.trace, TOPO, samples=50)
    # Same kernel, but sample a window twice as long (half idle).
    t_half = utilization_timeline(busy.trace, TOPO, samples=50,
                                  end=2e-3)
    assert t_half.mean_occupied() == pytest.approx(
        t_busy.mean_occupied() / 2, rel=0.1)


def test_timeline_caps_at_device_size():
    mask = CUMask.all_cus(TOPO)
    device = run_device([
        (0.0, small_kernel(workgroups=240), mask),
        (0.0, small_kernel(workgroups=240), mask),
    ])
    timeline = utilization_timeline(device.trace, TOPO, samples=20)
    assert max(timeline.allocated_cus) <= 60
    assert max(timeline.occupied_cus) <= 60


def test_timeline_validation():
    device = run_device([(0.0, small_kernel(), CUMask.first_n(TOPO, 15))])
    with pytest.raises(ValueError):
        utilization_timeline(device.trace, TOPO, start=5.0, end=1.0)
    with pytest.raises(ValueError):
        utilization_timeline(device.trace, TOPO, samples=0)
