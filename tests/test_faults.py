"""Tests for the fault-injection layer (repro.faults + SLO guard rails).

The layer's core promises:

* a fault-injected cell is exactly as deterministic and cacheable as a
  fault-free one — serial, pooled, and cache-served runs are
  bit-identical;
* every fault kind degrades gracefully: crashes restart, missing perf-DB
  entries fall back to the model-wise right-size, bursts shed instead of
  queueing unboundedly — all without unhandled exceptions, all counted.
"""

import dataclasses

import pytest

from repro.core.perfdb import PerfDatabase
from repro.exp.sweep import run_sweep
from repro.faults import (
    BandwidthSpike,
    FaultSchedule,
    KernelStraggler,
    PerfDbDropout,
    ReloadCostModel,
    RequestStorm,
    WorkerCrash,
)
from repro.gpu.kernel import KernelDescriptor
from repro.server.experiment import (
    ExperimentConfig,
    measurement_window,
    run_experiment,
)
from repro.server.slo import ResilienceStats, SloGuard
from repro.server.options import RunOptions

#: Small, fast cell reused by every integration test here.
CONFIG = ExperimentConfig(("squeezenet",) * 2, policy="krisp-i",
                          batch_size=4, requests_scale=0.25)
GUARD = SloGuard(admission_depth=8, deadline=0.05, max_retries=2)


def _mixed_schedule(config: ExperimentConfig) -> FaultSchedule:
    warmup, end = measurement_window(config)
    span = end - warmup
    return FaultSchedule(events=(
        WorkerCrash(time=warmup + 0.30 * span, worker=0),
        KernelStraggler(start=warmup + 0.20 * span, duration=0.30 * span,
                        multiplier=4.0),
        BandwidthSpike(start=warmup + 0.20 * span, duration=0.30 * span,
                       demand=1.5),
        RequestStorm(start=warmup + 0.25 * span, duration=0.20 * span,
                     count=16),
        PerfDbDropout(time=warmup + 0.10 * span, fraction=0.25),
    ), seed=config.seed)


# -- schedules as data --------------------------------------------------------

def test_schedule_roundtrips_through_dict():
    schedule = _mixed_schedule(CONFIG)
    clone = FaultSchedule.from_dict(schedule.to_dict())
    assert clone == schedule
    assert clone.to_dict() == schedule.to_dict()


def test_schedule_generate_is_seed_deterministic():
    a = FaultSchedule.generate(7, 0.1, 1.0, workers=2, storms=1,
                               dropout_fraction=0.2)
    b = FaultSchedule.generate(7, 0.1, 1.0, workers=2, storms=1,
                               dropout_fraction=0.2)
    assert a == b
    assert a != FaultSchedule.generate(8, 0.1, 1.0, workers=2, storms=1,
                                       dropout_fraction=0.2)


def test_schedule_rejects_invalid_events():
    with pytest.raises(ValueError):
        KernelStraggler(start=0.1, duration=0.1, multiplier=1.0)
    with pytest.raises(ValueError):
        PerfDbDropout(time=0.1, fraction=0.0)
    with pytest.raises(ValueError):
        ReloadCostModel(base=-1.0)


def test_drop_fraction_is_deterministic_and_order_independent():
    def build(order):
        db = PerfDatabase()
        for i in order:
            db.record(KernelDescriptor(name=f"k{i}", workgroups=i + 1,
                                       bytes_in=64 * (i + 1)), 8)
        return db

    forward, backward = build(range(12)), build(reversed(range(12)))
    assert forward.drop_fraction(0.25, seed=3) == 3
    assert backward.drop_fraction(0.25, seed=3) == 3
    assert sorted(k.encode() for k, _ in forward.entries()) \
        == sorted(k.encode() for k, _ in backward.entries())


# -- determinism across execution paths ---------------------------------------

def test_fault_injected_runs_are_bit_identical(monkeypatch, tmp_path):
    """Serial, pooled, and cache-served fault runs agree field-for-field."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    schedule = _mixed_schedule(CONFIG)

    serial = run_experiment(CONFIG,
                            RunOptions(faults=schedule, guard=GUARD))
    pooled = run_sweep([CONFIG], jobs=2, cache=True,
                       options=RunOptions(faults=schedule, guard=GUARD))
    assert pooled.ok and pooled.ran == 1
    warm = run_sweep([CONFIG], jobs=2, cache=True,
                     options=RunOptions(faults=schedule, guard=GUARD))
    assert warm.ok and warm.cached == 1 and warm.ran == 0

    for report in (pooled, warm):
        other = report.result(CONFIG)
        assert other.workers == serial.workers
        assert other.total_rps == serial.total_rps
        assert other.energy_joules == serial.energy_joules
        assert other.resilience == serial.resilience
    assert serial.resilience.faults_injected == len(schedule)


def test_fault_key_is_disjoint_from_fault_free_key(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.exp.cache import cache_key
    schedule = _mixed_schedule(CONFIG)
    plain = cache_key(CONFIG)
    assert cache_key(CONFIG, faults=schedule) != plain
    assert cache_key(CONFIG, guard=GUARD) != plain
    assert cache_key(CONFIG, faults=schedule, guard=GUARD) \
        != cache_key(CONFIG, faults=schedule)


# -- graceful degradation ------------------------------------------------------

def test_crash_and_dropout_complete_with_counters(monkeypatch, tmp_path):
    """A crash plus a perf-DB dropout finishes the run — no exception —
    while the result reports what happened."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    warmup, end = measurement_window(CONFIG)
    span = end - warmup
    schedule = FaultSchedule(events=(
        WorkerCrash(time=warmup + 0.3 * span, worker=0),
        PerfDbDropout(time=warmup + 0.1 * span, fraction=0.5),
    ), seed=0)
    result = run_experiment(CONFIG,
                            RunOptions(faults=schedule, guard=GUARD))
    res = result.resilience
    assert res is not None
    assert res.crashes == 1 and res.restarts == 1
    assert res.degraded > 0  # dropped entries served via fallback
    assert res.faults_injected == 2
    assert result.total_rps > 0


def test_straggler_and_spike_perturb_the_timeline(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    warmup, end = measurement_window(CONFIG)
    span = end - warmup
    base = run_experiment(CONFIG)
    straggle = run_experiment(CONFIG, RunOptions(
        faults=FaultSchedule(events=(
            KernelStraggler(start=warmup + 0.2 * span, duration=0.3 * span,
                            multiplier=4.0),)),
        guard=GUARD))
    spike = run_experiment(CONFIG, RunOptions(
        faults=FaultSchedule(events=(
            BandwidthSpike(start=warmup + 0.2 * span, duration=0.3 * span,
                           demand=1.5),)),
        guard=GUARD))
    assert straggle.max_p95() > base.max_p95()
    assert spike.max_p95() > base.max_p95()


def test_shed_requests_skip_latency_but_are_counted(monkeypatch, tmp_path):
    """An aggressive deadline sheds work: shed requests never enter the
    latency distribution, yet the resilience block accounts for them and
    goodput only credits deadline-met completions."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    warmup, end = measurement_window(CONFIG)
    span = end - warmup
    tight = SloGuard(admission_depth=1, deadline=2e-3, max_retries=1)
    storm = FaultSchedule(events=(
        RequestStorm(start=warmup + 0.1 * span, duration=0.5 * span,
                     count=64),))
    result = run_experiment(CONFIG,
                            RunOptions(faults=storm, guard=tight))
    res = result.resilience
    assert res is not None
    assert res.shed > 0
    assert res.shed == res.shed_admission + res.shed_deadline \
        + res.shed_retries
    # Latency stats cover only genuinely served requests.
    for worker in result.workers:
        assert worker.latency.count == worker.requests_completed
    # Goodput never exceeds raw throughput and reflects the deadline.
    assert 0.0 <= res.goodput_rps <= result.total_rps


def test_guard_alone_reports_resilience(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    result = run_experiment(CONFIG, RunOptions(guard=GUARD))
    res = result.resilience
    assert res is not None
    assert res.shed == res.retried == res.crashes == 0
    assert res.goodput_rps == pytest.approx(result.total_rps)


def test_resilience_stats_roundtrip():
    stats = ResilienceStats(shed_admission=3, shed_deadline=1,
                            shed_retries=2, retried=4, degraded=7,
                            crashes=1, restarts=1, faults_injected=5,
                            goodput_rps=123.5)
    assert ResilienceStats.from_dict(stats.to_dict()) == stats
    assert stats.shed == 6
    assert dataclasses.asdict(stats) == stats.to_dict()


def test_from_dict_ignores_unknown_keys():
    """Payloads from newer writers (extra fields) still load: both
    serialisable guard-rail types filter to their known fields."""
    guard = SloGuard(admission_depth=8, deadline=0.25, max_retries=2)
    payload = guard.to_dict()
    payload["future_knob"] = 42
    payload["another"] = {"nested": True}
    assert SloGuard.from_dict(payload) == guard

    stats = ResilienceStats(shed_admission=3, retried=4, goodput_rps=9.5)
    stats_payload = stats.to_dict()
    stats_payload["not_a_field"] = "ignored"
    assert ResilienceStats.from_dict(stats_payload) == stats
