"""Tests for the load-driven pool autoscaler's control law."""

from repro.cluster import AutoscalerConfig, ClusterConfig, run_cluster_experiment
from repro.workload.arrivals import OnOffArrivals, PoissonArrivals
from repro.workload.spec import HomogeneousWorkloadSpec


def _config(**overrides):
    base = dict(devices=2, model_names=("squeezenet",), batch_size=4,
                pool_size=3, pool_min=1)
    base.update(overrides)
    return ClusterConfig(**base)


def _storm_spec():
    # 400 rps bursts alternating with silence: drives the pools up during
    # the ON phase and back down while the backlog drains.
    return HomogeneousWorkloadSpec(
        model="squeezenet",
        arrivals=OnOffArrivals(on_rate=100.0, on_duration=0.3,
                               off_duration=0.3),
        batch_size=4)


def _storm_result():
    return run_cluster_experiment(_config(), _storm_spec(), duration=1.5)


def test_storm_scales_up_then_down():
    result = _storm_result()
    assert result.scale_ups >= 1
    assert result.scale_downs >= 1
    assert result.conservation_ok
    # Scale-downs never cut below the configured floor.
    for event in result.scale_events:
        if event.action == "down":
            assert event.active_after >= AutoscalerConfig().min_active


def test_churn_is_bounded_by_window_and_cooldown():
    config = AutoscalerConfig()
    events = _storm_result().scale_events
    assert events
    times = [e.time for e in events]
    for i, t in enumerate(times):
        in_window = sum(1 for u in times[:i + 1] if u > t - config.window)
        assert in_window <= config.max_actions_per_window
    # Per-model cooldown: consecutive actions on one model are spaced.
    by_model: dict = {}
    for event in events:
        last = by_model.get(event.model)
        if last is not None:
            assert event.time - last >= config.cooldown - 1e-12
        by_model[event.model] = event.time


def test_disabled_autoscaler_freezes_the_pools():
    result = run_cluster_experiment(_config(), _storm_spec(), duration=1.0,
                                    autoscaler=None)
    assert result.scale_events == ()
    assert result.conservation_ok


def test_light_load_never_scales_up():
    spec = HomogeneousWorkloadSpec(
        model="squeezenet", arrivals=PoissonArrivals(5.0), batch_size=4)
    result = run_cluster_experiment(_config(), spec, duration=1.0)
    assert result.scale_ups == 0


def test_scale_events_roundtrip_and_order():
    events = _storm_result().scale_events
    from repro.cluster import ScaleEvent
    for event in events:
        assert ScaleEvent.from_dict(event.to_dict()) == event
    assert list(events) == sorted(events, key=lambda e: e.time)
