"""Tests for the LLM-phase model zoo extension (repro.models.zoo).

The contract: LLM models live in their own registry (the Table III zoo
is untouched), carry an explicit prefill/decode phase split, rebuild
their kernel pass for any output length, and show the KernelSight-LM
phase asymmetry — compute-bound prefill kernels needing most of the GPU,
bandwidth-bound decode kernels right-sizing to a handful of CUs.
"""

import pytest

from repro.gpu.cu_mask import CUMask
from repro.gpu.topology import GpuTopology
from repro.models.zoo import (
    ALL_MODEL_NAMES,
    LLM_MODEL_NAMES,
    MODEL_NAMES,
    LlmModelSpec,
    get_model,
    llm_segments,
)
from repro.profiling.model_profiler import kernel_mincu_trace, run_inference_once

TOPO = GpuTopology.mi50()


# -- registry ----------------------------------------------------------------

def test_llm_registry_is_disjoint_from_table3_zoo():
    assert LLM_MODEL_NAMES == ("llm-tiny", "llm-8b")
    for name in LLM_MODEL_NAMES:
        assert name not in MODEL_NAMES
        assert name not in ALL_MODEL_NAMES  # benchmarks iterate these


@pytest.mark.parametrize("name", LLM_MODEL_NAMES)
def test_get_model_returns_llm_spec(name):
    model = get_model(name)
    assert isinstance(model, LlmModelSpec)
    assert model.prefill and model.decode
    assert model.default_output_tokens >= 1
    # The default pass is exactly prefill + decode * default tokens.
    assert model.specs == (model.prefill
                          + model.decode * model.default_output_tokens)
    assert model.kernel_count == (
        len(model.prefill)
        + len(model.decode) * model.default_output_tokens)


def test_unknown_model_error_mentions_llm_registry():
    with pytest.raises(KeyError, match="llm-tiny"):
        get_model("llm-70b")


# -- output-length rebuilding ------------------------------------------------

@pytest.mark.parametrize("name", LLM_MODEL_NAMES)
def test_specs_for_output_scales_with_tokens(name):
    model = get_model(name)
    for tokens in (1, 3, 9):
        specs = model.specs_for_output(tokens)
        assert len(specs) == len(model.prefill) + tokens * len(model.decode)
    assert model.specs_for_output() == model.specs  # default length


def test_specs_for_output_rejects_nonpositive_tokens():
    model = get_model("llm-tiny")
    with pytest.raises(ValueError):
        model.specs_for_output(0)


@pytest.mark.parametrize("name", LLM_MODEL_NAMES)
def test_one_segment_per_decode_token(name):
    """The decode block's trailing sync gap (host token sampling) splits
    the pass into prefill + one segment per token."""
    model = get_model(name)
    for tokens in (1, 4, 7):
        segments = model.segments_for_output(8, tokens)
        assert len(segments) == 1 + tokens


def test_llm_segments_is_cached_and_immutable():
    a = llm_segments("llm-tiny", 8, 5)
    b = llm_segments("llm-tiny", 8, 5)
    assert a is b  # lru_cache identity: serving reuses one object
    assert isinstance(a, tuple)
    assert all(isinstance(burst, tuple) for burst, _gap in a)
    assert llm_segments("llm-tiny", 8, 6) is not a


def test_llm_segments_rejects_non_llm_models():
    with pytest.raises(TypeError):
        llm_segments("squeezenet", 32, 4)


@pytest.mark.parametrize("name", LLM_MODEL_NAMES)
def test_longer_outputs_take_longer(name):
    model = get_model(name)

    def isolated(tokens):
        specs = model.specs_for_output(tokens)
        trace = [s.build(8 / 32.0, TOPO) for s in specs]
        return run_inference_once(trace, CUMask.all_cus(TOPO))

    lat1, lat4, lat16 = isolated(1), isolated(4), isolated(16)
    assert lat1 < lat4 < lat16
    # Decode dominates long outputs: latency grows roughly linearly.
    assert lat16 - lat4 > 2 * (lat4 - lat1)


# -- the phase asymmetry the right-sizer exploits ----------------------------

@pytest.mark.parametrize("name", LLM_MODEL_NAMES)
def test_prefill_and_decode_right_size_differently(name):
    model = get_model(name)
    mins = kernel_mincu_trace(model, batch_size=32)
    n_prefill = len(model.prefill)
    prefill_mins = mins[:n_prefill]
    decode_mins = mins[n_prefill:n_prefill + len(model.decode)]
    # Prefill is compute-bound: its big GEMMs need most of the GPU.
    assert max(prefill_mins) >= 48
    # Decode is bandwidth-bound: every kernel runs on a sliver.
    assert max(decode_mins) <= 12
    # The asymmetry is what per-phase right-sizing exploits.
    assert max(prefill_mins) >= 4 * max(decode_mins)


def test_decode_mincus_do_not_scale_with_batch():
    """Decode kernels are streaming (bandwidth-bound): their minCU stays
    flat across batch sizes, unlike prefill compute kernels."""
    model = get_model("llm-tiny")
    n_decode = len(model.decode)
    mins_32 = kernel_mincu_trace(model, batch_size=32)
    mins_8 = kernel_mincu_trace(model, batch_size=8)
    n_prefill = len(model.prefill)
    for m32, m8 in zip(mins_32[n_prefill:n_prefill + n_decode],
                       mins_8[n_prefill:n_prefill + n_decode]):
        assert abs(m32 - m8) <= 1  # flat up to measurement granularity
    # ... while at least one prefill compute kernel shrank with batch.
    assert min(mins_8[:n_prefill]) < max(mins_32[:n_prefill])
