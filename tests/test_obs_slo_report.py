"""Windowed SLO attainment, burn rate, and error-budget accounting.

Hermetic: flights are built by hand and thresholds injected via
``threshold_for``, so nothing here touches the isolated-baseline cache.
"""

import pytest

from repro.obs.flight import RequestFlight
from repro.obs.slo_report import build_slo_report


def flight(index, arrival, completion=None, shed_at=None,
           model="squeezenet"):
    f = RequestFlight(index=index, model=model, batch_size=4,
                      arrival_time=arrival)
    if completion is not None:
        f.completion_time = completion
    if shed_at is not None:
        f.shed_reason = "deadline"
        f.shed_time = shed_at
    return f


def threshold(_model, _batch):
    return 0.5


def test_attainment_burn_rate_and_budget():
    flights = [
        flight(0, 0.0, completion=0.25),   # met
        flight(1, 1.0, completion=1.25),   # met
        flight(2, 2.0, completion=3.00),   # missed (1.0 > 0.5)
        flight(3, 3.0, shed_at=3.25),      # shed counts as a miss
    ]
    report = build_slo_report(flights, objective=0.75,
                              threshold_for=threshold)
    overall = report["overall"]
    assert overall["total"] == 4 and overall["missed"] == 2
    assert overall["attainment"] == pytest.approx(0.5)
    # burn rate = miss_fraction / (1 - objective) = 0.5 / 0.25.
    assert overall["burn_rate"] == pytest.approx(2.0)
    assert overall["budget_consumed"] == pytest.approx(2.0)
    model = report["models"]["squeezenet"]
    assert model["threshold_s"] == 0.5
    assert model["total"] == 4 and model["missed"] == 2


def test_windows_conserve_dispositions():
    flights = [flight(i, 0.1 * i, completion=0.1 * i + 0.1)
               for i in range(20)]
    report = build_slo_report(flights, threshold_for=threshold,
                              window_count=7)
    windows = report["windows"]
    assert len(windows) == 7
    assert sum(w["total"] for w in windows) == report["overall"]["total"]
    assert sum(w["missed"] for w in windows) == report["overall"]["missed"]
    # Windows tile the span with shared boundaries.
    assert windows[0]["start"] == report["span"][0]
    assert windows[-1]["end"] == report["span"][1]
    for left, right in zip(windows, windows[1:]):
        assert left["end"] == right["start"]


def test_span_filters_dispositions():
    flights = [
        flight(0, 0.0, completion=0.1),    # before the span
        flight(1, 1.0, completion=1.1),    # inside
        flight(2, 5.0, completion=9.0),    # inside, missed
        flight(3, 11.0, completion=11.1),  # after the span
    ]
    report = build_slo_report(flights, span=(1.0, 10.0),
                              threshold_for=threshold)
    assert report["overall"]["total"] == 2
    assert report["overall"]["missed"] == 1
    assert report["span"] == [1.0, 10.0]


def test_per_model_breakdown_and_empty_rates():
    flights = [
        flight(0, 0.0, completion=0.25, model="squeezenet"),
        flight(1, 0.0, completion=2.0, model="mobilenet"),
    ]
    report = build_slo_report(flights, threshold_for=threshold)
    assert report["models"]["squeezenet"]["missed"] == 0
    assert report["models"]["mobilenet"]["missed"] == 1

    empty = build_slo_report([], threshold_for=threshold)
    assert empty["overall"]["total"] == 0
    assert empty["overall"]["attainment"] is None
    assert empty["overall"]["burn_rate"] is None


def test_objective_validation():
    with pytest.raises(ValueError):
        build_slo_report([], objective=1.0, threshold_for=threshold)
    with pytest.raises(ValueError):
        build_slo_report([], objective=0.9, window_count=0,
                         threshold_for=threshold)
